"""repro — reproduction of "Detecting Global Stride Locality in Value
Streams" (Zhou, Flanagan & Conte, ISCA 2003).

The package provides:

* :mod:`repro.core` — the gDiff global-stride value predictor family
  (profile GVQ, value-delayed GVQ, SGVQ, and the HGVQ hybrid).
* :mod:`repro.predictors` — rebuilt baselines: last-value, last-N, local
  two-delta stride, FCM, DFCM, first-order Markov, and the 3-bit
  confidence mechanism.
* :mod:`repro.trace` — the dynamic-instruction model plus synthetic
  SPECint2000-like workload generators.
* :mod:`repro.pipeline` — a cycle-level 4-wide out-of-order core (MIPS
  R10000-like, Table 1 configuration) for value-delay, SGVQ/HGVQ and
  speedup studies.
* :mod:`repro.harness` — experiment runners and the registry that
  regenerates every table and figure in the paper's evaluation.

Quickstart::

    from repro.core import GDiffPredictor
    from repro.harness import run_value_prediction
    from repro.trace.workloads import get

    trace = get("parser").trace(100_000)
    stats = run_value_prediction(trace, {"gdiff": GDiffPredictor(order=8)})
    print(stats["gdiff"].raw_accuracy)
"""

from .core import GDiffPredictor, HybridGDiffPredictor
from .predictors import (
    DFCMPredictor,
    FCMPredictor,
    LastNValuePredictor,
    LastValuePredictor,
    MarkovPredictor,
    PredictionStats,
    StridePredictor,
    ValuePredictor,
)

__version__ = "1.0.0"

__all__ = [
    "GDiffPredictor",
    "HybridGDiffPredictor",
    "ValuePredictor",
    "PredictionStats",
    "LastValuePredictor",
    "LastNValuePredictor",
    "StridePredictor",
    "FCMPredictor",
    "DFCMPredictor",
    "MarkovPredictor",
    "__version__",
]
