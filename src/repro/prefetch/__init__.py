"""gDiff-driven memory prefetching (the paper's future-work extension).

Section 6 shows gDiff detecting global stride locality in the load
address stream and predicting the addresses of missing loads better than
local stride or Markov predictors, and closes: "One interesting work is
to extend gDiff to further explore global stride locality in load address
stream for memory prefetch and for reducing load-use latency."  This
package builds that extension as a library component.
"""

from .prefetcher import GDiffPrefetcher, PrefetchStats, simulate_prefetching

__all__ = ["GDiffPrefetcher", "PrefetchStats", "simulate_prefetching"]
