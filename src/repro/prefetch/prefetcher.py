"""A prefetch engine driven by gDiff address prediction.

The engine watches the committed load stream: each load trains a gDiff
predictor whose global value queue carries *addresses* (Section 6's
configuration).  When the next load's address is confidently predicted,
the engine issues a prefetch for it ahead of the demand access.

The evaluation loop (:func:`simulate_prefetching`) replays a trace's
loads against two copies of a Table 1 D-cache — demand-only and
demand+prefetch — and reports the standard prefetching metrics:

* **coverage** — fraction of baseline demand misses eliminated;
* **accuracy** — fraction of issued prefetches whose line was used by
  the next demand access;
* **traffic overhead** — extra lines fetched per baseline miss.

This is a timing-free study (prefetches complete instantly); it bounds
what a gDiff prefetcher could eliminate, which is the quantity Section 6
argues about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.gdiff import GDiffPredictor
from ..pipeline.cache import Cache
from ..pipeline.config import CacheConfig, ProcessorConfig
from ..predictors.confidence import ConfidenceTable
from ..trace.isa import Instruction, OpClass


@dataclass
class PrefetchStats:
    """Outcome of a prefetching simulation."""

    demand_accesses: int = 0
    baseline_misses: int = 0
    prefetched_misses: int = 0
    prefetches_issued: int = 0
    prefetches_useful: int = 0

    @property
    def baseline_miss_rate(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.baseline_misses / self.demand_accesses

    @property
    def prefetched_miss_rate(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.prefetched_misses / self.demand_accesses

    @property
    def coverage(self) -> float:
        """Fraction of baseline misses the prefetcher eliminated."""
        if not self.baseline_misses:
            return 0.0
        saved = self.baseline_misses - self.prefetched_misses
        return max(0.0, saved / self.baseline_misses)

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were useful."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def traffic_overhead(self) -> float:
        """Useless prefetches per baseline miss (wasted bandwidth)."""
        if not self.baseline_misses:
            return 0.0
        useless = self.prefetches_issued - self.prefetches_useful
        return useless / self.baseline_misses

    def __str__(self) -> str:
        return (
            f"miss rate {self.baseline_miss_rate:.1%} -> "
            f"{self.prefetched_miss_rate:.1%} "
            f"(coverage {self.coverage:.1%}, accuracy {self.accuracy:.1%})"
        )


class GDiffPrefetcher:
    """Predict the next load's address with gDiff; emit prefetch targets.

    Args:
        order: GVQ depth over the address stream (Section 6 uses the
            pipeline configuration's 32).
        entries: prediction-table entries (paper: 4K for address tables).
        confidence: optional confidence table (paper policy by default) —
            only confident predictions become prefetches.
        line_bytes: prefetch granularity (suppress duplicates per line).
    """

    def __init__(
        self,
        order: int = 32,
        entries: Optional[int] = 4096,
        confidence: Optional[ConfidenceTable] = None,
        line_bytes: int = 64,
    ):
        self.predictor = GDiffPredictor(order=order, entries=entries)
        self.confidence = confidence if confidence is not None \
            else ConfidenceTable()
        self._line_shift = line_bytes.bit_length() - 1
        self._last_line_prefetched: Optional[int] = None

    def observe(self, pc: int, addr: int) -> None:
        """Train on one committed load (pc, effective address)."""
        predicted = self.predictor.predict(pc)
        if predicted is not None:
            self.confidence.train(pc, predicted == addr)
        self.predictor.update(pc, addr)

    def prefetch_for(self, next_pc: int) -> Optional[int]:
        """Address to prefetch for the upcoming load at *next_pc*.

        Returns ``None`` when there is no confident prediction, or when
        the predicted line was just prefetched (duplicate suppression).
        """
        prediction = self.predictor.predict(next_pc)
        if prediction is None or not self.confidence.is_confident(next_pc):
            return None
        line = prediction >> self._line_shift
        if line == self._last_line_prefetched:
            return None
        self._last_line_prefetched = line
        return prediction


def simulate_prefetching(
    trace: Iterable[Instruction],
    prefetcher: Optional[GDiffPrefetcher] = None,
    cache_config: Optional[CacheConfig] = None,
) -> PrefetchStats:
    """Replay a trace's loads with one-step-lookahead gDiff prefetching."""
    if cache_config is None:
        cache_config = ProcessorConfig().dcache
    if prefetcher is None:
        prefetcher = GDiffPrefetcher(line_bytes=cache_config.line_bytes)
    baseline = Cache(cache_config)
    prefetched = Cache(cache_config)
    stats = PrefetchStats()
    line_shift = cache_config.line_bytes.bit_length() - 1

    loads: List[Instruction] = [i for i in trace if i.op is OpClass.LOAD]
    for position, insn in enumerate(loads):
        stats.demand_accesses += 1
        if not baseline.access(insn.addr):
            stats.baseline_misses += 1
        if not prefetched.access(insn.addr):
            stats.prefetched_misses += 1
        prefetcher.observe(insn.pc, insn.addr)
        if position + 1 < len(loads):
            next_insn = loads[position + 1]
            target = prefetcher.prefetch_for(next_insn.pc)
            if target is not None:
                stats.prefetches_issued += 1
                if not prefetched.probe(target):
                    prefetched.access(target)
                if (target >> line_shift) == (next_insn.addr >> line_shift):
                    stats.prefetches_useful += 1
    return stats
