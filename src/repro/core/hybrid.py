"""The gDiff predictor with hybrid global value queue (HGVQ, Section 5).

The key problem with the speculative GVQ is that the queue fills in
*completion* order, which varies run to run with cache misses and branch
mispredictions, obscuring the stride locality.  The hybrid scheme fixes the
ordering by constructing the value sequence at *dispatch* time:

* At dispatch, a *filler* predictor (a local stride predictor by default)
  produces a speculative value for the instruction, which is pushed into
  the queue immediately — so the queue is always in dispatch order and a
  correlated instruction's slot exists even while it is still in flight.
* At write-back, the real result overwrites the instruction's own slot in
  place, and the gDiff table is trained by diffing the result against the
  (mixed real/filler) window preceding the slot.

This both eliminates execution variation and lets gDiff piggyback on local
stride locality: if the correlated instruction is itself locally
predictable, its filler value is usually correct, so gDiff can predict a
dependent instruction *before* the correlated value is computed — values
that the plain GVQ could never supply in time (Figure 17's example).

The class exposes the dispatch/write-back protocol the pipeline drives
(:meth:`dispatch`, :meth:`writeback`) plus the plain
:class:`~repro.predictors.base.ValuePredictor` interface so it can also be
run trace-driven (each trace step performing dispatch immediately followed
by write-back, which makes every filler exact — the zero-variation limit).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from ..predictors.base import ValuePredictor
from ..predictors.stride import StridePredictor
from ..wordops import WORD_MASK, wsub
from .gvq import SlottedValueQueue
from .table import FlatGDiffTable


class HybridGDiffPredictor(ValuePredictor):
    """gDiff over a dispatch-ordered, filler-seeded value queue (HGVQ)."""

    name = "gdiff-hgvq"

    #: Distance selected by the most recent :meth:`writeback` (None when
    #: the update matched nothing).  Read by the event-trace recorder.
    last_distance: Optional[int] = None

    def __init__(
        self,
        order: int = 32,
        entries: Optional[int] = 8192,
        filler: Optional[ValuePredictor] = None,
        policy: str = "sticky-nearest",
        capacity: int = 512,
    ):
        self.order = order
        self.queue = SlottedValueQueue(size=order, capacity=capacity)
        self.table = FlatGDiffTable(order=order, entries=entries, policy=policy)
        self._scratch = array("Q", bytes(8 * order))
        #: The filler predictor seeding dispatch-time slots.  It is trained
        #: here (at write-back) and may be shared with the pipeline's local
        #: value-speculation machinery.
        self.filler = filler if filler is not None else StridePredictor(entries=entries)
        self._ctor = (order, entries, policy, capacity)

    # ------------------------------------------------------------------
    # Pipeline-facing protocol
    # ------------------------------------------------------------------
    def dispatch(self, pc: int) -> Tuple[Optional[int], int]:
        """Handle one value-producing instruction at dispatch.

        Makes the gDiff prediction against the current queue window, then
        allocates the instruction's own slot seeded with the filler
        predictor's value (0 when the filler has nothing — the slot will be
        corrected at write-back).

        Returns:
            (gdiff prediction or None, allocated slot sequence number).
        """
        seq = self.queue.total_allocated
        prediction = self._predict_at(pc, seq)
        filler_value = self.filler.predict(pc)
        self.queue.allocate(filler_value if filler_value is not None else 0)
        return prediction, seq

    def writeback(self, pc: int, seq: int, actual: int) -> None:
        """Handle the same instruction's completion.

        Overwrites the slot with the real result, trains the gDiff table by
        diffing against the window preceding the slot (whatever mix of real
        and filler values it currently holds), and trains the filler.
        """
        queue = self.queue
        queue.deposit(seq, actual)
        vc = queue.valid_depth(seq)  # window validity is always a prefix
        scratch = self._scratch
        buf = queue._buf
        cap = queue._capacity
        actual &= WORD_MASK
        for d in range(1, vc + 1):
            scratch[d - 1] = (actual - buf[(seq - d) % cap]) & WORD_MASK
        selected = self.table.train_prefix(pc, scratch, vc)
        self.last_distance = selected if selected else None
        self.filler.update(pc, actual)

    def attach_metrics(self, registry, prefix: str = "gdiff.hgvq") -> None:
        """Publish the gDiff table meters plus HGVQ queue health.

        ``<prefix>.queue_late_deposits`` counts write-backs that found
        their slot already recycled (should stay 0 with a properly sized
        capacity margin over the ROB).
        """
        self.table.attach_metrics(registry, prefix)
        queue = self.queue

        def _collect(reg):
            reg.counter(f"{prefix}.queue_allocations").value = \
                queue.total_allocated
            reg.counter(f"{prefix}.queue_late_deposits").value = \
                queue.late_deposits

        registry.add_collector(_collect)

    # ------------------------------------------------------------------
    # Trace-driven ValuePredictor interface
    # ------------------------------------------------------------------
    def predict(self, pc: int) -> Optional[int]:
        """Trace-driven prediction (dispatch immediately precedes update)."""
        prediction, seq = self.dispatch(pc)
        self._trace_seq = seq
        return prediction

    def update(self, pc: int, actual: int) -> None:
        seq = getattr(self, "_trace_seq", None)
        if seq is None:
            # update() without a preceding predict(): allocate a slot so
            # the queue ordering stays consistent.
            seq = self.queue.allocate(0)
        self.writeback(pc, seq, actual)
        self._trace_seq = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _predict_at(self, pc: int, seq: int) -> Optional[int]:
        table = self.table
        row = table.row_of(pc)
        if row < 0:
            return None
        distance = table._dist[row]
        if distance == 0 or distance > table._valid[row]:
            return None
        queue = self.queue
        if distance > queue.valid_depth(seq):
            return None
        base = queue._buf[(seq - distance) % queue._capacity]
        return (base + table._diffs[row * table.order + distance - 1]) \
            & WORD_MASK

    def _calc_diffs(self, seq: int, actual: int) -> List[Optional[int]]:
        diffs: List[Optional[int]] = []
        get = self.queue.get
        for distance in range(1, self.order + 1):
            base = get(seq, distance)
            diffs.append(None if base is None else wsub(actual, base))
        return diffs

    def reset(self) -> None:
        order, entries, policy, capacity = self._ctor
        self.queue = SlottedValueQueue(size=order, capacity=capacity)
        self.table = FlatGDiffTable(order=order, entries=entries, policy=policy)
        self.filler.reset()
        self._trace_seq = None
