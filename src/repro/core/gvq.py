"""Global value queue (GVQ) structures.

The GVQ is the ordered record of "the values of the completed instructions
according to their execution order" (Section 3).  The gDiff predictor reads
it at distance *k* to form predictions and diffs new results against its
contents to learn correlations.

Two containers are provided:

* :class:`GlobalValueQueue` — the plain shift-register queue used by the
  profile-mode and SGVQ configurations.  It supports an optional *value
  delay* ``T``: the ``T`` most recently pushed values are invisible,
  modelling pipeline latency between a value's production and its
  availability to the predictor (Section 3.1).
* :class:`SlottedValueQueue` — the dispatch-order queue needed by the
  hybrid scheme (HGVQ, Section 5).  Slots are allocated in dispatch order
  and carry speculative *filler* values; the write-back overwrites the slot
  in place, so the queue's ordering never suffers from execution variation.

Both queues are backed by preallocated flat ``array('Q')`` ring buffers —
one machine word per slot, no per-entry Python objects — and every
operation is O(1) with no allocation: ``push``/``allocate``/``deposit``
write one ring slot, ``get`` reads one, and ``clear`` just resets the
cursor and the validity bitmask (stale buffer words are unreachable once
the cursor resets, so nothing needs zeroing).  ``visible()``/``window()``
remain as list-building compatibility shims; the fused kernels in
:mod:`repro.core.kernels` never call them.
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from ..wordops import WORD_MASK


class GlobalValueQueue:
    """A bounded, in-order queue of the most recent produced values.

    Args:
        size: the predictor order *n* — the number of queue entries a
            prediction may reach back to (distance 1..n).
        delay: value delay ``T``; the ``T`` most recent values are hidden
            from both prediction and difference computation.  ``T = 0``
            reproduces the idealised profile configuration.

    Values are stored as unsigned 64-bit machine words (every producer in
    this package wraps through :mod:`repro.wordops` already).  Window
    validity is a bitmask ``_vmask``: bit ``d-1`` set means distance ``d``
    is visible, and because values become visible strictly in push order
    the set bits always form the prefix ``1..min(size, pushes - delay)`` —
    the property the fused kernels exploit to skip per-distance checks.
    """

    __slots__ = ("size", "delay", "_capacity", "_buf", "_count", "_vmask",
                 "_full_mask")

    def __init__(self, size: int = 8, delay: int = 0):
        if size <= 0:
            raise ValueError("queue size must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.size = size
        self.delay = delay
        # Ring buffer holding the last (size + delay) values.
        self._capacity = size + delay
        self._buf = array("Q", bytes(8 * self._capacity))
        self._count = 0  # total values ever pushed
        self._vmask = 0  # bit d-1 set <=> distance d currently visible
        self._full_mask = (1 << size) - 1

    def push(self, value: int) -> None:
        """Shift a newly completed value into the queue."""
        self._buf[self._count % self._capacity] = value & WORD_MASK
        self._count += 1
        if self._count > self.delay:
            self._vmask = ((self._vmask << 1) | 1) & self._full_mask

    def get(self, distance: int) -> Optional[int]:
        """Return the value at *distance* in the visible window.

        Distance 1 is the most recent *visible* value — i.e. the value
        pushed ``delay + 1`` pushes ago.  Returns ``None`` when the queue
        has not yet been filled deep enough.
        """
        if distance < 1 or distance > self.size:
            raise ValueError(f"distance must be in 1..{self.size}")
        if not (self._vmask >> (distance - 1)) & 1:
            return None
        return self._buf[(self._count - self.delay - distance)
                         % self._capacity]

    def visible(self) -> List[Optional[int]]:
        """Return the full visible window as [distance 1, ..., distance n].

        Compatibility shim (allocates a fresh list per call); hot paths
        read the ring buffer directly.
        """
        return [self.get(d) for d in range(1, self.size + 1)]

    def valid_mask(self) -> int:
        """Bitmask of visible distances (bit ``d-1`` set = distance ``d``)."""
        return self._vmask

    @property
    def total_pushed(self) -> int:
        """Total number of values ever shifted in (the global order N)."""
        return self._count

    def clear(self) -> None:
        self._count = 0
        self._vmask = 0


class SlottedValueQueue:
    """A dispatch-ordered value queue with in-place write-back (HGVQ).

    Slots are allocated with :meth:`allocate` at dispatch time, seeded with
    a speculative filler value (typically a local-stride prediction), and
    later overwritten with the real execution result via :meth:`deposit`.
    Reads are positional: ``get(seq, distance)`` returns the value in the
    slot *distance* allocations before *seq*, whatever mixture of filler
    and real values currently occupies it.

    The ring capacity must exceed the predictor order plus the maximum
    number of in-flight instructions, so a write-back can always still find
    its slot.  Slot validity is positional: allocation is strictly
    sequential, so slot ``s`` is live exactly when
    ``next_seq - capacity <= s < next_seq`` — a contiguous window, which is
    why the fused kernels can treat the valid distances behind any ``seq``
    as a prefix rather than probing a per-slot flag.
    """

    __slots__ = ("size", "_capacity", "_buf", "_next_seq", "late_deposits")

    def __init__(self, size: int = 32, capacity: int = 512):
        if size <= 0:
            raise ValueError("queue size must be positive")
        if capacity <= size:
            raise ValueError("capacity must exceed the predictor order")
        self.size = size
        self._capacity = capacity
        self._buf = array("Q", bytes(8 * capacity))
        self._next_seq = 0
        #: Write-backs that arrived after their slot was recycled; a
        #: nonzero count means the capacity margin over the ROB is too
        #: small (telemetry surfaces this as ``<prefix>.queue_late_deposits``).
        self.late_deposits = 0

    def allocate(self, filler: int) -> int:
        """Allocate the next dispatch-order slot, seeded with *filler*.

        Returns the slot's sequence number, which the pipeline carries with
        the instruction ("a field is associated with each instruction in
        the issue queue to direct which entry in the HGVQ the result should
        update").
        """
        seq = self._next_seq
        self._buf[seq % self._capacity] = filler & WORD_MASK
        self._next_seq += 1
        return seq

    def deposit(self, seq: int, value: int) -> bool:
        """Overwrite slot *seq* with the real result.

        Returns False (and writes nothing) if the slot has already been
        recycled — possible only if an instruction stays in flight longer
        than ``capacity`` younger dispatches, which the pipeline's ROB
        bound prevents in practice.
        """
        if seq < self._next_seq - self._capacity or seq >= self._next_seq:
            self.late_deposits += 1
            return False
        self._buf[seq % self._capacity] = value & WORD_MASK
        return True

    def get(self, seq: int, distance: int) -> Optional[int]:
        """Read the value *distance* slots before *seq* (distance >= 1)."""
        if distance < 1 or distance > self.size:
            raise ValueError(f"distance must be in 1..{self.size}")
        slot = seq - distance
        if slot < 0 or slot < self._next_seq - self._capacity:
            return None
        return self._buf[slot % self._capacity]

    def window(self, seq: int) -> List[Optional[int]]:
        """Return [distance 1, ..., distance n] relative to slot *seq*.

        Compatibility shim (allocates a fresh list per call); hot paths
        read the ring buffer directly.
        """
        return [self.get(seq, d) for d in range(1, self.size + 1)]

    def valid_depth(self, seq: int) -> int:
        """Number of valid window distances behind *seq* (a prefix 1..d)."""
        oldest = self._next_seq - self._capacity
        if oldest < 0:
            oldest = 0
        depth = seq - oldest
        if depth < 0:
            return 0
        return depth if depth < self.size else self.size

    @property
    def total_allocated(self) -> int:
        return self._next_seq

    def clear(self) -> None:
        self._next_seq = 0
        self.late_deposits = 0
