"""Global value queue (GVQ) structures.

The GVQ is the ordered record of "the values of the completed instructions
according to their execution order" (Section 3).  The gDiff predictor reads
it at distance *k* to form predictions and diffs new results against its
contents to learn correlations.

Two containers are provided:

* :class:`GlobalValueQueue` — the plain shift-register queue used by the
  profile-mode and SGVQ configurations.  It supports an optional *value
  delay* ``T``: the ``T`` most recently pushed values are invisible,
  modelling pipeline latency between a value's production and its
  availability to the predictor (Section 3.1).
* :class:`SlottedValueQueue` — the dispatch-order queue needed by the
  hybrid scheme (HGVQ, Section 5).  Slots are allocated in dispatch order
  and carry speculative *filler* values; the write-back overwrites the slot
  in place, so the queue's ordering never suffers from execution variation.
"""

from __future__ import annotations

from typing import List, Optional


class GlobalValueQueue:
    """A bounded, in-order queue of the most recent produced values.

    Args:
        size: the predictor order *n* — the number of queue entries a
            prediction may reach back to (distance 1..n).
        delay: value delay ``T``; the ``T`` most recent values are hidden
            from both prediction and difference computation.  ``T = 0``
            reproduces the idealised profile configuration.
    """

    def __init__(self, size: int = 8, delay: int = 0):
        if size <= 0:
            raise ValueError("queue size must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.size = size
        self.delay = delay
        # Ring buffer holding the last (size + delay) values.
        self._capacity = size + delay
        self._buf: List[int] = [0] * self._capacity
        self._count = 0  # total values ever pushed

    def push(self, value: int) -> None:
        """Shift a newly completed value into the queue."""
        self._buf[self._count % self._capacity] = value
        self._count += 1

    def get(self, distance: int) -> Optional[int]:
        """Return the value at *distance* in the visible window.

        Distance 1 is the most recent *visible* value — i.e. the value
        pushed ``delay + 1`` pushes ago.  Returns ``None`` when the queue
        has not yet been filled deep enough.
        """
        if distance < 1 or distance > self.size:
            raise ValueError(f"distance must be in 1..{self.size}")
        slot = self._count - self.delay - distance
        if slot < 0:
            return None
        return self._buf[slot % self._capacity]

    def visible(self) -> List[Optional[int]]:
        """Return the full visible window as [distance 1, ..., distance n]."""
        return [self.get(d) for d in range(1, self.size + 1)]

    @property
    def total_pushed(self) -> int:
        """Total number of values ever shifted in (the global order N)."""
        return self._count

    def clear(self) -> None:
        self._buf = [0] * self._capacity
        self._count = 0


class SlottedValueQueue:
    """A dispatch-ordered value queue with in-place write-back (HGVQ).

    Slots are allocated with :meth:`allocate` at dispatch time, seeded with
    a speculative filler value (typically a local-stride prediction), and
    later overwritten with the real execution result via :meth:`deposit`.
    Reads are positional: ``get(seq, distance)`` returns the value in the
    slot *distance* allocations before *seq*, whatever mixture of filler
    and real values currently occupies it.

    The ring capacity must exceed the predictor order plus the maximum
    number of in-flight instructions, so a write-back can always still find
    its slot.
    """

    def __init__(self, size: int = 32, capacity: int = 512):
        if size <= 0:
            raise ValueError("queue size must be positive")
        if capacity <= size:
            raise ValueError("capacity must exceed the predictor order")
        self.size = size
        self._capacity = capacity
        self._buf: List[int] = [0] * capacity
        self._next_seq = 0
        #: Write-backs that arrived after their slot was recycled; a
        #: nonzero count means the capacity margin over the ROB is too
        #: small (telemetry surfaces this as ``<prefix>.queue_late_deposits``).
        self.late_deposits = 0

    def allocate(self, filler: int) -> int:
        """Allocate the next dispatch-order slot, seeded with *filler*.

        Returns the slot's sequence number, which the pipeline carries with
        the instruction ("a field is associated with each instruction in
        the issue queue to direct which entry in the HGVQ the result should
        update").
        """
        seq = self._next_seq
        self._buf[seq % self._capacity] = filler
        self._next_seq += 1
        return seq

    def deposit(self, seq: int, value: int) -> bool:
        """Overwrite slot *seq* with the real result.

        Returns False (and writes nothing) if the slot has already been
        recycled — possible only if an instruction stays in flight longer
        than ``capacity`` younger dispatches, which the pipeline's ROB
        bound prevents in practice.
        """
        if seq < self._next_seq - self._capacity or seq >= self._next_seq:
            self.late_deposits += 1
            return False
        self._buf[seq % self._capacity] = value
        return True

    def get(self, seq: int, distance: int) -> Optional[int]:
        """Read the value *distance* slots before *seq* (distance >= 1)."""
        if distance < 1 or distance > self.size:
            raise ValueError(f"distance must be in 1..{self.size}")
        slot = seq - distance
        if slot < 0 or slot < self._next_seq - self._capacity:
            return None
        return self._buf[slot % self._capacity]

    def window(self, seq: int) -> List[Optional[int]]:
        """Return [distance 1, ..., distance n] relative to slot *seq*."""
        return [self.get(seq, d) for d in range(1, self.size + 1)]

    @property
    def total_allocated(self) -> int:
        return self._next_seq

    def clear(self) -> None:
        self._buf = [0] * self._capacity
        self._next_seq = 0
        self.late_deposits = 0
