"""The paper's contribution: the gDiff global-stride value predictor.

* :class:`GDiffPredictor` — order-n gDiff over a shared global value queue
  (profile, value-delayed, and SGVQ deployments).
* :class:`HybridGDiffPredictor` — the HGVQ hybrid: dispatch-ordered queue
  seeded by a local filler predictor (the headline Figure 16 scheme).
* Queue and table building blocks for users composing their own variants.
"""

from .gdiff import GDiffPredictor
from .gvq import GlobalValueQueue, SlottedValueQueue
from .hybrid import HybridGDiffPredictor
from .table import DISTANCE_POLICIES, FlatGDiffTable, GDiffEntry, GDiffTable

__all__ = [
    "GDiffPredictor",
    "HybridGDiffPredictor",
    "GlobalValueQueue",
    "SlottedValueQueue",
    "GDiffTable",
    "FlatGDiffTable",
    "GDiffEntry",
    "DISTANCE_POLICIES",
]
