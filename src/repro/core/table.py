"""The gDiff prediction table.

Per Section 3, the PC-indexed prediction table "maintains the selected
distance (i.e., k for x_N ~ x_{N-k}) used for the prediction and the
differences between the instruction's result and the results of n
instructions that finished immediately before it".

Update rule (quoted from the paper, implemented in :meth:`GDiffTable.train`):

    "the calculated differences ... are compared against the differences
    stored in the corresponding entry of the prediction table.  If there is
    a match, the matching distance is stored in the distance field.  If
    there is no match, the calculated differences are stored in the
    prediction table and there is no update of the distance field."

When several distances match simultaneously the paper does not prescribe a
tie-break; we default to the *sticky-nearest* policy (keep the currently
selected distance if it still matches, otherwise take the nearest matching
distance), and expose ``nearest`` and ``farthest`` alternatives for the
distance-policy ablation bench.

One deliberate refinement: by default the calculated differences are
written back on *every* update, not only on a mismatch
(``refresh_on_match=True``).  The paper's wording only requires storing
them on a mismatch, but leaving them stale lets garbage differences from a
disturbance (e.g. a pointer-chase jump) linger and later produce spurious
matches at far distances, which measurably degrades accuracy as the queue
grows — the opposite of the paper's observed behaviour.  The differences
are already computed each update, so the write-back is free in hardware.
``refresh_on_match=False`` restores the literal reading; the ablation
bench compares the two.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..tables import DirectMappedTable

#: Valid distance-selection policies.
DISTANCE_POLICIES = ("sticky-nearest", "nearest", "farthest")


class GDiffEntry:
    """One prediction-table entry: n stored differences plus a distance."""

    __slots__ = ("diffs", "distance")

    def __init__(self, order: int):
        self.diffs: List[Optional[int]] = [None] * order
        self.distance: Optional[int] = None

    def matching_distances(self, diffs: Sequence[Optional[int]]) -> List[int]:
        """Return all distances (1-based) where *diffs* match stored diffs.

        A position only matches when both the stored and the calculated
        difference are present (the queue was deep enough both times).
        """
        matches = []
        for i, (stored, calc) in enumerate(zip(self.diffs, diffs)):
            if stored is not None and calc is not None and stored == calc:
                matches.append(i + 1)
        return matches


class GDiffTable:
    """PC-indexed table of :class:`GDiffEntry` with the paper's update rule."""

    def __init__(
        self,
        order: int = 8,
        entries: Optional[int] = None,
        policy: str = "sticky-nearest",
        track_conflicts: bool = False,
        refresh_on_match: bool = True,
        tagged: bool = False,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        if policy not in DISTANCE_POLICIES:
            raise ValueError(f"unknown distance policy {policy!r}")
        self.order = order
        self.policy = policy
        self.refresh_on_match = refresh_on_match
        self._entries = entries
        self._table = DirectMappedTable(
            entries=entries, track_conflicts=track_conflicts, tagged=tagged
        )

    def lookup(self, pc: int) -> Optional[GDiffEntry]:
        """Return the entry for *pc* without creating one."""
        return self._table.lookup(pc)

    def train(self, pc: int, diffs: Sequence[Optional[int]]) -> Optional[int]:
        """Apply the paper's update rule for one completed instruction.

        Args:
            pc: static PC of the completing instruction.
            diffs: the calculated differences (result minus queue entry,
                distance 1..n; ``None`` where the queue was not yet deep
                enough).

        Returns:
            The distance selected by this update, or ``None`` if no match
            occurred (in which case the calculated diffs replace the stored
            ones and the distance field is left untouched).
        """
        entry = self._table.lookup_or_create(pc, lambda: GDiffEntry(self.order))
        matches = entry.matching_distances(diffs)
        if matches:
            entry.distance = self._choose(entry.distance, matches)
            if self.refresh_on_match:
                entry.diffs = list(diffs)
            return entry.distance
        entry.diffs = list(diffs)
        return None

    def _choose(self, current: Optional[int], matches: List[int]) -> int:
        """Tie-break among matching distances according to the policy."""
        if self.policy == "sticky-nearest" and current in matches:
            return current
        if self.policy == "farthest":
            return matches[-1]
        return matches[0]

    @property
    def conflict_rate(self) -> float:
        """Aliasing conflict rate of the underlying tagless table (Fig. 9)."""
        return self._table.conflict_rate

    def occupied(self) -> int:
        return self._table.occupied()

    def clear(self) -> None:
        self._table.clear()
