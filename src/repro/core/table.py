"""The gDiff prediction table.

Per Section 3, the PC-indexed prediction table "maintains the selected
distance (i.e., k for x_N ~ x_{N-k}) used for the prediction and the
differences between the instruction's result and the results of n
instructions that finished immediately before it".

Update rule (quoted from the paper, implemented in :meth:`GDiffTable.train`):

    "the calculated differences ... are compared against the differences
    stored in the corresponding entry of the prediction table.  If there is
    a match, the matching distance is stored in the distance field.  If
    there is no match, the calculated differences are stored in the
    prediction table and there is no update of the distance field."

When several distances match simultaneously the paper does not prescribe a
tie-break; we default to the *sticky-nearest* policy (keep the currently
selected distance if it still matches, otherwise take the nearest matching
distance), and expose ``nearest`` and ``farthest`` alternatives for the
distance-policy ablation bench.

One deliberate refinement: by default the calculated differences are
written back on *every* update, not only on a mismatch
(``refresh_on_match=True``).  The paper's wording only requires storing
them on a mismatch, but leaving them stale lets garbage differences from a
disturbance (e.g. a pointer-chase jump) linger and later produce spurious
matches at far distances, which measurably degrades accuracy as the queue
grows — the opposite of the paper's observed behaviour.  The differences
are already computed each update, so the write-back is free in hardware.
``refresh_on_match=False`` restores the literal reading; the ablation
bench compares the two.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence

from ..tables import DirectMappedTable
from ..wordops import WORD_MASK

#: Valid distance-selection policies.
DISTANCE_POLICIES = ("sticky-nearest", "nearest", "farthest")


class _TrainMeters:
    """Telemetry handles for one GDiffTable (attached, never constructed
    on the hot path)."""

    __slots__ = ("distance", "matches", "mismatches")

    def __init__(self, registry, prefix: str):
        self.distance = registry.histogram(f"{prefix}.distance_match")
        self.matches = registry.counter(f"{prefix}.train_matches")
        self.mismatches = registry.counter(f"{prefix}.train_mismatches")


class GDiffEntry:
    """One prediction-table entry: n stored differences plus a distance."""

    __slots__ = ("diffs", "distance")

    def __init__(self, order: int):
        self.diffs: List[Optional[int]] = [None] * order
        self.distance: Optional[int] = None

    def matching_distances(self, diffs: Sequence[Optional[int]]) -> List[int]:
        """Return all distances (1-based) where *diffs* match stored diffs.

        A position only matches when both the stored and the calculated
        difference are present (the queue was deep enough both times).
        """
        matches = []
        for i, (stored, calc) in enumerate(zip(self.diffs, diffs)):
            if stored is not None and calc is not None and stored == calc:
                matches.append(i + 1)
        return matches


class GDiffTable:
    """PC-indexed table of :class:`GDiffEntry` with the paper's update rule."""

    #: Telemetry meters; a class-level None keeps the un-instrumented hot
    #: path to a single attribute test.
    _meters: Optional[_TrainMeters] = None

    def __init__(
        self,
        order: int = 8,
        entries: Optional[int] = None,
        policy: str = "sticky-nearest",
        track_conflicts: bool = False,
        refresh_on_match: bool = True,
        tagged: bool = False,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        if policy not in DISTANCE_POLICIES:
            raise ValueError(f"unknown distance policy {policy!r}")
        self.order = order
        self.policy = policy
        self.refresh_on_match = refresh_on_match
        self._entries = entries
        self._table = DirectMappedTable(
            entries=entries, track_conflicts=track_conflicts, tagged=tagged
        )

    def lookup(self, pc: int) -> Optional[GDiffEntry]:
        """Return the entry for *pc* without creating one."""
        return self._table.lookup(pc)

    def train(self, pc: int, diffs: Sequence[Optional[int]]) -> Optional[int]:
        """Apply the paper's update rule for one completed instruction.

        Args:
            pc: static PC of the completing instruction.
            diffs: the calculated differences (result minus queue entry,
                distance 1..n; ``None`` where the queue was not yet deep
                enough).

        Returns:
            The distance selected by this update, or ``None`` if no match
            occurred (in which case the calculated diffs replace the stored
            ones and the distance field is left untouched).
        """
        entry = self._table.lookup_or_create(pc, lambda: GDiffEntry(self.order))
        matches = entry.matching_distances(diffs)
        meters = self._meters
        if matches:
            entry.distance = self._choose(entry.distance, matches)
            if self.refresh_on_match:
                entry.diffs = list(diffs)
            if meters is not None:
                meters.matches.inc()
                meters.distance.observe(entry.distance)
            return entry.distance
        entry.diffs = list(diffs)
        if meters is not None:
            meters.mismatches.inc()
        return None

    def _choose(self, current: Optional[int], matches: List[int]) -> int:
        """Tie-break among matching distances according to the policy."""
        if self.policy == "sticky-nearest" and current in matches:
            return current
        if self.policy == "farthest":
            return matches[-1]
        return matches[0]

    def attach_metrics(self, registry, prefix: str = "gdiff") -> None:
        """Wire this table into a :class:`~repro.telemetry.MetricsRegistry`.

        Enables aliasing accounting (the Figure 9 quantity) and registers
        the hot-path meters: a histogram of matched GVQ distances — the
        Figure 7 distribution as a free by-product of training — plus
        match/mismatch counters.  Slow-changing table state (accesses,
        conflicts, evictions, occupancy) is published by a collector at
        export time rather than counted per update.
        """
        self._table.track_conflicts = True
        self._meters = _TrainMeters(registry, prefix)
        table = self._table

        def _collect(reg):
            reg.counter(f"{prefix}.table_accesses").value = table.accesses
            reg.counter(f"{prefix}.table_conflicts").value = table.conflicts
            reg.counter(f"{prefix}.table_evictions").value = table.evictions
            reg.gauge(f"{prefix}.table_occupancy").set(table.occupied())
            reg.gauge(f"{prefix}.table_conflict_rate").set(table.conflict_rate)

        registry.add_collector(_collect)

    @property
    def conflict_rate(self) -> float:
        """Aliasing conflict rate of the underlying tagless table (Fig. 9)."""
        return self._table.conflict_rate

    def occupied(self) -> int:
        return self._table.occupied()

    def clear(self) -> None:
        self._table.clear()


class FlatGDiffTable:
    """The gDiff table as parallel preallocated flat arrays.

    Behaviourally identical to :class:`GDiffTable` (asserted by
    ``tests/test_flat_table.py``) but with none of its per-update
    allocation: rows live in parallel ``array`` columns —

    * ``_diffs``  (``'Q'``): ``order`` stored differences per row, machine
      words, laid out row-major (row *r* occupies ``[r*order, (r+1)*order)``);
    * ``_valid``  (``'H'``): how many leading differences in the row are
      real.  The object table's ``None`` pattern is always a *prefix* —
      calculated diffs are ``None`` exactly for the distances the queue
      cannot reach yet, which grow monotonically — so one prefix length
      replaces ``order`` per-slot ``is None`` tests;
    * ``_dist``   (``'H'``): the selected distance, 0 meaning "not locked";
    * ``_present``/``_owner``/``_owner_set``: slot-ever-written flag plus
      the aliasing-owner state of :class:`~repro.tables.DirectMappedTable`.

    Bounded tables are fully preallocated and indexed by masked PC; the
    unlimited profile table keeps a dict mapping PC to a row index into a
    growable arena (arrays double when full), so steady-state training is
    one dict probe plus array stores either way.

    The hot entry point is :meth:`train_prefix`, which takes the calculated
    differences as a caller-owned ``array('Q')`` scratch buffer plus its
    valid prefix length — no list is built and nothing is boxed.
    :meth:`train`/:meth:`lookup` keep the object table's sequence-of-
    optionals interface for existing callers and tests; ``train`` assumes
    the prefix shape described above (every caller in this package
    satisfies it by construction).
    """

    _meters: Optional[_TrainMeters] = None

    def __init__(
        self,
        order: int = 8,
        entries: Optional[int] = None,
        policy: str = "sticky-nearest",
        track_conflicts: bool = False,
        refresh_on_match: bool = True,
        tagged: bool = False,
        pc_shift: int = 2,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        if order >= 1 << 16:
            raise ValueError("order must fit the 16-bit distance column")
        if policy not in DISTANCE_POLICIES:
            raise ValueError(f"unknown distance policy {policy!r}")
        if entries is not None:
            if entries <= 0 or entries & (entries - 1):
                raise ValueError(f"entries must be a power of two, got {entries}")
        self.order = order
        self.policy = policy
        self.refresh_on_match = refresh_on_match
        self.entries = entries
        self.pc_shift = pc_shift
        self.track_conflicts = track_conflicts
        self.tagged = tagged
        self.accesses = 0
        self.conflicts = 0
        self.evictions = 0
        self._occupied = 0
        #: PC -> row index (unlimited mode only; bounded rows are the index).
        self._rows: Dict[int, int] = {}
        rows = entries if entries is not None else 256
        self._nrows = 0  # rows handed out (unlimited mode)
        self._diffs = array("Q", bytes(8 * rows * order))
        self._valid = array("H", bytes(2 * rows))
        self._dist = array("H", bytes(2 * rows))
        self._present = bytearray(rows)
        self._owner = array("Q", bytes(8 * rows))
        self._owner_set = bytearray(rows)
        self._scratch = array("Q", bytes(8 * order))

    @property
    def unlimited(self) -> bool:
        return self.entries is None

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        """Double the unlimited-mode arena."""
        self._diffs.extend(self._diffs)
        self._valid.extend(self._valid)
        self._dist.extend(self._dist)
        self._present.extend(bytes(len(self._present)))
        self._owner.extend(self._owner)
        self._owner_set.extend(bytes(len(self._owner_set)))

    def row_of(self, pc: int) -> int:
        """Row index holding *pc*'s entry, or -1 (no accounting, no create).

        Mirrors :meth:`GDiffTable.lookup` visibility: -1 when the slot was
        never written, or (tagged mode) when it is owned by a different PC.
        """
        if self.entries is None:
            return self._rows.get(pc, -1)
        idx = (pc >> self.pc_shift) & (self.entries - 1)
        if not self._present[idx]:
            return -1
        if self.tagged and self._owner_set[idx] and self._owner[idx] != pc:
            return -1
        return idx

    def train_row(self, pc: int) -> int:
        """Resolve (creating if needed) *pc*'s row with full accounting.

        Replicates :meth:`DirectMappedTable.lookup_or_create` exactly:
        counts the access, counts a conflict when the slot's owner is a
        different PC (``track_conflicts``), evicts-and-restarts on an
        aliased tagged slot, and records ownership.
        """
        self.accesses += 1
        if self.entries is None:
            row = self._rows.get(pc, -1)
            if row < 0:
                row = self._nrows
                if row * self.order == len(self._diffs):
                    self._grow()
                self._nrows = row + 1
                self._rows[pc] = row
                self._present[row] = 1
                self._occupied += 1
                self._dist[row] = 0
                self._valid[row] = 0
            # An unlimited table cannot alias: owner bookkeeping is dead
            # weight (owner would always equal pc), so skip it.
            return row
        idx = (pc >> self.pc_shift) & (self.entries - 1)
        if self._present[idx]:
            if self._owner_set[idx] and self._owner[idx] != pc:
                if self.track_conflicts:
                    self.conflicts += 1
                if self.tagged:
                    self.evictions += 1
                    self._dist[idx] = 0
                    self._valid[idx] = 0
        else:
            self._present[idx] = 1
            self._occupied += 1
            self._dist[idx] = 0
            self._valid[idx] = 0
        if self.track_conflicts or self.tagged:
            self._owner[idx] = pc
            self._owner_set[idx] = 1
        return idx

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_prefix(self, pc: int, calc: array, vc: int) -> int:
        """Apply the paper's update rule from a flat difference vector.

        Args:
            pc: static PC of the completing instruction.
            calc: ``array('Q')`` of at least ``order`` words whose first
                *vc* entries are the calculated differences for distances
                1..vc (the caller's reusable scratch buffer; entries past
                *vc* are ignored garbage).
            vc: number of valid leading differences.

        Returns:
            The selected distance, or 0 on a mismatch (the flat encoding
            of :meth:`GDiffTable.train` returning ``None``).
        """
        row = self.train_row(pc)
        order = self.order
        base = row * order
        diffs = self._diffs
        stored_valid = self._valid[row]
        limit = stored_valid if stored_valid < vc else vc
        chosen = 0
        cur = self._dist[row]
        if (self.policy == "sticky-nearest" and 0 < cur <= limit
                and diffs[base + cur - 1] == calc[cur - 1]):
            chosen = cur
        elif self.policy == "farthest":
            for d in range(limit, 0, -1):
                if diffs[base + d - 1] == calc[d - 1]:
                    chosen = d
                    break
        else:
            for d in range(limit):
                if diffs[base + d] == calc[d]:
                    chosen = d + 1
                    break
        meters = self._meters
        if chosen:
            self._dist[row] = chosen
            if self.refresh_on_match:
                # Copy the full row (memcpy); words past vc are garbage but
                # unreachable, since _valid gates every read.
                diffs[base:base + order] = calc[:order]
                self._valid[row] = vc
            if meters is not None:
                meters.matches.inc()
                meters.distance.observe(chosen)
            return chosen
        diffs[base:base + order] = calc[:order]
        self._valid[row] = vc
        if meters is not None:
            meters.mismatches.inc()
        return 0

    def train(self, pc: int, diffs: Sequence[Optional[int]]) -> Optional[int]:
        """Sequence-of-optionals compatibility wrapper over train_prefix.

        The ``None`` pattern must be a suffix (prefix-valid), which every
        producer of calculated differences in this package guarantees.
        """
        scratch = self._scratch
        vc = 0
        order = self.order
        for v in diffs:
            if v is None or vc == order:
                break
            scratch[vc] = v & WORD_MASK
            vc += 1
        selected = self.train_prefix(pc, scratch, vc)
        return selected if selected else None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[GDiffEntry]:
        """Return a :class:`GDiffEntry` *snapshot* of *pc*'s row, or None.

        Mutating the snapshot does not write back to the table.
        """
        row = self.row_of(pc)
        if row < 0:
            return None
        order = self.order
        entry = GDiffEntry(order)
        valid = self._valid[row]
        base = row * order
        for i in range(valid):
            entry.diffs[i] = self._diffs[base + i]
        d = self._dist[row]
        entry.distance = d if d else None
        return entry

    def locked_distances(self) -> Dict[int, int]:
        """Return {table index: selected distance} for all locked rows."""
        result: Dict[int, int] = {}
        dist = self._dist
        if self.entries is None:
            for pc, row in self._rows.items():
                if dist[row]:
                    result[pc] = dist[row]
            return result
        present = self._present
        for idx in range(self.entries):
            if present[idx] and dist[idx]:
                result[idx] = dist[idx]
        return result

    # ------------------------------------------------------------------
    # Telemetry / stats (same surface as GDiffTable)
    # ------------------------------------------------------------------
    def attach_metrics(self, registry, prefix: str = "gdiff") -> None:
        """Wire this table into a :class:`~repro.telemetry.MetricsRegistry`.

        Same meters and collectors as :meth:`GDiffTable.attach_metrics`.
        """
        self.track_conflicts = True
        self._meters = _TrainMeters(registry, prefix)
        table = self

        def _collect(reg):
            reg.counter(f"{prefix}.table_accesses").value = table.accesses
            reg.counter(f"{prefix}.table_conflicts").value = table.conflicts
            reg.counter(f"{prefix}.table_evictions").value = table.evictions
            reg.gauge(f"{prefix}.table_occupancy").set(table.occupied())
            reg.gauge(f"{prefix}.table_conflict_rate").set(table.conflict_rate)

        registry.add_collector(_collect)

    @property
    def conflict_rate(self) -> float:
        """Aliasing conflict rate of the tagless table (Fig. 9)."""
        if not self.accesses:
            return 0.0
        return self.conflicts / self.accesses

    def occupied(self) -> int:
        return self._occupied

    def clear(self) -> None:
        self._rows.clear()
        self._nrows = 0
        self._occupied = 0
        self.accesses = 0
        self.conflicts = 0
        self.evictions = 0
        # Rows are guarded by _present/_rows; buffer words need no zeroing.
        self._present[:] = bytes(len(self._present))
        self._owner_set[:] = bytes(len(self._owner_set))
