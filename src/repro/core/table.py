"""The gDiff prediction table.

Per Section 3, the PC-indexed prediction table "maintains the selected
distance (i.e., k for x_N ~ x_{N-k}) used for the prediction and the
differences between the instruction's result and the results of n
instructions that finished immediately before it".

Update rule (quoted from the paper, implemented in :meth:`GDiffTable.train`):

    "the calculated differences ... are compared against the differences
    stored in the corresponding entry of the prediction table.  If there is
    a match, the matching distance is stored in the distance field.  If
    there is no match, the calculated differences are stored in the
    prediction table and there is no update of the distance field."

When several distances match simultaneously the paper does not prescribe a
tie-break; we default to the *sticky-nearest* policy (keep the currently
selected distance if it still matches, otherwise take the nearest matching
distance), and expose ``nearest`` and ``farthest`` alternatives for the
distance-policy ablation bench.

One deliberate refinement: by default the calculated differences are
written back on *every* update, not only on a mismatch
(``refresh_on_match=True``).  The paper's wording only requires storing
them on a mismatch, but leaving them stale lets garbage differences from a
disturbance (e.g. a pointer-chase jump) linger and later produce spurious
matches at far distances, which measurably degrades accuracy as the queue
grows — the opposite of the paper's observed behaviour.  The differences
are already computed each update, so the write-back is free in hardware.
``refresh_on_match=False`` restores the literal reading; the ablation
bench compares the two.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..tables import DirectMappedTable

#: Valid distance-selection policies.
DISTANCE_POLICIES = ("sticky-nearest", "nearest", "farthest")


class _TrainMeters:
    """Telemetry handles for one GDiffTable (attached, never constructed
    on the hot path)."""

    __slots__ = ("distance", "matches", "mismatches")

    def __init__(self, registry, prefix: str):
        self.distance = registry.histogram(f"{prefix}.distance_match")
        self.matches = registry.counter(f"{prefix}.train_matches")
        self.mismatches = registry.counter(f"{prefix}.train_mismatches")


class GDiffEntry:
    """One prediction-table entry: n stored differences plus a distance."""

    __slots__ = ("diffs", "distance")

    def __init__(self, order: int):
        self.diffs: List[Optional[int]] = [None] * order
        self.distance: Optional[int] = None

    def matching_distances(self, diffs: Sequence[Optional[int]]) -> List[int]:
        """Return all distances (1-based) where *diffs* match stored diffs.

        A position only matches when both the stored and the calculated
        difference are present (the queue was deep enough both times).
        """
        matches = []
        for i, (stored, calc) in enumerate(zip(self.diffs, diffs)):
            if stored is not None and calc is not None and stored == calc:
                matches.append(i + 1)
        return matches


class GDiffTable:
    """PC-indexed table of :class:`GDiffEntry` with the paper's update rule."""

    #: Telemetry meters; a class-level None keeps the un-instrumented hot
    #: path to a single attribute test.
    _meters: Optional[_TrainMeters] = None

    def __init__(
        self,
        order: int = 8,
        entries: Optional[int] = None,
        policy: str = "sticky-nearest",
        track_conflicts: bool = False,
        refresh_on_match: bool = True,
        tagged: bool = False,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        if policy not in DISTANCE_POLICIES:
            raise ValueError(f"unknown distance policy {policy!r}")
        self.order = order
        self.policy = policy
        self.refresh_on_match = refresh_on_match
        self._entries = entries
        self._table = DirectMappedTable(
            entries=entries, track_conflicts=track_conflicts, tagged=tagged
        )

    def lookup(self, pc: int) -> Optional[GDiffEntry]:
        """Return the entry for *pc* without creating one."""
        return self._table.lookup(pc)

    def train(self, pc: int, diffs: Sequence[Optional[int]]) -> Optional[int]:
        """Apply the paper's update rule for one completed instruction.

        Args:
            pc: static PC of the completing instruction.
            diffs: the calculated differences (result minus queue entry,
                distance 1..n; ``None`` where the queue was not yet deep
                enough).

        Returns:
            The distance selected by this update, or ``None`` if no match
            occurred (in which case the calculated diffs replace the stored
            ones and the distance field is left untouched).
        """
        entry = self._table.lookup_or_create(pc, lambda: GDiffEntry(self.order))
        matches = entry.matching_distances(diffs)
        meters = self._meters
        if matches:
            entry.distance = self._choose(entry.distance, matches)
            if self.refresh_on_match:
                entry.diffs = list(diffs)
            if meters is not None:
                meters.matches.inc()
                meters.distance.observe(entry.distance)
            return entry.distance
        entry.diffs = list(diffs)
        if meters is not None:
            meters.mismatches.inc()
        return None

    def _choose(self, current: Optional[int], matches: List[int]) -> int:
        """Tie-break among matching distances according to the policy."""
        if self.policy == "sticky-nearest" and current in matches:
            return current
        if self.policy == "farthest":
            return matches[-1]
        return matches[0]

    def attach_metrics(self, registry, prefix: str = "gdiff") -> None:
        """Wire this table into a :class:`~repro.telemetry.MetricsRegistry`.

        Enables aliasing accounting (the Figure 9 quantity) and registers
        the hot-path meters: a histogram of matched GVQ distances — the
        Figure 7 distribution as a free by-product of training — plus
        match/mismatch counters.  Slow-changing table state (accesses,
        conflicts, evictions, occupancy) is published by a collector at
        export time rather than counted per update.
        """
        self._table.track_conflicts = True
        self._meters = _TrainMeters(registry, prefix)
        table = self._table

        def _collect(reg):
            reg.counter(f"{prefix}.table_accesses").value = table.accesses
            reg.counter(f"{prefix}.table_conflicts").value = table.conflicts
            reg.counter(f"{prefix}.table_evictions").value = table.evictions
            reg.gauge(f"{prefix}.table_occupancy").set(table.occupied())
            reg.gauge(f"{prefix}.table_conflict_rate").set(table.conflict_rate)

        registry.add_collector(_collect)

    @property
    def conflict_rate(self) -> float:
        """Aliasing conflict rate of the underlying tagless table (Fig. 9)."""
        return self._table.conflict_rate

    def occupied(self) -> int:
        return self._table.occupied()

    def clear(self) -> None:
        self._table.clear()
