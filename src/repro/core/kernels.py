"""Fused predict+train kernels over packed trace columns.

The profile methodology calls every predictor twice per dynamic
instruction (``predict`` then ``update``); even with flat predictor state
that is half a dozen Python calls per pair.  The kernels here fuse one
predictor's whole profile run into a single loop that walks the packed
``(pc, value)`` (or ``(pc, addr)``) columns directly, with every piece of
hot state bound to a local variable — no ``Instruction`` materialisation,
no method dispatch, no per-pair allocation.

Two structural tricks carry the gDiff kernels:

* **The values-column window.**  In a profile run every value-producing
  instruction pushes into the global value queue, so the queue window seen
  by pair *i* is a slice of the values column itself — ``GVQ[d]`` is
  ``values[i - delay - d]`` (falling back to the predictor's pre-existing
  ring contents for the first ``order + delay`` pairs).  The loop performs
  no ring writes or modulo arithmetic; the ring and validity mask are
  written back once at the end, so the predictor's externally observable
  state is *identical* to what the object path leaves behind (and
  ``warm_then_measure`` can chain kernel runs).  The same argument covers
  the trace-driven HGVQ: each pair's write-back deposits its real value
  before any younger pair reads the slot, so the window is again the
  values column and the filler's *prediction* is dead — only its training
  matters, which runs as its own fused pass.

* **Lazy difference vectors.**  The object path materialises the order-n
  difference vector on every update (to compare against the stored one
  and to store it back).  But a stored vector is fully determined by
  ``(actual, i)`` of the pair that stored it: its difference at distance
  *d* is ``actual - window_i[d]``, and ``window_i`` is just another slice
  of the values column.  So the kernel stores the two words and compares
  ``actual_now - window_now[d] == actual_then - window_then[d]`` (as
  ``actual_now + window_then[d] == actual_then + window_now[d]`` mod
  2^64) on the fly — per-pair training cost drops from O(order) to
  O(distances scanned), which the sticky policy usually makes O(1).  The
  lazily-represented rows are materialised into the flat diff arrays once
  when the kernel finishes, leaving the table bit-identical to the object
  path's.

Every kernel reproduces the object path exactly — the same
:class:`~repro.predictors.base.PredictionStats` counters and the same
table/queue/confidence state (asserted by
``tests/test_kernel_equivalence.py``).  Shapes the kernels do not model
(tagged tables, attached telemetry meters, Markov predictors, custom
fillers) make :func:`run_pairs` decline before mutating anything, and the
caller falls back to the object loop.

``REPRO_KERNELS=0`` disables the kernels entirely (the escape hatch;
checked on every call so tests can toggle it).
"""

from __future__ import annotations

import os
from typing import Optional

from ..predictors.base import ConstantPredictor, PredictionStats
from ..predictors.confidence import ConfidenceTable
from ..predictors.dfcm import DFCMPredictor, _DFCMEntry
from ..predictors.fcm import _HASH_MULT
from ..predictors.last_value import LastValuePredictor
from ..predictors.stride import StridePredictor, _StrideEntry
from ..wordops import WORD_MASK
from .gdiff import GDiffPredictor
from .hybrid import HybridGDiffPredictor


def kernels_enabled() -> bool:
    """True unless the ``REPRO_KERNELS=0`` escape hatch is set."""
    return os.environ.get("REPRO_KERNELS", "1") != "0"


def run_pairs(predictor, pcs, values, stats: PredictionStats,
              conf: Optional[ConfidenceTable] = None) -> bool:
    """Run *predictor* over packed columns with a fused kernel, if one fits.

    Args:
        predictor: the predictor to drive (predict-then-update per pair).
        pcs, values: packed ``array('Q')`` columns (addresses count as
            values — the Section 6 address runs use the same kernels).
        stats: accumulated into exactly as the object path would.
        conf: optional confidence gate; when given, the run is gated with
            the same record/train interleaving as the generic loop.

    Returns:
        True when a kernel ran; False when no kernel models this
        predictor's configuration (caller must fall back to the object
        path — nothing has been mutated).
    """
    if not kernels_enabled():
        return False
    if conf is not None and (type(conf) is not ConfidenceTable
                             or conf._table.tagged):
        return False
    kind = type(predictor)
    if kind is GDiffPredictor:
        table = predictor.table
        if table.tagged or table._meters is not None:
            return False
        _gdiff_pairs(predictor, pcs, values, stats, conf)
        return True
    if kind is StridePredictor:
        table = predictor._table
        if table.tagged or table.track_conflicts:
            return False
        _stride_pairs(predictor, pcs, values, stats, conf)
        return True
    if kind is LastValuePredictor:
        table = predictor._table
        if table.tagged or table.track_conflicts:
            return False
        _last_value_pairs(predictor, pcs, values, stats, conf)
        return True
    if kind is DFCMPredictor:
        table = predictor._l1
        if table.tagged or table.track_conflicts:
            return False
        _dfcm_pairs(predictor, pcs, values, stats, conf)
        return True
    if kind is HybridGDiffPredictor:
        table = predictor.table
        if table.tagged or table._meters is not None:
            return False
        if getattr(predictor, "_trace_seq", None) is not None:
            return False  # a dangling dispatch: only the object path pairs it
        filler = predictor.filler
        fkind = type(filler)
        if fkind is ConstantPredictor:
            pass
        elif fkind in (StridePredictor, LastValuePredictor):
            if filler._table.tagged or filler._table.track_conflicts:
                return False
        else:
            return False
        _hybrid_pairs(predictor, pcs, values, stats, conf)
        return True
    return False


def _conf_locals(conf: Optional[ConfidenceTable]):
    """Unpack a confidence gate into loop locals.

    Returns (gated, counters dict, unlimited?, mask, shift, threshold, up,
    down, max).  The counter dict is the gate's own backing store, mutated
    in place, so the table ends in exactly the state the object path's
    ``is_confident``/``train`` calls would leave.
    """
    if conf is None:
        return False, None, True, 0, 0, 0, 0, 0, 0
    ctab = conf._table
    cunlim = ctab.entries is None
    cmask = 0 if cunlim else ctab.entries - 1
    return (True, ctab._data, cunlim, cmask, ctab.pc_shift, conf.threshold,
            conf.up, conf.down, conf.max_value)


# ---------------------------------------------------------------------------
# gDiff (shared by the GVQ and trace-driven HGVQ deployments)
# ---------------------------------------------------------------------------
def _gdiff_core(table, pcs, values, stats, conf, ring, cap, count0, delay,
                order):
    """The fused gDiff loop over one packed column pair.

    *count0* is the queue's global position at entry (values pushed, or
    HGVQ slots allocated); *delay* is the value delay T (0 for HGVQ).
    Handles every policy, bounded/unlimited tables, and the aliasing
    accounting of ``DirectMappedTable.lookup_or_create`` (tagless only).
    Returns the last selected distance (0 = last update mismatched, None =
    no pairs) for ``last_distance``; the caller syncs queue state.
    """
    eff0 = count0 - delay
    mask = WORD_MASK
    n = len(pcs)

    unlimited = table.entries is None
    rows_get = table._rows.get
    diffs = table._diffs
    dist = table._dist
    valid = table._valid
    present = table._present
    owner = table._owner
    owner_set = table._owner_set
    sticky = table.policy == "sticky-nearest"
    farthest = table.policy == "farthest"
    refresh = table.refresh_on_match
    track = table.track_conflicts
    emask = 0 if unlimited else table.entries - 1
    shift = table.pc_shift
    occupied = table._occupied
    nrows = table._nrows
    conflicts = 0
    # Rows stored during this run, kept lazily as (actual, pair index);
    # materialised into the flat arrays at the end.
    lazy = {}
    lazy_get = lazy.get

    gated, cdata, cunlim, cmask, cshift, cthr, cup, cdown, cmax = \
        _conf_locals(conf)
    cget = cdata.get if gated else None

    predictions = correct = confident = confident_correct = 0
    last_sel = None

    i = 0
    for pc, actual in zip(pcs, values):
        vc = eff0 + i  # visible window depth: always a prefix 1..vc
        if vc > order:
            vc = order
        elif vc < 0:
            vc = 0
        if unlimited:
            row = rows_get(pc, -1)
            idx = 0
        else:
            idx = (pc >> shift) & emask
            row = idx if present[idx] else -1
        # -- predict: one (lazy: two) window read at the locked distance
        predicted = None
        lz = None
        if row >= 0:
            lz = lazy_get(row)
            d = dist[row]
            if d and d <= vc:
                if lz is None:
                    if d <= valid[row]:
                        s = i - delay - d
                        base = values[s] if s >= 0 \
                            else ring[(count0 + s) % cap]
                        predicted = (base + diffs[row * order + d - 1]) & mask
                else:
                    a0 = lz[0]
                    i0 = lz[1]
                    sv = eff0 + i0
                    if d <= sv:  # d <= order always holds
                        s = i - delay - d
                        base = values[s] if s >= 0 \
                            else ring[(count0 + s) % cap]
                        s0 = i0 - delay - d
                        b0 = values[s0] if s0 >= 0 \
                            else ring[(count0 + s0) % cap]
                        predicted = (base + a0 - b0) & mask
        # -- score (and gate)
        if predicted is not None:
            predictions += 1
            if gated:
                slot = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(slot, 0)
                if predicted == actual:
                    correct += 1
                    if cur >= cthr:
                        confident += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if cur >= cthr:
                        confident += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[slot] = cur
            elif predicted == actual:
                correct += 1
        # -- resolve/create the row with lookup_or_create's accounting
        if row < 0:
            if unlimited:
                if nrows * order == len(diffs):
                    table._nrows = nrows
                    table._grow()
                    diffs = table._diffs
                    dist = table._dist
                    valid = table._valid
                    present = table._present
                row = nrows
                nrows += 1
                table._rows[pc] = row
            else:
                row = idx
                if track:
                    owner[row] = pc
                    owner_set[row] = 1
            present[row] = 1
            occupied += 1
            dist[row] = 0
            valid[row] = 0
        elif not unlimited and track:
            if owner_set[row] and owner[row] != pc:
                conflicts += 1
            owner[row] = pc
            owner_set[row] = 1
        # -- match & select (paper's update rule), diffs compared lazily
        if lz is None:
            sv = valid[row]
            limit = sv if sv < vc else vc
            rbase = row * order
            chosen = 0
            if sticky:
                d = dist[row]
                if 0 < d <= limit:
                    s = i - delay - d
                    base = values[s] if s >= 0 else ring[(count0 + s) % cap]
                    if diffs[rbase + d - 1] == (actual - base) & mask:
                        chosen = d
            if not chosen and limit:
                if farthest:
                    for d in range(limit, 0, -1):
                        s = i - delay - d
                        base = values[s] if s >= 0 \
                            else ring[(count0 + s) % cap]
                        if diffs[rbase + d - 1] == (actual - base) & mask:
                            chosen = d
                            break
                else:
                    for d in range(1, limit + 1):
                        s = i - delay - d
                        base = values[s] if s >= 0 \
                            else ring[(count0 + s) % cap]
                        if diffs[rbase + d - 1] == (actual - base) & mask:
                            chosen = d
                            break
        else:
            a0 = lz[0]
            i0 = lz[1]
            sv = eff0 + i0
            if sv > order:
                sv = order
            limit = sv if sv < vc else vc
            chosen = 0
            if sticky:
                d = dist[row]
                if 0 < d <= limit:
                    s = i - delay - d
                    base = values[s] if s >= 0 else ring[(count0 + s) % cap]
                    s0 = i0 - delay - d
                    b0 = values[s0] if s0 >= 0 else ring[(count0 + s0) % cap]
                    if (actual + b0) & mask == (a0 + base) & mask:
                        chosen = d
            if not chosen and limit:
                if farthest:
                    scan = range(limit, 0, -1)
                else:
                    scan = range(1, limit + 1)
                for d in scan:
                    s = i - delay - d
                    base = values[s] if s >= 0 else ring[(count0 + s) % cap]
                    s0 = i0 - delay - d
                    b0 = values[s0] if s0 >= 0 else ring[(count0 + s0) % cap]
                    if (actual + b0) & mask == (a0 + base) & mask:
                        chosen = d
                        break
        if chosen:
            dist[row] = chosen
            if refresh:
                lazy[row] = (actual, i)
            last_sel = chosen
        else:
            lazy[row] = (actual, i)
            last_sel = 0
        i += 1

    # -- materialise lazily-stored rows into the flat diff arrays
    for row, (a0, i0) in lazy.items():
        sv = eff0 + i0
        if sv > order:
            sv = order
        rbase = row * order
        for dd in range(sv):
            s = i0 - delay - 1 - dd
            base = values[s] if s >= 0 else ring[(count0 + s) % cap]
            diffs[rbase + dd] = (a0 - base) & mask
        valid[row] = sv

    table.accesses += n
    table.conflicts += conflicts
    table._occupied = occupied
    table._nrows = nrows
    stats.attempts += n
    stats.predictions += predictions
    stats.correct += correct
    stats.confident += confident
    stats.confident_correct += confident_correct
    return last_sel


def _gdiff_pairs(pred: GDiffPredictor, pcs, values, stats, conf) -> None:
    """Fused gDiff profile kernel (GVQ deployment, any delay/policy)."""
    queue = pred.queue
    cap = queue._capacity
    ring = queue._buf
    count0 = queue._count
    last_sel = _gdiff_core(pred.table, pcs, values, stats, conf, ring, cap,
                           count0, queue.delay, pred.order)
    # Write the queue state the object path's per-pair pushes would leave.
    n = len(pcs)
    new_count = count0 + n
    queue._count = new_count
    kv = new_count - queue.delay
    if kv < 0:
        kv = 0
    elif kv > queue.size:
        kv = queue.size
    queue._vmask = (1 << kv) - 1
    start = new_count - cap
    if start < count0:
        start = count0
    for s in range(start, new_count):
        ring[s % cap] = values[s - count0]
    if last_sel is not None:
        pred.last_distance = last_sel if last_sel else None


def _hybrid_pairs(pred: HybridGDiffPredictor, pcs, values, stats,
                  conf) -> None:
    """Fused trace-driven HGVQ kernel.

    Trace-driven dispatch/write-back pairs mean every slot holds its real
    value before any younger pair reads it, so the gDiff training is the
    plain delay-0 core over the values column, and the filler reduces to
    its own training pass (its predictions are dead; its state feeds
    nothing the gDiff side reads).
    """
    queue = pred.queue
    cap = queue._capacity
    ring = queue._buf
    seq0 = queue._next_seq
    last_sel = _gdiff_core(pred.table, pcs, values, stats, conf, ring, cap,
                           seq0, 0, pred.order)
    filler = pred.filler
    ftype = type(filler)
    if ftype is StridePredictor:
        _train_stride(filler, pcs, values)
    elif ftype is LastValuePredictor:
        _train_last_value(filler, pcs, values)
    # ConstantPredictor.update is a no-op.
    n = len(pcs)
    queue._next_seq = seq0 + n
    start = seq0 + n - cap
    if start < seq0:
        start = seq0
    for s in range(start, seq0 + n):
        ring[s % cap] = values[s - seq0]
    if last_sel is not None:
        pred.last_distance = last_sel if last_sel else None
    if n:
        pred._trace_seq = None


# ---------------------------------------------------------------------------
# Local predictors
# ---------------------------------------------------------------------------
def _stride_pairs(pred: StridePredictor, pcs, values, stats, conf) -> None:
    """Fused two-delta local-stride kernel (entry objects mutated in place)."""
    table = pred._table
    data = table._data
    dget = data.get
    unlim = table.entries is None
    emask = 0 if unlim else table.entries - 1
    shift = table.pc_shift
    two_delta = pred.two_delta
    mask = WORD_MASK
    n = len(pcs)

    gated, cdata, cunlim, cmask, cshift, cthr, cup, cdown, cmax = \
        _conf_locals(conf)
    cget = cdata.get if gated else None

    predictions = correct = confident = confident_correct = 0
    for pc, actual in zip(pcs, values):
        idx = pc if unlim else (pc >> shift) & emask
        e = dget(idx)
        if e is not None and e.seen:
            predicted = (e.last + e.stride * (1 + e.spec_ahead)) & mask
            predictions += 1
            if gated:
                slot = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(slot, 0)
                if predicted == actual:
                    correct += 1
                    if cur >= cthr:
                        confident += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if cur >= cthr:
                        confident += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[slot] = cur
            elif predicted == actual:
                correct += 1
        if e is None:
            e = _StrideEntry()
            e.last = actual
            e.seen = 1
            data[idx] = e
        elif e.seen == 0:
            e.last = actual
            e.seen = 1
        else:
            delta = (actual - e.last) & mask
            if two_delta:
                if delta == e.candidate:
                    e.stride = delta
                e.candidate = delta
            else:
                e.stride = delta
            e.last = actual
            e.seen += 1
    table.accesses += n
    stats.attempts += n
    stats.predictions += predictions
    stats.correct += correct
    stats.confident += confident
    stats.confident_correct += confident_correct


def _train_stride(pred: StridePredictor, pcs, values) -> None:
    """Update-only stride pass (HGVQ filler training; no scoring)."""
    table = pred._table
    data = table._data
    dget = data.get
    unlim = table.entries is None
    emask = 0 if unlim else table.entries - 1
    shift = table.pc_shift
    two_delta = pred.two_delta
    mask = WORD_MASK
    for pc, actual in zip(pcs, values):
        idx = pc if unlim else (pc >> shift) & emask
        e = dget(idx)
        if e is None:
            e = _StrideEntry()
            e.last = actual
            e.seen = 1
            data[idx] = e
        elif e.seen == 0:
            e.last = actual
            e.seen = 1
        else:
            delta = (actual - e.last) & mask
            if two_delta:
                if delta == e.candidate:
                    e.stride = delta
                e.candidate = delta
            else:
                e.stride = delta
            e.last = actual
            e.seen += 1
    table.accesses += len(pcs)


def _last_value_pairs(pred: LastValuePredictor, pcs, values, stats,
                      conf) -> None:
    """Fused last-value kernel (the table dict is the whole state)."""
    table = pred._table
    data = table._data
    dget = data.get
    unlim = table.entries is None
    emask = 0 if unlim else table.entries - 1
    shift = table.pc_shift
    n = len(pcs)

    gated, cdata, cunlim, cmask, cshift, cthr, cup, cdown, cmax = \
        _conf_locals(conf)
    cget = cdata.get if gated else None

    predictions = correct = confident = confident_correct = 0
    for pc, actual in zip(pcs, values):
        idx = pc if unlim else (pc >> shift) & emask
        predicted = dget(idx)
        if predicted is not None:
            predictions += 1
            if gated:
                slot = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(slot, 0)
                if predicted == actual:
                    correct += 1
                    if cur >= cthr:
                        confident += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if cur >= cthr:
                        confident += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[slot] = cur
            elif predicted == actual:
                correct += 1
        data[idx] = actual
    table.accesses += n
    stats.attempts += n
    stats.predictions += predictions
    stats.correct += correct
    stats.confident += confident
    stats.confident_correct += confident_correct


def _train_last_value(pred: LastValuePredictor, pcs, values) -> None:
    """Update-only last-value pass (HGVQ filler training)."""
    table = pred._table
    data = table._data
    unlim = table.entries is None
    emask = 0 if unlim else table.entries - 1
    shift = table.pc_shift
    for pc, actual in zip(pcs, values):
        data[pc if unlim else (pc >> shift) & emask] = actual
    table.accesses += len(pcs)


def _dfcm_pairs(pred: DFCMPredictor, pcs, values, stats, conf) -> None:
    """Fused DFCM kernel.

    Two structural savings over the object path: the second-level context
    hash is computed once per pair (``predict`` and ``update`` fold the
    same pre-append stride context, so the update reuses the predict's
    key), and the fold itself is maintained as a *rolling* hash.  With
    ``H = fold(salt, [v1..vk])`` the next context's hash is

        ``H' = H*M + v_new - v1*M^k + salt*(M^k - M^{k+1})  (mod 2^64)``

    — two multiplies instead of *order*, exact (no approximation, so the
    second-level keys stay bit-identical to the object path's).  The cache
    is keyed by table slot and validated against the accessing PC, so
    first-level aliasing falls back to a full fold.
    """
    l1 = pred._l1
    data = l1._data
    dget = data.get
    unlim = l1.entries is None
    emask = 0 if unlim else l1.entries - 1
    shift = l1.pc_shift
    l2 = pred._l2
    l2get = l2.get
    l2e = pred.l2_entries
    order = pred.order
    hmul = _HASH_MULT
    mask = WORD_MASK
    n = len(pcs)
    hmul_k = pow(hmul, order, 1 << 64)
    # salt coefficient of the roll: salt * (M^k - M^(k+1)) mod 2^64
    cmul = (hmul_k - hmul_k * hmul) & mask
    hcache = {}  # slot -> (pc, rolling hash, salt term); kernel-local
    hget = hcache.get

    gated, cdata, cunlim, cmask, cshift, cthr, cup, cdown, cmax = \
        _conf_locals(conf)
    cget = cdata.get if gated else None

    predictions = correct = confident = confident_correct = 0
    for pc, actual in zip(pcs, values):
        idx = pc if unlim else (pc >> shift) & emask
        e = dget(idx)
        predicted = None
        key = -1
        if e is not None:
            strides = e.strides
            if len(strides) >= order:
                cached = hget(idx)
                if cached is not None and cached[0] == pc:
                    h = cached[1]
                    csalt = cached[2]
                else:
                    h = pc & mask
                    for v in strides:
                        h = (h * hmul + v) & mask
                    csalt = (pc * cmul) & mask
                key = h % l2e
                stride = l2get(key)
                if stride is not None:
                    predicted = (e.last + stride) & mask
        if predicted is not None:
            predictions += 1
            if gated:
                slot = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(slot, 0)
                if predicted == actual:
                    correct += 1
                    if cur >= cthr:
                        confident += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if cur >= cthr:
                        confident += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[slot] = cur
            elif predicted == actual:
                correct += 1
        if e is None:
            e = _DFCMEntry()
            e.last = actual
            e.seen = 1
            data[idx] = e
        elif e.seen == 0:
            e.last = actual
            e.seen = 1
        else:
            stride = (actual - e.last) & mask
            strides = e.strides
            if key >= 0:
                l2[key] = stride
                hcache[idx] = (pc,
                               (h * hmul + stride - strides[0] * hmul_k
                                + csalt) & mask,
                               csalt)
            strides.append(stride)
            if len(strides) > order:
                strides.pop(0)
            e.last = actual
            e.seen += 1
    l1.accesses += n
    stats.attempts += n
    stats.predictions += predictions
    stats.correct += correct
    stats.confident += confident
    stats.confident_correct += confident_correct
