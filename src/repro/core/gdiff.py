"""The gDiff predictor (Section 3).

gDiff exploits *global stride locality*: the value an instruction produces
is predicted as ``GVQ[k] + diff_k`` — the sum of a value produced by some
recent (possibly different) instruction and a learned stride.  The distance
*k* and stride ``diff_k`` are discovered dynamically by diffing every
completed result against the global value queue and locking onto a distance
whose difference repeats (see :mod:`repro.core.table`).

This class covers two of the paper's three deployments directly:

* **Profile / retire-order** (Figures 8-10): drive ``predict``/``update``
  over the committed value stream in program order.  The optional
  ``delay`` constructor argument reproduces the value-delay study of
  Section 3.1 (the ``T`` most recent values are invisible).
* **SGVQ** (Figure 13): the pipeline calls ``predict`` at dispatch and
  ``update`` at write-back, so the queue fills in (speculative) completion
  order, exposing the predictor to execution variation.

The HGVQ deployment needs a slotted queue and lives in
:class:`repro.core.hybrid.HybridGDiffPredictor`.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from ..predictors.base import ValuePredictor
from ..wordops import WORD_MASK, wsub
from .gvq import GlobalValueQueue
from .table import FlatGDiffTable


class GDiffPredictor(ValuePredictor):
    """Order-*n* gDiff predictor over a shared global value queue.

    Args:
        order: queue size *n* (paper: 8 for profile studies, 32 for the
            pipeline studies).
        entries: prediction-table entries (power of two) or ``None`` for
            the unlimited profile table.
        delay: value delay ``T`` (Section 3.1); 0 for the ideal case.
        policy: distance tie-break policy (see
            :data:`repro.core.table.DISTANCE_POLICIES`).
        track_conflicts: enable aliasing accounting for Figure 9.
        tagged: tagged (alias-evicting) prediction table instead of the
            paper's tagless one — the table design-study option.
    """

    name = "gdiff"

    #: Distance selected by the most recent :meth:`update` (None when the
    #: update matched nothing).  Read by the event-trace recorder.
    last_distance: Optional[int] = None

    def __init__(
        self,
        order: int = 8,
        entries: Optional[int] = None,
        delay: int = 0,
        policy: str = "sticky-nearest",
        track_conflicts: bool = False,
        refresh_on_match: bool = True,
        tagged: bool = False,
    ):
        self.order = order
        self.queue = GlobalValueQueue(size=order, delay=delay)
        self.table = FlatGDiffTable(
            order=order,
            entries=entries,
            policy=policy,
            track_conflicts=track_conflicts,
            refresh_on_match=refresh_on_match,
            tagged=tagged,
        )
        self._scratch = array("Q", bytes(8 * order))
        self._ctor = (order, entries, delay, policy, track_conflicts,
                      refresh_on_match, tagged)

    def predict(self, pc: int) -> Optional[int]:
        """Predict ``GVQ[distance] + diff_distance`` for *pc*, if locked."""
        table = self.table
        row = table.row_of(pc)
        if row < 0:
            return None
        distance = table._dist[row]
        # distance == 0: never locked.  distance > _valid: the stored diff
        # at that distance was wiped by a shallower mismatch refresh (the
        # object path reads None there).
        if distance == 0 or distance > table._valid[row]:
            return None
        queue = self.queue
        if not (queue._vmask >> (distance - 1)) & 1:
            return None
        base = queue._buf[(queue._count - queue.delay - distance)
                          % queue._capacity]
        return (base + table._diffs[row * table.order + distance - 1]) \
            & WORD_MASK

    def update(self, pc: int, actual: int) -> None:
        """Diff *actual* against the queue, train the table, shift it in."""
        queue = self.queue
        vc = queue._vmask.bit_length()  # visible window is always a prefix
        scratch = self._scratch
        buf = queue._buf
        cap = queue._capacity
        newest = queue._count - queue.delay  # slot index of distance 1 + 1
        actual &= WORD_MASK
        for d in range(1, vc + 1):
            scratch[d - 1] = (actual - buf[(newest - d) % cap]) & WORD_MASK
        selected = self.table.train_prefix(pc, scratch, vc)
        self.last_distance = selected if selected else None
        queue.push(actual)

    def attach_metrics(self, registry, prefix: str = "gdiff") -> None:
        """Publish this predictor's internals into *registry*.

        Emits the ``<prefix>.distance_match`` histogram (the Fig. 7
        distance distribution), train match/mismatch counters, and table
        aliasing/occupancy state; a collector adds the queue depth at
        export time.
        """
        self.table.attach_metrics(registry, prefix)
        queue = self.queue

        def _collect(reg):
            reg.counter(f"{prefix}.queue_pushes").value = queue.total_pushed

        registry.add_collector(_collect)

    def observe(self, value: int) -> None:
        """Shift a value into the queue without training any table entry.

        Used when the stream feeding the GVQ is wider than the set of
        instructions being predicted (e.g. only load addresses pass into
        the queue but other bookkeeping is needed), and by tests.
        """
        self.queue.push(value)

    def _calc_diffs(self, actual: int) -> List[Optional[int]]:
        """Compute result-minus-queue differences for all n distances."""
        diffs: List[Optional[int]] = []
        get = self.queue.get
        for distance in range(1, self.order + 1):
            base = get(distance)
            diffs.append(None if base is None else wsub(actual, base))
        return diffs

    @property
    def conflict_rate(self) -> float:
        return self.table.conflict_rate

    def reset(self) -> None:
        order, entries, delay, policy, track, refresh, tagged = self._ctor
        self.queue = GlobalValueQueue(size=order, delay=delay)
        self.table = FlatGDiffTable(
            order=order, entries=entries, policy=policy,
            track_conflicts=track, refresh_on_match=refresh, tagged=tagged,
        )

    def locked_distances(self) -> Dict[int, int]:
        """Return {pc_index: selected distance} for all locked entries.

        Analysis helper: the distribution of selected distances is the
        correlation-distance profile discussed in Section 3 / [2].
        """
        return self.table.locked_distances()
