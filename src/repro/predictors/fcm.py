"""Finite Context Method (FCM) value predictor (Sazeides & Smith).

The canonical *context-based* local predictor: a first-level, PC-indexed
table records the last *order* values produced by each static instruction;
a hash of that context indexes a shared second-level table that records the
value which followed the context last time.  Periodic local value patterns
of period <= order become perfectly predictable once learned.
"""

from __future__ import annotations

from typing import List, Optional

from ..tables import DirectMappedTable
from ..wordops import WORD_MASK
from .base import ValuePredictor

#: Multiplier used when folding context values into a hash (a 64-bit odd
#: constant derived from the golden ratio; the classic Fibonacci-hash
#: multiplier, chosen to spread strides across the second-level table).
_HASH_MULT = 0x9E3779B97F4A7C15


def fold_context(values: List[int], buckets: int, salt: int = 0) -> int:
    """Hash an ordered context of machine words into a table index.

    The fold must be order sensitive (context ``(a, b)`` should map
    differently from ``(b, a)``), which the multiply-accumulate achieves.

    *salt* is folded in first; the FCM/DFCM predictors pass the static PC
    here so that two instructions with identical value/stride contexts use
    distinct second-level entries.  Without it, an instruction whose
    context happens to track another's (e.g. a dependent use one cycle
    behind its producer) reads second-level entries the producer trained
    moments earlier, turning the nominally *local* predictor into an
    accidental global one and badly overstating the baseline.
    """
    h = salt & WORD_MASK
    for v in values:
        h = ((h * _HASH_MULT) + v) & WORD_MASK
    return h % buckets


class _FCMEntry:
    """Per-PC first-level state: the most recent *order* values."""

    __slots__ = ("history",)

    def __init__(self) -> None:
        self.history: List[int] = []


class FCMPredictor(ValuePredictor):
    """Order-*order* finite context method predictor."""

    name = "local-fcm"

    def __init__(
        self,
        order: int = 4,
        l1_entries: Optional[int] = 8192,
        l2_entries: int = 65536,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        self.order = order
        self._l1_entries = l1_entries
        self.l2_entries = l2_entries
        self._l1 = DirectMappedTable(entries=l1_entries)
        self._l2: dict = {}

    def _context_index(self, pc: int, history: List[int]) -> int:
        return fold_context(history, self.l2_entries, salt=pc)

    def predict(self, pc: int) -> Optional[int]:
        entry = self._l1.lookup(pc)
        if entry is None or len(entry.history) < self.order:
            return None
        return self._l2.get(self._context_index(pc, entry.history))

    def update(self, pc: int, actual: int) -> None:
        entry = self._l1.lookup_or_create(pc, _FCMEntry)
        if len(entry.history) >= self.order:
            self._l2[self._context_index(pc, entry.history)] = actual
        entry.history.append(actual)
        if len(entry.history) > self.order:
            entry.history.pop(0)

    def reset(self) -> None:
        self._l1 = DirectMappedTable(entries=self._l1_entries)
        self._l2.clear()
