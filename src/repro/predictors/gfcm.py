"""Global finite-context-method predictor (higher-order global context).

Section 2 of the paper classifies global value locality as computational
or context based, citing the DDISC predictor (Thomas & Franklin, PACT'01)
as the higher-order *context* exploiter — DDISC derives its context from
the instruction's dataflow path.  A trace-driven library cannot see
dataflow, so this rebuild uses the closest structural equivalent: the
context is the hash of the last *order* values in the **global** value
history (rather than the instruction's own local history, as in FCM).

A second-level table maps (PC, hashed global context) to the value that
followed that context for that instruction last time.  Programs whose
global history reaches the same instruction in the same state — e.g. a
repeating interleaving of handler values — are predictable this way even
when no stride relation exists; conversely, any noise in the global
window scrambles the context, which is why the paper's computational
(stride) form is the more robust global exploit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .base import ValuePredictor
from .fcm import fold_context


class GlobalFCMPredictor(ValuePredictor):
    """Order-*order* context predictor over the global value history."""

    name = "global-fcm"

    def __init__(self, order: int = 4, l2_entries: int = 65536):
        if order <= 0:
            raise ValueError("order must be positive")
        self.order = order
        self.l2_entries = l2_entries
        self._history: Deque[int] = deque(maxlen=order)
        self._l2: dict = {}

    def _index(self, pc: int) -> Optional[int]:
        if len(self._history) < self.order:
            return None
        return fold_context(list(self._history), self.l2_entries, salt=pc)

    def predict(self, pc: int) -> Optional[int]:
        index = self._index(pc)
        if index is None:
            return None
        return self._l2.get(index)

    def update(self, pc: int, actual: int) -> None:
        index = self._index(pc)
        if index is not None:
            self._l2[index] = actual
        self._history.append(actual)

    def observe(self, value: int) -> None:
        """Push a value into the global history without training."""
        self._history.append(value)

    def reset(self) -> None:
        self._history.clear()
        self._l2.clear()
