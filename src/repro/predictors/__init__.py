"""Baseline value predictors rebuilt from the literature.

These are the comparison points the paper evaluates gDiff against:
last-value, last-N, local (two-delta) stride, FCM, DFCM ("local context"),
and the first-order Markov address predictor — plus the 3-bit confidence
mechanism that gates all realistic configurations.
"""

from .base import ConstantPredictor, PredictionStats, ValuePredictor
from .confidence import ConfidenceTable, GatedPredictor
from .ddisc import DDISCPredictor, run_ddisc
from .dfcm import DFCMPredictor
from .fcm import FCMPredictor, fold_context
from .gfcm import GlobalFCMPredictor
from .hybrid_local import HybridLocalPredictor
from .last_n import LastNValuePredictor
from .last_value import LastValuePredictor
from .markov import MarkovPredictor
from .pi import PIPredictor
from .stride import StridePredictor

__all__ = [
    "ValuePredictor",
    "PredictionStats",
    "ConstantPredictor",
    "ConfidenceTable",
    "GatedPredictor",
    "LastValuePredictor",
    "LastNValuePredictor",
    "StridePredictor",
    "FCMPredictor",
    "DFCMPredictor",
    "MarkovPredictor",
    "DDISCPredictor",
    "run_ddisc",
    "PIPredictor",
    "GlobalFCMPredictor",
    "HybridLocalPredictor",
    "fold_context",
]
