"""DDISC-style dataflow-context predictor (Thomas & Franklin, PACT'01).

The paper cites the dynamic dataflow-inherited speculative context (DDISC)
predictor as the higher-order *global context* scheme: "higher order of
context is used and derived from the closest predictable values in the
instruction's dataflow path."

Our traces carry architectural source registers, so the dataflow context
is directly available: the predictor tracks the most recent committed
value of every architectural register and predicts through a table keyed
by (PC, hash of the source-operand values).  When an instruction's output
is a pure function of its inputs — precisely the case dataflow context
identifies — the same input context reproduces the same output.

Compared with gDiff this captures *functional* redundancy (same inputs →
same output) rather than stride arithmetic; the two overlap on constant-
offset chains but diverge on fresh inputs, which is the gap Section 2's
formalisation points at.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..trace.isa import NUM_REGS
from .base import ValuePredictor
from .fcm import fold_context


class DDISCPredictor(ValuePredictor):
    """Predict from the values of an instruction's source operands.

    Unlike the PC-only predictors, DDISC needs the instruction's source
    registers at prediction time; drive it with
    :meth:`predict_with_sources` / :meth:`update_with_sources` (the
    :class:`ValuePredictor` interface is implemented for registry
    compatibility and behaves like the zero-source case).
    """

    name = "ddisc"

    def __init__(self, l2_entries: int = 65536):
        self.l2_entries = l2_entries
        self._regs: List[int] = [0] * NUM_REGS
        self._reg_valid: List[bool] = [False] * NUM_REGS
        self._l2: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Dataflow-aware interface
    # ------------------------------------------------------------------
    def _context(self, pc: int, srcs: Tuple[int, ...]) -> Optional[int]:
        values = []
        for reg in srcs:
            if not self._reg_valid[reg % NUM_REGS]:
                return None
            values.append(self._regs[reg % NUM_REGS])
        return fold_context(values, self.l2_entries, salt=pc)

    def predict_with_sources(self, pc: int,
                             srcs: Tuple[int, ...]) -> Optional[int]:
        """Predict the output for *pc* given its source registers."""
        index = self._context(pc, srcs)
        if index is None:
            return None
        return self._l2.get(index)

    def update_with_sources(self, pc: int, srcs: Tuple[int, ...],
                            dest: Optional[int], actual: int) -> None:
        """Train on a completed instruction and update the register file."""
        index = self._context(pc, srcs)
        if index is not None:
            self._l2[index] = actual
        if dest is not None:
            self._regs[dest % NUM_REGS] = actual
            self._reg_valid[dest % NUM_REGS] = True

    # ------------------------------------------------------------------
    # ValuePredictor compatibility (no dataflow information)
    # ------------------------------------------------------------------
    def predict(self, pc: int) -> Optional[int]:
        return self.predict_with_sources(pc, ())

    def update(self, pc: int, actual: int) -> None:
        self.update_with_sources(pc, (), None, actual)

    def reset(self) -> None:
        self._regs = [0] * NUM_REGS
        self._reg_valid = [False] * NUM_REGS
        self._l2.clear()


def run_ddisc(trace, predictor: Optional[DDISCPredictor] = None):
    """Run a DDISC predictor over a trace's value producers.

    Returns a :class:`~repro.predictors.base.PredictionStats`.  A separate
    runner is needed because DDISC consumes dataflow (source registers),
    which the generic PC-only runner does not pass.
    """
    from .base import PredictionStats

    if predictor is None:
        predictor = DDISCPredictor()
    stats = PredictionStats()
    for insn in trace:
        if insn.dest is None:
            continue
        if insn.produces_value:
            predicted = predictor.predict_with_sources(insn.pc, insn.srcs)
            stats.record(predicted, insn.value)
        predictor.update_with_sources(insn.pc, insn.srcs, insn.dest,
                                      insn.value if insn.value is not None
                                      else 0)
    return stats
