"""Predictor interface and accuracy/coverage accounting.

Every value predictor in this package — the paper's gDiff family as well as
the rebuilt baselines — follows the same two-phase protocol that mirrors
the pipeline integration described in the paper:

* :meth:`ValuePredictor.predict` is called at *dispatch* with the static PC
  and returns either a predicted machine word or ``None`` (no prediction).
* :meth:`ValuePredictor.update` is called at *write-back* with the actual
  result, and trains the predictor.

:class:`PredictionStats` implements both accuracy definitions used in the
paper:

* **raw accuracy** (Figures 8–10, profile studies without confidence):
  correct predictions over *all* value-producing instructions seen.
* **gated accuracy / coverage** (Figures 13, 16, 18): a 3-bit confidence
  counter filters weak predictions; accuracy is computed over confident
  predictions only and coverage is the fraction of instructions that
  received a confident prediction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional


class ValuePredictor(ABC):
    """Abstract two-phase (predict-at-dispatch / update-at-writeback) predictor."""

    #: Human-readable predictor name used in reports.
    name: str = "predictor"

    @abstractmethod
    def predict(self, pc: int) -> Optional[int]:
        """Return a predicted value for the instruction at *pc*, or ``None``."""

    @abstractmethod
    def update(self, pc: int, actual: int) -> None:
        """Train the predictor with the actual result of *pc*."""

    def speculative_update(self, pc: int) -> None:
        """Advance speculative state as if the last prediction were right.

        Section 3.1 notes that back-to-back instances of the same
        instruction in flight call "for the speculative update based on
        the prediction" (citing the branch-history analogue [10]).
        Predictors that support it roll prediction state forward here;
        the caller retires or squashes the speculation at write-back via
        :meth:`retire_speculation` / :meth:`squash_speculation`.  The
        defaults are no-ops.
        """

    def retire_speculation(self, pc: int) -> None:
        """One speculatively-updated instance of *pc* has committed."""

    def squash_speculation(self, pc: int) -> None:
        """A misprediction was detected: discard speculative state."""

    def reset(self) -> None:
        """Discard all learned state (default: rebuild via __init__ override)."""
        raise NotImplementedError


@dataclass
class PredictionStats:
    """Accuracy/coverage accounting for one predictor run.

    Attributes:
        attempts: value-producing instructions offered to the predictor.
        predictions: attempts for which the predictor returned a value.
        correct: predictions that matched the actual value.
        confident: predictions that passed the confidence gate.
        confident_correct: confident predictions that were correct.
    """

    attempts: int = 0
    predictions: int = 0
    correct: int = 0
    confident: int = 0
    confident_correct: int = 0

    def record(
        self,
        predicted: Optional[int],
        actual: int,
        confident: bool = False,
    ) -> bool:
        """Record one prediction outcome; returns True if it was correct."""
        self.attempts += 1
        if predicted is None:
            return False
        self.predictions += 1
        is_correct = predicted == actual
        if is_correct:
            self.correct += 1
        if confident:
            self.confident += 1
            if is_correct:
                self.confident_correct += 1
        return is_correct

    @property
    def raw_accuracy(self) -> float:
        """Correct predictions over all attempts (profile-study definition)."""
        if not self.attempts:
            return 0.0
        return self.correct / self.attempts

    @property
    def accuracy(self) -> float:
        """Correct confident predictions over confident predictions."""
        if not self.confident:
            return 0.0
        return self.confident_correct / self.confident

    @property
    def coverage(self) -> float:
        """Confident predictions over all attempts."""
        if not self.attempts:
            return 0.0
        return self.confident / self.attempts

    def merge(self, other: "PredictionStats") -> "PredictionStats":
        """Accumulate another stats object into this one (and return self)."""
        self.attempts += other.attempts
        self.predictions += other.predictions
        self.correct += other.correct
        self.confident += other.confident
        self.confident_correct += other.confident_correct
        return self

    def as_dict(self) -> Dict[str, float]:
        return {
            "attempts": self.attempts,
            "predictions": self.predictions,
            "correct": self.correct,
            "confident": self.confident,
            "confident_correct": self.confident_correct,
            "raw_accuracy": self.raw_accuracy,
            "accuracy": self.accuracy,
            "coverage": self.coverage,
        }

    def __str__(self) -> str:
        return (
            f"raw={self.raw_accuracy:.1%} "
            f"acc={self.accuracy:.1%} cov={self.coverage:.1%} "
            f"({self.attempts} attempts)"
        )


class ConstantPredictor(ValuePredictor):
    """Degenerate predictor that always predicts a fixed value.

    Useful in tests and as a floor baseline.
    """

    name = "constant"

    def __init__(self, value: int = 0):
        self.value = value

    def predict(self, pc: int) -> Optional[int]:
        return self.value

    def update(self, pc: int, actual: int) -> None:
        pass

    def reset(self) -> None:
        pass
