"""First-order Markov address predictor (Joseph & Grunwald).

The Section 6 comparator for load-address prediction.  The predictor is a
large, tagged, set-associative table mapping an address to the address that
followed it in the stream last time.  Unlike the PC-indexed predictors it
carries no saturating confidence counters; per the paper, "confidence
gating is achieved with tag matching" — the predictor is confident exactly
when the lookup tag-hits.

Paper configurations: 4-way, 256K-entry (default), with a 2M-entry variant
discussed in the text.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..tables import SetAssociativeTable
from .base import ValuePredictor


class MarkovPredictor(ValuePredictor):
    """First-order Markov predictor over an arbitrary value/address stream.

    The predictor keys its table with the *previous* stream element and
    learns the element that followed it.  ``predict`` consults the table
    with the most recent element seen so far; ``update`` installs the
    observed transition and advances the stream cursor.
    """

    name = "markov"

    def __init__(self, entries: int = 262144, ways: int = 4):
        self._entries = entries
        self._ways = ways
        self._table = SetAssociativeTable(entries=entries, ways=ways)
        self._prev: Optional[int] = None

    def predict(self, pc: int) -> Optional[int]:
        """Predict the next stream element (``pc`` is ignored by design)."""
        if self._prev is None:
            return None
        return self._table.lookup(self._prev)

    def predict_confident(self, pc: int) -> Tuple[Optional[int], bool]:
        """Return ``(prediction, confident)``; confident == tag hit."""
        prediction = self.predict(pc)
        return prediction, prediction is not None

    def update(self, pc: int, actual: int) -> None:
        if self._prev is not None:
            self._table.insert(self._prev, actual)
        self._prev = actual

    def reset(self) -> None:
        self._table = SetAssociativeTable(entries=self._entries, ways=self._ways)
        self._prev = None
