"""Differential FCM (DFCM) value predictor (Goeman, Vandierendonck &
De Bosschere, HPCA'01).

The paper's "local context" baseline.  DFCM stores *strides* rather than
absolute values in the second-level table: the first level keeps, per
static instruction, the last value and the recent stride context; the
second level maps a hash of the stride context to the stride that followed
it.  The prediction is ``last + L2[hash(stride context)]``.  Storing
differences both improves table usage efficiency and lets DFCM capture
stride-like *and* periodic behaviour — the hybrid of the computational and
context-based local models.

Paper configuration: unlimited (profile) or 8K-entry first-level table and
a 64K-entry second-level table.
"""

from __future__ import annotations

from typing import List, Optional

from ..tables import DirectMappedTable
from ..wordops import wadd, wsub
from .base import ValuePredictor
from .fcm import fold_context


class _DFCMEntry:
    """Per-PC first-level state: last value plus recent stride context."""

    __slots__ = ("last", "strides", "seen")

    def __init__(self) -> None:
        self.last = 0
        self.strides: List[int] = []
        self.seen = 0


class DFCMPredictor(ValuePredictor):
    """Order-*order* differential finite context method predictor."""

    name = "local-context"

    def __init__(
        self,
        order: int = 4,
        l1_entries: Optional[int] = 8192,
        l2_entries: int = 65536,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        self.order = order
        self._l1_entries = l1_entries
        self.l2_entries = l2_entries
        self._l1 = DirectMappedTable(entries=l1_entries)
        self._l2: dict = {}

    def predict(self, pc: int) -> Optional[int]:
        entry = self._l1.lookup(pc)
        if entry is None or len(entry.strides) < self.order:
            return None
        stride = self._l2.get(
            fold_context(entry.strides, self.l2_entries, salt=pc)
        )
        if stride is None:
            return None
        return wadd(entry.last, stride)

    def update(self, pc: int, actual: int) -> None:
        entry = self._l1.lookup_or_create(pc, _DFCMEntry)
        if entry.seen == 0:
            entry.last = actual
            entry.seen = 1
            return
        stride = wsub(actual, entry.last)
        if len(entry.strides) >= self.order:
            self._l2[
                fold_context(entry.strides, self.l2_entries, salt=pc)
            ] = stride
        entry.strides.append(stride)
        if len(entry.strides) > self.order:
            entry.strides.pop(0)
        entry.last = actual
        entry.seen += 1

    def reset(self) -> None:
        self._l1 = DirectMappedTable(entries=self._l1_entries)
        self._l2.clear()
