"""Local stride predictor (two-delta variant).

The classic computational predictor over the *local* value history: predict
``last + stride``.  The two-delta policy (Eickemeyer & Vassiliadis; used by
Gabbay & Mendelson) only commits a new stride once the same delta has been
observed twice in a row, which keeps one-off discontinuities from
destroying a stable stride.  This is the paper's "L_stride" baseline and
also the default filler predictor feeding the hybrid global value queue
(Section 5).
"""

from __future__ import annotations

from typing import Optional

from ..tables import DirectMappedTable
from ..wordops import wadd, wsub
from .base import ValuePredictor


class _StrideEntry:
    """Per-PC state for the two-delta stride predictor.

    Attributes:
        last: most recent result.
        stride: committed (predicting) stride.
        candidate: most recently observed delta, awaiting confirmation.
        seen: number of updates received (predictions start after 1).
    """

    __slots__ = ("last", "stride", "candidate", "seen", "spec_ahead")

    def __init__(self) -> None:
        self.last = 0
        self.stride = 0
        self.candidate = 0
        self.seen = 0
        # How many unresolved speculative predictions are outstanding;
        # predictions read last + stride * (1 + spec_ahead), so the chain
        # always derives from committed state and self-corrects as
        # completions confirm or refute it.
        self.spec_ahead = 0


class StridePredictor(ValuePredictor):
    """Two-delta local stride predictor over a PC-indexed tagless table."""

    name = "local-stride"

    def __init__(self, entries: Optional[int] = 8192, two_delta: bool = True):
        self._entries = entries
        self.two_delta = two_delta
        self._table = DirectMappedTable(entries=entries)

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.lookup(pc)
        if entry is None or entry.seen == 0:
            return None
        return wadd(entry.last, entry.stride * (1 + entry.spec_ahead))

    def speculative_update(self, pc: int) -> None:
        entry = self._table.lookup(pc)
        if entry is None or entry.seen == 0:
            return
        entry.spec_ahead += 1

    def retire_speculation(self, pc: int) -> None:
        entry = self._table.lookup(pc)
        if entry is not None and entry.spec_ahead > 0:
            entry.spec_ahead -= 1

    def squash_speculation(self, pc: int) -> None:
        entry = self._table.lookup(pc)
        if entry is not None:
            entry.spec_ahead = 0

    def update(self, pc: int, actual: int) -> None:
        entry = self._table.lookup_or_create(pc, _StrideEntry)
        if entry.seen == 0:
            entry.last = actual
            entry.seen = 1
            return
        delta = wsub(actual, entry.last)
        if self.two_delta:
            if delta == entry.candidate:
                entry.stride = delta
            entry.candidate = delta
        else:
            entry.stride = delta
        entry.last = actual
        entry.seen += 1

    def reset(self) -> None:
        self._table = DirectMappedTable(entries=self._entries)
