"""Saturating-counter confidence estimation.

The paper gates every realistic predictor (Sections 4-7) with a 3-bit
confidence mechanism: "when a correct prediction is made, confidence is
increased by 2; and, it is decreased by 1 if an incorrect prediction is
found.  A confident prediction is made when the confidence is larger or
equal to 4."  :class:`ConfidenceTable` implements exactly that policy (with
the increments, width and threshold exposed for the ablation benches), and
:class:`GatedPredictor` composes any :class:`ValuePredictor` with a
confidence table keyed by the same PC index.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..tables import DirectMappedTable
from .base import PredictionStats, ValuePredictor


class ConfidenceTable:
    """A table of saturating confidence counters, one per PC index.

    Args:
        bits: counter width in bits (3 in the paper, so counters saturate
            at 7).
        up: increment applied on a correct prediction (paper: 2).
        down: decrement applied on an incorrect prediction (paper: 1).
        threshold: counter value at or above which a prediction is
            confident (paper: 4).
        entries: table size (power of two) or ``None`` for unlimited.
    """

    def __init__(
        self,
        bits: int = 3,
        up: int = 2,
        down: int = 1,
        threshold: int = 4,
        entries: Optional[int] = None,
    ):
        if bits <= 0:
            raise ValueError("counter width must be positive")
        self.max_value = (1 << bits) - 1
        if not 0 <= threshold <= self.max_value:
            raise ValueError("threshold must fit in the counter width")
        self.up = up
        self.down = down
        self.threshold = threshold
        self._table = DirectMappedTable(entries=entries)

    def value(self, pc: int) -> int:
        entry = self._table.lookup(pc)
        return entry if entry is not None else 0

    def index(self, pc: int) -> int:
        """The table slot *pc* maps to (PCs that alias share a counter)."""
        return self._table.index(pc)

    def is_confident(self, pc: int) -> bool:
        """True when the counter for *pc* meets the confidence threshold."""
        return self.value(pc) >= self.threshold

    def train(self, pc: int, correct: bool) -> bool:
        """Apply the +up / -down saturating update for one outcome.

        Returns the *post-train* confident state, so hot loops can track
        gate transitions (and the next lookup) without re-probing the
        table.
        """
        idx = self._table.index(pc)
        current = self._table._data.get(idx, 0)
        if correct:
            current = min(self.max_value, current + self.up)
        else:
            current = max(0, current - self.down)
        self._table._data[idx] = current
        return current >= self.threshold

    def reset(self) -> None:
        self._table.clear()


class GatedPredictor(ValuePredictor):
    """A value predictor composed with a confidence gate.

    ``predict`` returns the inner predictor's value regardless of
    confidence (the pipeline may still want the value for training
    purposes); :meth:`predict_confident` additionally reports whether the
    prediction passed the gate, which is what the speculation machinery
    acts on.
    """

    def __init__(self, inner: ValuePredictor, confidence: Optional[ConfidenceTable] = None):
        self.inner = inner
        self.confidence = confidence if confidence is not None else ConfidenceTable()
        self.name = f"gated-{inner.name}"
        self.stats = PredictionStats()
        # Predictions outstanding between predict() and update(), keyed by
        # PC.  In the pipeline model predictions and updates for the same
        # static PC can overlap; a small per-PC FIFO keeps them matched.
        self._pending: Dict[int, list] = {}

    def predict(self, pc: int) -> Optional[int]:
        value = self.inner.predict(pc)
        confident = value is not None and self.confidence.is_confident(pc)
        self._pending.setdefault(pc, []).append((value, confident))
        return value if confident else None

    def predict_confident(self, pc: int):
        """Return ``(value, confident)`` for the instruction at *pc*."""
        value = self.inner.predict(pc)
        confident = value is not None and self.confidence.is_confident(pc)
        self._pending.setdefault(pc, []).append((value, confident))
        return value, confident

    def update(self, pc: int, actual: int) -> None:
        pending = self._pending.get(pc)
        if pending:
            predicted, confident = pending.pop(0)
            if not pending:
                del self._pending[pc]
        else:
            predicted, confident = None, False
        self.stats.record(predicted, actual, confident)
        if predicted is not None:
            self.confidence.train(pc, predicted == actual)
        self.inner.update(pc, actual)

    def reset(self) -> None:
        self.inner.reset()
        self.confidence.reset()
        self.stats = PredictionStats()
        self._pending.clear()
