"""Classic two-component hybrid local predictor with a per-PC chooser.

The paper's related work (Wang & Franklin MICRO-30; Rychlik et al.;
Sazeides & Smith) combines a computational and a context-based component
under a selector so each instruction uses whichever model fits its local
history.  Rebuilt here as the stride + DFCM pair the paper's baselines
imply, with a 2-bit per-PC chooser trained toward the component that was
correct (ties leave it unchanged).

This is the strongest purely *local* configuration in the repository —
the fair upper bound to quote when arguing that gDiff's advantage comes
from global history rather than from predictor engineering.
"""

from __future__ import annotations

from typing import Optional

from ..tables import DirectMappedTable
from .base import ValuePredictor
from .dfcm import DFCMPredictor
from .stride import StridePredictor


class HybridLocalPredictor(ValuePredictor):
    """stride + DFCM with a 2-bit per-PC chooser."""

    name = "hybrid-local"

    def __init__(self, entries: Optional[int] = 8192,
                 l2_entries: int = 65536, order: int = 4):
        self._ctor = (entries, l2_entries, order)
        self.stride = StridePredictor(entries=entries)
        self.context = DFCMPredictor(order=order, l1_entries=entries,
                                     l2_entries=l2_entries)
        # Chooser counter: 0-1 favour stride, 2-3 favour context.
        self._chooser = DirectMappedTable(entries=entries)

    def _counter(self, pc: int) -> int:
        value = self._chooser.lookup(pc)
        return 1 if value is None else value

    def predict(self, pc: int) -> Optional[int]:
        stride_pred = self.stride.predict(pc)
        context_pred = self.context.predict(pc)
        if self._counter(pc) >= 2:
            return context_pred if context_pred is not None else stride_pred
        return stride_pred if stride_pred is not None else context_pred

    def update(self, pc: int, actual: int) -> None:
        stride_pred = self.stride.predict(pc)
        context_pred = self.context.predict(pc)
        stride_hit = stride_pred == actual
        context_hit = context_pred == actual
        if stride_hit != context_hit:
            counter = self._counter(pc)
            if context_hit and counter < 3:
                counter += 1
            elif stride_hit and counter > 0:
                counter -= 1
            self._chooser._data[self._chooser.index(pc)] = counter
        self.stride.update(pc, actual)
        self.context.update(pc, actual)

    def reset(self) -> None:
        entries, l2_entries, order = self._ctor
        self.stride = StridePredictor(entries=entries)
        self.context = DFCMPredictor(order=order, l1_entries=entries,
                                     l2_entries=l2_entries)
        self._chooser = DirectMappedTable(entries=entries)
