"""Previous-instruction (PI) value predictor (Nakra, Gupta & Soffa,
HPCA-5: "Global context-based value prediction").

The paper positions this as the first use of *global* value history: "the
previous instruction (PI) based predictor was proposed to explore the
correlation between two immediately close instructions in the dynamic
instruction stream ... It may be viewed as the first-order global
context-based predictor."

Our rebuild captures that first-order structure: per static instruction,
the table stores the difference between the instruction's result and the
value produced *immediately before it* in the global stream; a prediction
is the current global last value plus that stored difference, made once
the difference has repeated (the same confirm-once rule gDiff uses).  PI
is exactly an order-1 gDiff — which is why it serves as the natural
ancestor baseline in the extension benches: everything PI catches, gDiff
catches at distance 1, and gDiff additionally reaches distances 2..n.
"""

from __future__ import annotations

from typing import Optional

from ..tables import DirectMappedTable
from ..wordops import wadd, wsub
from .base import ValuePredictor


class _PIEntry:
    """Per-PC state: candidate and confirmed distance-1 differences."""

    __slots__ = ("diff", "confirmed")

    def __init__(self) -> None:
        self.diff: Optional[int] = None
        self.confirmed = False


class PIPredictor(ValuePredictor):
    """First-order global context (previous-instruction) predictor."""

    name = "pi"

    def __init__(self, entries: Optional[int] = 8192):
        self._entries = entries
        self._table = DirectMappedTable(entries=entries)
        self._last_global: Optional[int] = None

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.lookup(pc)
        if entry is None or not entry.confirmed or self._last_global is None:
            return None
        return wadd(self._last_global, entry.diff)

    def update(self, pc: int, actual: int) -> None:
        entry = self._table.lookup_or_create(pc, _PIEntry)
        if self._last_global is not None:
            diff = wsub(actual, self._last_global)
            entry.confirmed = entry.diff == diff
            entry.diff = diff
        self._last_global = actual

    def observe(self, value: int) -> None:
        """Advance the global last value without training any entry."""
        self._last_global = value

    def reset(self) -> None:
        self._table = DirectMappedTable(entries=self._entries)
        self._last_global = None
