"""Last-value predictor (Lipasti, Wilkerson & Shen, ASPLOS-7).

The simplest exploitation of local value locality: predict that an
instruction will produce the same value it produced last time.  Serves as
the floor baseline and as the default *filler* alternative in the HGVQ
ablation study.
"""

from __future__ import annotations

from typing import Optional

from ..tables import DirectMappedTable
from .base import ValuePredictor


class LastValuePredictor(ValuePredictor):
    """PC-indexed table of most recent results."""

    name = "last-value"

    def __init__(self, entries: Optional[int] = 8192):
        self._entries = entries
        self._table = DirectMappedTable(entries=entries)

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.lookup(pc)
        return entry

    def update(self, pc: int, actual: int) -> None:
        self._table.lookup_or_create(pc, lambda: actual)
        self._table._data[self._table.index(pc)] = actual

    def reset(self) -> None:
        self._table = DirectMappedTable(entries=self._entries)
