"""Last-N value predictor (Burtscher & Zorn, PACT'99).

Keeps the last *n* distinct values produced by each static instruction and
predicts the one that has most recently been correct.  The paper cites this
scheme as part of the local-history predictor family; we rebuild it as an
additional baseline for the coverage comparisons.
"""

from __future__ import annotations

from typing import List, Optional

from ..tables import DirectMappedTable
from .base import ValuePredictor


class _LastNEntry:
    """Per-PC state: an MRU-ordered list of recent values."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[int] = []


class LastNValuePredictor(ValuePredictor):
    """Predicts the most-recently-confirmed of the last *n* values."""

    name = "last-n"

    def __init__(self, n: int = 4, entries: Optional[int] = 8192):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._entries = entries
        self._table = DirectMappedTable(entries=entries)

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.lookup(pc)
        if entry is None or not entry.values:
            return None
        return entry.values[0]

    def update(self, pc: int, actual: int) -> None:
        entry = self._table.lookup_or_create(pc, _LastNEntry)
        values = entry.values
        if actual in values:
            # Move the confirmed value to MRU position.
            values.remove(actual)
        values.insert(0, actual)
        del values[self.n :]

    def reset(self) -> None:
        self._table = DirectMappedTable(entries=self._entries)
