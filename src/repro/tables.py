"""Hardware-style prediction-table containers.

All predictors in the paper are built from PC-indexed tables that are either
*unlimited* (one entry per static instruction — the idealised profile
configuration) or *finite and tagless* (a direct-mapped 2^m-entry array
indexed by low PC bits, where distinct instructions may alias).  Figure 9 of
the paper measures exactly this aliasing effect, so the table model tracks
the "owner" PC of each entry and counts conflicts: accesses that hit an
entry last touched by a different static instruction.

:class:`DirectMappedTable` implements both configurations behind one
interface; :class:`SetAssociativeTable` adds tags and LRU replacement for
the Markov predictor of Section 6.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


class DirectMappedTable:
    """A PC-indexed, tagless prediction table.

    Args:
        entries: number of entries (must be a power of two), or ``None``
            for an unlimited table keyed directly by PC.
        pc_shift: how many low PC bits to drop before indexing (2 for
            4-byte-aligned instructions).
        track_conflicts: when True, record the owner PC of each entry and
            count accesses that alias with a different instruction.
        tagged: when True the entry carries its owner's full PC as a tag:
            an aliasing instruction misses (and, on allocate, evicts and
            restarts the entry) instead of silently inheriting a
            stranger's state.  The paper's tables are tagless; the tagged
            variant is provided for the design-study bench.
    """

    def __init__(
        self,
        entries: Optional[int] = None,
        pc_shift: int = 2,
        track_conflicts: bool = False,
        tagged: bool = False,
    ):
        if entries is not None:
            if entries <= 0 or entries & (entries - 1):
                raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self.pc_shift = pc_shift
        self.track_conflicts = track_conflicts
        self.tagged = tagged
        self._data: Dict[int, Any] = {}
        self._owner: Dict[int, int] = {}
        self.accesses = 0
        self.conflicts = 0
        self.evictions = 0

    @property
    def unlimited(self) -> bool:
        return self.entries is None

    def index(self, pc: int) -> int:
        """Map a PC to a table index."""
        if self.entries is None:
            return pc
        return (pc >> self.pc_shift) & (self.entries - 1)

    def lookup(self, pc: int) -> Optional[Any]:
        """Return the entry for *pc*, or ``None`` if never written.

        In tagged mode a slot owned by a different PC reads as a miss.
        """
        idx = self.index(pc)
        if self.tagged and self._owner.get(idx, pc) != pc:
            return None
        return self._data.get(idx)

    def lookup_or_create(self, pc: int, factory: Callable[[], Any]) -> Any:
        """Return the entry for *pc*, creating it with *factory* if absent.

        Conflict accounting happens here: if the slot exists but was last
        owned by a different PC it counts as a conflict.  A tagless table
        (the paper's) lets the aliasing instruction inherit (and corrupt)
        the previous occupant's state; a tagged one evicts and restarts.
        """
        idx = self.index(pc)
        self.accesses += 1
        entry = self._data.get(idx)
        owner = self._owner.get(idx)
        aliased = owner is not None and owner != pc
        if entry is None or (self.tagged and aliased):
            if entry is not None:
                self.evictions += 1
            entry = factory()
            self._data[idx] = entry
        if self.track_conflicts and aliased:
            self.conflicts += 1
        if self.track_conflicts or self.tagged:
            self._owner[idx] = pc
        return entry

    @property
    def conflict_rate(self) -> float:
        """Fraction of accesses that aliased with a different PC."""
        if not self.accesses:
            return 0.0
        return self.conflicts / self.accesses

    def occupied(self) -> int:
        """Number of distinct slots ever written."""
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self._owner.clear()
        self.accesses = 0
        self.conflicts = 0
        self.evictions = 0


class SetAssociativeTable:
    """A tagged, set-associative table with LRU replacement.

    Used by the first-order Markov address predictor (Section 6), where the
    paper notes that "confidence gating is achieved with tag matching": a
    lookup only returns a payload when the stored tag matches the key.
    """

    def __init__(self, entries: int, ways: int):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if ways <= 0 or entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        # Each set is an ordered list of (tag, payload); index 0 is MRU.
        self._sets: List[List[Tuple[int, Any]]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.hits = 0

    def _set_index(self, key: int) -> int:
        return key % self.sets

    def lookup(self, key: int) -> Optional[Any]:
        """Return the payload stored under *key*, or ``None`` on tag miss."""
        self.accesses += 1
        bucket = self._sets[self._set_index(key)]
        for pos, (tag, payload) in enumerate(bucket):
            if tag == key:
                self.hits += 1
                if pos:
                    bucket.insert(0, bucket.pop(pos))
                return payload
        return None

    def insert(self, key: int, payload: Any) -> None:
        """Insert or update *key* -> *payload*, evicting LRU on overflow."""
        bucket = self._sets[self._set_index(key)]
        for pos, (tag, _) in enumerate(bucket):
            if tag == key:
                bucket.pop(pos)
                break
        bucket.insert(0, (key, payload))
        if len(bucket) > self.ways:
            bucket.pop()

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def clear(self) -> None:
        for bucket in self._sets:
            bucket.clear()
        self.accesses = 0
        self.hits = 0
