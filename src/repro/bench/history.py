"""The bench-history store and its regression gate.

``benchmarks/results/history.jsonl`` holds one JSON record per benchmark
session, appended by ``benchmarks/conftest.py``::

    {"schema": 1, "git_sha": "...", "generated_at": "...Z",
     "exit_status": 0, "total_wall_s": 12.3,
     "benches": {"benchmarks/bench_x.py::bench_y": 1.2, ...},
     "metrics": {"kernels": {"gdiff_speedup_x": 4.3, ...}, ...}}

The gate (:func:`check_history`) flattens each record into named scalar
metrics and compares the latest record against the **median of the
previous N** records that carry the same metric — the median, not the
last run, so one lucky (or unlucky) session cannot move the baseline.
Directions are inferred from the metric name:

* wall times (``bench:...`` durations, ``total_wall_s``, any metric key
  ending in ``_s``/``_ms``) regress when they grow: fail when
  ``latest > median * slow_tol``.
* measured speedups/ratios vs. a floor (keys ending in ``_x`` or
  containing ``speedup``) regress when they shrink: fail when
  ``latest < median * floor_tol``.
* everything else is reported for context but never gates.

Tolerances default to ``slow_tol=1.75`` / ``floor_tol=0.6``: generous
enough that two clean back-to-back runs pass on a noisy machine, tight
enough that a genuine 2x regression exits nonzero (the acceptance
criterion this module exists for).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Dict, List, Optional, Tuple, Union

#: Where the suite's history lives, relative to the repo root.
DEFAULT_HISTORY_PATH = "benchmarks/results/history.jsonl"

HISTORY_SCHEMA_VERSION = 1

#: How many prior records the baseline median is taken over.
DEFAULT_BASELINE_N = 5

DIRECTION_HIGHER_BAD = "higher-bad"
DIRECTION_LOWER_BAD = "lower-bad"
DIRECTION_INFO = "info"


def make_record(benches: Dict[str, float],
                metrics: Dict[str, Dict[str, Any]],
                git_sha: Optional[str],
                generated_at: str,
                exit_status: int = 0) -> Dict[str, Any]:
    """One history record for a bench session (sha + timestamp keyed)."""
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "git_sha": git_sha,
        "generated_at": generated_at,
        "exit_status": int(exit_status),
        "total_wall_s": round(sum(benches.values()), 4),
        "benches": {k: round(v, 4) for k, v in sorted(benches.items())},
        "metrics": {k: dict(sorted(v.items()))
                    for k, v in sorted(metrics.items())},
    }


def append_record(record: Dict[str, Any],
                  path: Union[str, Path] = DEFAULT_HISTORY_PATH) -> Path:
    """Append one record as a JSON line (creating parents as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=False) + "\n")
    return path


def load_history(path: Union[str, Path] = DEFAULT_HISTORY_PATH
                 ) -> List[Dict[str, Any]]:
    """Every readable record, oldest first; damaged lines are skipped
    (an interrupted append must not poison the whole trajectory)."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and record.get("benches"):
                    records.append(record)
    except OSError:
        return []
    return records


def metric_direction(name: str) -> str:
    """Which way a metric regresses, inferred from its name.

    Throughput rates (``_eps`` events/s, ``_qps`` queries/s) regress when
    they shrink; latency quantiles (``_p50``/``_p90``/``_p99``, however
    they are unit-suffixed) and wall times regress when they grow.  The
    rate check precedes the ``_s`` suffix check so a rate never reads as
    a duration.
    """
    if name.startswith("bench:") or name == "total_wall_s":
        return DIRECTION_HIGHER_BAD
    key = name.rsplit(".", 1)[-1]
    if key.endswith("_eps") or key.endswith("_qps"):
        return DIRECTION_LOWER_BAD
    if key.endswith(("_p50", "_p90", "_p99")) \
            or any(f"_p{q}_" in key for q in (50, 90, 99)):
        return DIRECTION_HIGHER_BAD
    if key.endswith("_s") or key.endswith("_ms"):
        return DIRECTION_HIGHER_BAD
    if key.endswith("_x") or "speedup" in key:
        return DIRECTION_LOWER_BAD
    return DIRECTION_INFO


def flatten_record(record: Dict[str, Any]) -> Dict[str, float]:
    """Record → flat ``{metric_name: value}`` over every numeric scalar.

    Bench wall times flatten to ``bench:<nodeid>``; recorded metric
    sections flatten to ``metric:<section>.<key>``.
    """
    flat: Dict[str, float] = {}
    total = record.get("total_wall_s")
    if isinstance(total, (int, float)):
        flat["total_wall_s"] = float(total)
    for nodeid, value in (record.get("benches") or {}).items():
        if isinstance(value, dict):  # tolerate conftest's richer shape
            value = value.get("duration_s")
        if isinstance(value, (int, float)):
            flat[f"bench:{nodeid}"] = float(value)
    for section, values in (record.get("metrics") or {}).items():
        if not isinstance(values, dict):
            continue
        for key, value in values.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"metric:{section}.{key}"] = float(value)
    return flat


@dataclass
class CheckResult:
    """One metric's latest-vs-baseline comparison."""

    metric: str
    direction: str
    baseline: float
    latest: float
    limit: float
    samples: int
    ok: bool

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline:
            return None
        return self.latest / self.baseline

    def render(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        ratio = self.ratio
        ratio_text = f"{ratio:5.2f}x" if ratio is not None else "    ?"
        return (f"  {mark} {ratio_text}  {self.metric}: "
                f"{self.latest:g} vs median {self.baseline:g} "
                f"(n={self.samples}, limit {self.limit:g})")


def check_history(records: List[Dict[str, Any]],
                  last_n: int = DEFAULT_BASELINE_N,
                  slow_tol: float = 1.75,
                  floor_tol: float = 0.6,
                  ) -> Tuple[bool, List[CheckResult]]:
    """Gate the newest record against the median of its predecessors.

    Returns ``(ok, results)``.  With fewer than two records there is no
    baseline and the check passes vacuously (``results`` empty) — the
    first run of a fresh checkout must not fail CI.  A metric present in
    the latest record but in no prior one also passes vacuously: new
    benches enter the trajectory without gating themselves.
    """
    if len(records) < 2:
        return True, []
    latest = flatten_record(records[-1])
    previous = [flatten_record(r) for r in records[:-1]]
    results: List[CheckResult] = []
    for name in sorted(latest):
        samples = [flat[name] for flat in previous[-last_n:]
                   if name in flat]
        if not samples:
            continue
        baseline = float(median(samples))
        value = latest[name]
        direction = metric_direction(name)
        if direction == DIRECTION_HIGHER_BAD:
            limit = baseline * slow_tol
            ok = value <= limit or baseline == 0.0
        elif direction == DIRECTION_LOWER_BAD:
            limit = baseline * floor_tol
            ok = value >= limit
        else:
            limit = baseline
            ok = True
        results.append(CheckResult(metric=name, direction=direction,
                                   baseline=baseline, latest=value,
                                   limit=limit, samples=len(samples),
                                   ok=ok))
    return all(r.ok for r in results), results


def render_history(records: List[Dict[str, Any]],
                   last_n: Optional[int] = None) -> List[str]:
    """Human-readable listing of the trajectory, newest last."""
    if not records:
        return ["no bench history recorded yet"]
    shown = records if last_n is None else records[-last_n:]
    lines = [f"bench history: {len(records)} record(s)"
             + (f", showing last {len(shown)}" if len(shown) < len(records)
                else "")]
    for record in shown:
        sha = (record.get("git_sha") or "?")[:10]
        stamp = record.get("generated_at", "?")
        benches = record.get("benches") or {}
        lines.append(f"  {stamp}  {sha:10s}  "
                     f"{len(benches)} benches  "
                     f"{record.get('total_wall_s', 0):8.2f}s total  "
                     f"exit {record.get('exit_status', '?')}")
    return lines
