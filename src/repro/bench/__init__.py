"""Benchmark performance history: the repo's perf trajectory over time.

Each benchmark session appends one record (git sha, UTC timestamp,
per-bench wall times, measured floors/speedups) to
``benchmarks/results/history.jsonl``; ``repro bench history|check`` reads
that file back — ``check`` compares the latest record against a
median-of-last-N baseline with per-metric tolerances and exits nonzero on
regression, which is what lets CI gate the kernel wins from PR 3 instead
of silently losing them.
"""

from .history import (
    DEFAULT_HISTORY_PATH,
    CheckResult,
    append_record,
    check_history,
    flatten_record,
    load_history,
    make_record,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "CheckResult",
    "append_record",
    "check_history",
    "flatten_record",
    "load_history",
    "make_record",
]
