"""Event-driven SoA kernel for the out-of-order pipeline.

:func:`run_fast` re-implements :meth:`OutOfOrderCore.run` as one fused
loop over flat state, applying the same playbook the predictor kernels in
:mod:`repro.core.kernels` apply to the profile runs:

* **SoA reorder buffer.**  The ROB is a ring of preallocated parallel
  columns indexed by ``seq & ring_mask`` (the ring is the ROB size
  rounded up to a power of two) — state, issue ordinal,
  prediction/confidence/tag, speculation flags — instead of a deque of
  ``_Entry`` objects.  The trace index of an entry is not stored at all:
  dispatch consumes the fetch queue in order, so it is always
  ``trace_start + seq``.  Register dataflow is *static* — the producer
  of each source operand is the latest earlier writer of that register
  — so producer/consumer edges are precomputed once per trace; a
  producer seq older than the retire head is complete by construction
  (only ``_DONE`` entries retire, and a selective-reissue squash can
  never reach a retired entry because every transitive consumer of a
  completing producer is younger than it), which turns every
  dependency test into a couple of integer compares with no dict in
  sight.  Speculative value use additionally snapshots each entry's
  *live* producers at dispatch (``e_deps``), mirroring the object
  path's edge registration, so squash cascades walk exactly the edges
  the object core registered.

* **Packed-native fetch.**  The fetch queue is a pair of cursors into
  the :class:`~repro.trace.packed.PackedTrace` columns; no
  ``Instruction`` is ever materialised.  Per-trace auxiliary columns —
  src registers unpacked into tuples, i-cache line ids — are computed
  once and memoised on the trace's column dict identity, so the repeated
  runs of a fig13/fig19 sweep share them.  I-cache, gshare and d-cache
  accesses are inlined over locally bound buckets/counter lists, with
  the access/miss/lookup counters accumulated as plain ints and flushed
  to the shared model objects once at the end.  Because fetch consumes
  the trace strictly in order, the entire front end is also
  precomputable: from pristine i-cache/branch-predictor state the line
  hit/miss and predict-correct/mispredict outcome of every instruction
  is a trace property, independent of back-end timing, so they are
  solved once per trace into a shared event-byte column and each run's
  fetch phase just reads it (final front-end state is restored from a
  snapshot, or by replaying the consumed prefix after a truncated
  ``max_cycles`` run).

* **Event-driven scheduling.**  Completion latencies are bounded, so
  in-flight instructions live in a timing wheel of ``max_latency + 1``
  cycle buckets; records are ``(issue_ordinal << bits) | slot`` ints,
  appended in issue order — which *is* the object path's ``in_flight``
  scan order — and validated against the slot's current issue ordinal,
  so records orphaned by a selective-reissue squash drop out for free.
  Issue is wakeup driven: dispatch pushes an entry onto a seq-ordered
  ready heap when its producers are all complete (or passable on a
  confident prediction), and a completing producer re-evaluates its
  waiting consumers and pushes the newly unblocked ones.  Pops
  re-validate readiness against live state, so duplicate and stale
  candidates drop out; draining oldest-first under the width/FU/port
  budgets makes the same selection the object path's in-order ROB scan
  makes, without ever visiting a blocked entry.  As in the object
  path's ``_ready``, an entry that passes an incomplete producer on a
  confident prediction is marked as having used speculation the moment
  it is *evaluated* ready — even if a d-cache port holds it back that
  cycle.  The outer loop then jumps straight to the next cycle at which
  any phase can act (retirable head, ready entry, next wheel bucket,
  dispatchable fetch queue, fetch reopening); a skipped cycle is
  provably a no-op for every counter and every architectural state, so
  cycle counts and all per-cycle interactions come out bit-identical.

* **Fused value-prediction hooks.**  The ``vp.py`` adapters are
  compiled into dispatch/complete closures over the flat predictor
  state from PR 3 (ring-buffer GVQ/HGVQ,
  :class:`~repro.core.table.FlatGDiffTable`, dict-backed local tables),
  with prediction-stats and confidence training inlined and stat
  counters flushed at the end.  The gDiff paths reuse PR 3's lazy
  difference vectors: queue pushes go to an append-only log (HGVQ
  deposits carry a write-back ordinal so out-of-order deposits read
  back exactly the values a train-time snapshot saw), trained rows are
  kept as ``(actual, window position)`` pairs, and the common
  sticky-hit train costs one on-demand difference compare instead of an
  order-n vector build.  Rows and the queue ring are materialised into
  the shared flat arrays once at the end; as in the profile kernels,
  ``_diffs`` words past a row's ``_valid`` count and the predictor's
  ``_scratch`` buffer are unreachable garbage and may differ from the
  object path's residue.

* **Shared timing solutions.**  Without speculative value use the
  machine timing is provably independent of the attached predictor —
  the hooks only observe — so the first pristine passive run over a
  trace/config records the interleaved dispatch/complete order of
  value instructions plus the final cache/branch state, and every
  later pristine passive run over the same trace replays only the
  value-prediction side.  A fig13/fig16-style sweep therefore pays for
  one machinery pass per trace, not one per scheme (the in-process
  trace memo in :mod:`repro.trace.cache` extends the sharing across
  experiment calls).

Shapes the kernel does not model decline cleanly — :func:`run_fast`
returns ``None`` before mutating anything and the caller falls back to
the object loop: attached telemetry (the object path owns the per-cycle
occupancy/stall accounting), subclassed cores or adapters, plain object
``Trace`` inputs, tagged tables, attached event recorders, and predictor
shapes outside the LocalPredictorAdapter/SGVQ/HGVQ families.
``REPRO_KERNELS=0`` disables the kernel entirely (checked per call).

Equivalence — bit-identical :class:`SimResult` plus identical cache,
branch-predictor, predictor-table, queue, confidence and stats state —
is asserted by ``tests/test_pipeline_equivalence.py`` across predictor
schemes, seeds, gating and reissue policies.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from itertools import accumulate
from typing import Optional

from ..core.gdiff import GDiffPredictor
from ..core.gvq import GlobalValueQueue, SlottedValueQueue
from ..core.hybrid import HybridGDiffPredictor
from ..core.kernels import kernels_enabled
from ..core.table import FlatGDiffTable
from ..predictors.base import ConstantPredictor, PredictionStats
from ..predictors.confidence import ConfidenceTable
from ..predictors.dfcm import DFCMPredictor, _DFCMEntry
from ..predictors.fcm import _HASH_MULT
from ..predictors.last_value import LastValuePredictor
from ..predictors.stride import StridePredictor, _StrideEntry
from ..tables import DirectMappedTable
from ..trace.packed import PackedTrace
from ..wordops import WORD_MASK
from .ooo import OutOfOrderCore, SimResult
from .vp import HGVQAdapter, LocalPredictorAdapter, SGVQAdapter


# ----------------------------------------------------------------------
# Per-trace auxiliary columns
# ----------------------------------------------------------------------
class _SrcLut(dict):
    """Packed src word -> tuple of register numbers, built on demand."""

    def __missing__(self, word):
        regs = []
        n = word & 0xF
        w = word >> 4
        while n:
            regs.append(w & 0x3F)
            w >>= 6
            n -= 1
        t = self[word] = tuple(regs)
        return t


_SRC_LUT = _SrcLut()

#: flags byte -> 1 when the produces-value bit (0x40) is set.
_VPRE_TBL = bytes(1 if b & 0x40 else 0 for b in range(256))

#: id(trace._cols) -> (cols, aux dict).  The strong reference to the
#: column dict pins its id, so a recycled id can never alias a dead
#: trace; the cache is a small FIFO so long campaigns stay bounded.
_AUX_CACHE = {}
_AUX_CAP = 12


def _trace_aux(cols):
    key = id(cols)
    hit = _AUX_CACHE.get(key)
    if hit is not None and hit[0] is cols:
        return hit[1]
    if len(_AUX_CACHE) >= _AUX_CAP:
        _AUX_CACHE.pop(next(iter(_AUX_CACHE)))
    aux = {}
    _AUX_CACHE[key] = (cols, aux)
    return aux


# ----------------------------------------------------------------------
# Fused value-prediction hooks
# ----------------------------------------------------------------------
def _conf_bind(vp):
    """Bind the confidence table's gate/train state as flat locals.

    Returns ``(cdata, cunlim, cmask, cshift, cup, cdown, cmax, cthr)``;
    the scoring sequence itself (stats record, then confidence train —
    exactly ``PipelinePredictor._score``) is inlined at each use site so
    no per-instruction call survives.
    """
    conf = vp.confidence
    ctab = conf._table
    cunlim = ctab.entries is None
    return (ctab._data, cunlim, 0 if cunlim else ctab.entries - 1,
            ctab.pc_shift, conf.up, conf.down, conf.max_value,
            conf.threshold)


def _inner_ops(inner):
    """Compile a local predictor into flat closures, or None to decline.

    Returns ``(predict, update, spec, retire, finalize)``; members may be
    ``None`` where the predictor has no behaviour (matching the base-class
    no-ops).  Used for :class:`LocalPredictorAdapter` inners and for the
    HGVQ filler.
    """
    kind = type(inner)
    if kind is ConstantPredictor:
        value = inner.value
        return (lambda pc: value), None, None, None, None
    if kind is StridePredictor:
        table = inner._table
        if type(table) is not DirectMappedTable or table.tagged \
                or table.track_conflicts:
            return None
        data = table._data
        unlim = table.entries is None
        mask = 0 if unlim else table.entries - 1
        shift = table.pc_shift
        two_delta = inner.two_delta
        accesses = 0

        def predict(pc):
            e = data.get(pc if unlim else (pc >> shift) & mask)
            if e is None or e.seen == 0:
                return None
            return (e.last + e.stride * (1 + e.spec_ahead)) & WORD_MASK

        def update(pc, actual):
            nonlocal accesses
            accesses += 1
            idx = pc if unlim else (pc >> shift) & mask
            e = data.get(idx)
            if e is None:
                e = _StrideEntry()
                data[idx] = e
            if e.seen == 0:
                e.last = actual
                e.seen = 1
                return
            delta = (actual - e.last) & WORD_MASK
            if two_delta:
                if delta == e.candidate:
                    e.stride = delta
                e.candidate = delta
            else:
                e.stride = delta
            e.last = actual
            e.seen += 1

        def spec(pc):
            e = data.get(pc if unlim else (pc >> shift) & mask)
            if e is None or e.seen == 0:
                return
            e.spec_ahead += 1

        def retire(pc):
            e = data.get(pc if unlim else (pc >> shift) & mask)
            if e is not None and e.spec_ahead > 0:
                e.spec_ahead -= 1

        def finalize():
            table.accesses += accesses

        return predict, update, spec, retire, finalize
    if kind is LastValuePredictor:
        table = inner._table
        if type(table) is not DirectMappedTable or table.tagged \
                or table.track_conflicts:
            return None
        data = table._data
        unlim = table.entries is None
        mask = 0 if unlim else table.entries - 1
        shift = table.pc_shift
        accesses = 0

        def predict(pc):
            return data.get(pc if unlim else (pc >> shift) & mask)

        def update(pc, actual):
            nonlocal accesses
            accesses += 1
            data[pc if unlim else (pc >> shift) & mask] = actual

        def finalize():
            table.accesses += accesses

        return predict, update, None, None, finalize
    if kind is DFCMPredictor:
        l1 = inner._l1
        if type(l1) is not DirectMappedTable or l1.tagged \
                or l1.track_conflicts:
            return None
        data = l1._data
        l2 = inner._l2
        unlim = l1.entries is None
        mask = 0 if unlim else l1.entries - 1
        shift = l1.pc_shift
        order = inner.order
        l2e = inner.l2_entries
        accesses = 0

        def predict(pc):
            e = data.get(pc if unlim else (pc >> shift) & mask)
            if e is None:
                return None
            strides = e.strides
            if len(strides) < order:
                return None
            h = pc & WORD_MASK
            for v in strides:
                h = (h * _HASH_MULT + v) & WORD_MASK
            s2 = l2.get(h % l2e)
            if s2 is None:
                return None
            return (e.last + s2) & WORD_MASK

        def update(pc, actual):
            nonlocal accesses
            accesses += 1
            idx = pc if unlim else (pc >> shift) & mask
            e = data.get(idx)
            if e is None:
                e = _DFCMEntry()
                data[idx] = e
            if e.seen == 0:
                e.last = actual
                e.seen = 1
                return
            stride = (actual - e.last) & WORD_MASK
            strides = e.strides
            if len(strides) >= order:
                h = pc & WORD_MASK
                for v in strides:
                    h = (h * _HASH_MULT + v) & WORD_MASK
                l2[h % l2e] = stride
            strides.append(stride)
            if len(strides) > order:
                strides.pop(0)
            e.last = actual
            e.seen += 1

        def finalize():
            l1.accesses += accesses

        return predict, update, None, None, finalize
    return None


def _flat_state(table):
    """Bind a FlatGDiffTable's full train-side state, or None to decline.

    The bound array locals survive ``_grow`` because the arena extends
    its arrays/bytearrays in place.
    """
    if type(table) is not FlatGDiffTable or table.tagged \
            or table._meters is not None:
        return None
    return (
        table.entries is None,            # unlim
        table._rows.get,                  # rows_get
        table._present,
        table._dist,
        table._valid,
        table._diffs,
        0 if table.entries is None else table.entries - 1,  # mask
        table.pc_shift,
        table.order,
        table.policy == "sticky-nearest",  # sticky
        table.policy == "farthest",        # farthest
        table.refresh_on_match,
        table.track_conflicts,
        table._owner,
        table._owner_set,
    )


def _local_vp(vp):
    """Compile a LocalPredictorAdapter into fully inlined hooks.

    Each supported inner predictor gets its own dispatch/complete pair
    with the table op, the confidence-gate lookup and the stats /
    confidence scoring all inlined, mirroring the fused profile loops in
    :mod:`repro.core.kernels` — no per-instruction call survives beyond
    the two hook invocations themselves.  The DFCM pair additionally
    keeps the second-level context hash *rolling* (two multiplies
    instead of *order*, bit-exact) in a slot-keyed, pc-validated cache
    shared by predict and train.
    """
    inner = vp.inner
    kind = type(inner)
    stats = vp.stats
    cdata, cunlim, cmask, cshift, cup, cdown, cmax, cthr = _conf_bind(vp)
    cget = cdata.get
    spec_mode = vp.spec_update
    M = WORD_MASK
    attempts = predictions = correct = confident_n = confident_correct = 0

    def flush():
        stats.attempts += attempts
        stats.predictions += predictions
        stats.correct += correct
        stats.confident += confident_n
        stats.confident_correct += confident_correct

    if kind is ConstantPredictor:
        value = inner.value

        def dispatch(pc):
            return value, cget(pc if cunlim else (pc >> cshift) & cmask,
                               0) >= cthr, spec_mode

        def complete(pc, predicted, confident, tag, actual):
            nonlocal attempts, predictions, correct, confident_n, \
                confident_correct
            attempts += 1
            predictions += 1
            cidx = pc if cunlim else (pc >> cshift) & cmask
            cur = cget(cidx, 0)
            if predicted == actual:
                correct += 1
                if confident:
                    confident_n += 1
                    confident_correct += 1
                cur += cup
                if cur > cmax:
                    cur = cmax
            else:
                if confident:
                    confident_n += 1
                cur -= cdown
                if cur < 0:
                    cur = 0
            cdata[cidx] = cur

        return dispatch, complete, flush

    if kind is StridePredictor:
        table = inner._table
        if type(table) is not DirectMappedTable or table.tagged \
                or table.track_conflicts:
            return None
        data = table._data
        dget = data.get
        unlim = table.entries is None
        mask = 0 if unlim else table.entries - 1
        shift = table.pc_shift
        two_delta = inner.two_delta
        accesses = 0

        def dispatch(pc):
            e = dget(pc if unlim else (pc >> shift) & mask)
            if e is None or e.seen == 0:
                return None, False, False
            predicted = (e.last + e.stride * (1 + e.spec_ahead)) & M
            confident = cget(pc if cunlim else (pc >> cshift) & cmask,
                             0) >= cthr
            if spec_mode:
                e.spec_ahead += 1
                return predicted, confident, True
            return predicted, confident, False

        def complete(pc, predicted, confident, tag, actual):
            nonlocal attempts, predictions, correct, confident_n, \
                confident_correct, accesses
            attempts += 1
            if predicted is not None:
                predictions += 1
                cidx = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(cidx, 0)
                if predicted == actual:
                    correct += 1
                    if confident:
                        confident_n += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if confident:
                        confident_n += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[cidx] = cur
            accesses += 1
            idx = pc if unlim else (pc >> shift) & mask
            e = dget(idx)
            if tag and e is not None and e.spec_ahead > 0:
                e.spec_ahead -= 1
            if e is None:
                e = _StrideEntry()
                e.last = actual
                e.seen = 1
                data[idx] = e
            elif e.seen == 0:
                e.last = actual
                e.seen = 1
            else:
                delta = (actual - e.last) & M
                if two_delta:
                    if delta == e.candidate:
                        e.stride = delta
                    e.candidate = delta
                else:
                    e.stride = delta
                e.last = actual
                e.seen += 1

        def finalize():
            table.accesses += accesses
            flush()

        return dispatch, complete, finalize

    if kind is LastValuePredictor:
        table = inner._table
        if type(table) is not DirectMappedTable or table.tagged \
                or table.track_conflicts:
            return None
        data = table._data
        dget = data.get
        unlim = table.entries is None
        mask = 0 if unlim else table.entries - 1
        shift = table.pc_shift
        accesses = 0

        def dispatch(pc):
            predicted = dget(pc if unlim else (pc >> shift) & mask)
            if predicted is None:
                return None, False, False
            return predicted, cget(pc if cunlim else
                                   (pc >> cshift) & cmask,
                                   0) >= cthr, spec_mode

        def complete(pc, predicted, confident, tag, actual):
            nonlocal attempts, predictions, correct, confident_n, \
                confident_correct, accesses
            attempts += 1
            if predicted is not None:
                predictions += 1
                cidx = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(cidx, 0)
                if predicted == actual:
                    correct += 1
                    if confident:
                        confident_n += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if confident:
                        confident_n += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[cidx] = cur
            accesses += 1
            data[pc if unlim else (pc >> shift) & mask] = actual

        def finalize():
            table.accesses += accesses
            flush()

        return dispatch, complete, finalize

    if kind is DFCMPredictor:
        l1 = inner._l1
        if type(l1) is not DirectMappedTable or l1.tagged \
                or l1.track_conflicts:
            return None
        data = l1._data
        dget = data.get
        l2 = inner._l2
        l2get = l2.get
        unlim = l1.entries is None
        mask = 0 if unlim else l1.entries - 1
        shift = l1.pc_shift
        order = inner.order
        l2e = inner.l2_entries
        hmul = _HASH_MULT
        hmul_k = pow(hmul, order, 1 << 64)
        cmul = (hmul_k - hmul_k * hmul) & M
        # slot -> (pc, rolling level-2 hash, salt term); a cache entry
        # exists only while it matches the slot's latest stride context
        # (every train of a full-context slot rewrites it, and contexts
        # never shrink, so a short-context slot can hold no entry).
        hcache = {}
        hget = hcache.get
        accesses = 0

        def dispatch(pc):
            idx = pc if unlim else (pc >> shift) & mask
            e = dget(idx)
            if e is None:
                return None, False, False
            strides = e.strides
            if len(strides) < order:
                return None, False, False
            cached = hget(idx)
            if cached is not None and cached[0] == pc:
                h = cached[1]
            else:
                h = pc & M
                for v in strides:
                    h = (h * hmul + v) & M
                hcache[idx] = (pc, h, (pc * cmul) & M)
            s2 = l2get(h % l2e)
            if s2 is None:
                return None, False, False
            return (e.last + s2) & M, cget(
                pc if cunlim else (pc >> cshift) & cmask,
                0) >= cthr, spec_mode

        def complete(pc, predicted, confident, tag, actual):
            nonlocal attempts, predictions, correct, confident_n, \
                confident_correct, accesses
            attempts += 1
            if predicted is not None:
                predictions += 1
                cidx = pc if cunlim else (pc >> cshift) & cmask
                cur = cget(cidx, 0)
                if predicted == actual:
                    correct += 1
                    if confident:
                        confident_n += 1
                        confident_correct += 1
                    cur += cup
                    if cur > cmax:
                        cur = cmax
                else:
                    if confident:
                        confident_n += 1
                    cur -= cdown
                    if cur < 0:
                        cur = 0
                cdata[cidx] = cur
            accesses += 1
            idx = pc if unlim else (pc >> shift) & mask
            e = dget(idx)
            if e is None:
                e = _DFCMEntry()
                e.last = actual
                e.seen = 1
                data[idx] = e
            elif e.seen == 0:
                e.last = actual
                e.seen = 1
            else:
                stride = (actual - e.last) & M
                strides = e.strides
                if len(strides) >= order:
                    cached = hget(idx)
                    if cached is not None and cached[0] == pc:
                        h = cached[1]
                        csalt = cached[2]
                    else:
                        h = pc & M
                        for v in strides:
                            h = (h * hmul + v) & M
                        csalt = (pc * cmul) & M
                    l2[h % l2e] = stride
                    hcache[idx] = (pc,
                                   (h * hmul + stride
                                    - strides[0] * hmul_k + csalt) & M,
                                   csalt)
                strides.append(stride)
                if len(strides) > order:
                    strides.pop(0)
                e.last = actual
                e.seen += 1

        def finalize():
            l1.accesses += accesses
            flush()

        return dispatch, complete, finalize

    return None


def _sgvq_vp(vp):
    """Fused SGVQ hooks: dispatch-time predict, completion-order train.

    Queue pushes go to an append-only log seeded from the live ring
    window (absolute queue position ``k`` reads as ``log[k - logbase]``)
    and trained rows are kept lazily as ``(actual, window top)``; the
    ring, the flat table rows and all counters are materialised in
    ``finalize``.
    """
    gd = vp.gdiff
    if type(gd) is not GDiffPredictor:
        return None
    queue = gd.queue
    if type(queue) is not GlobalValueQueue:
        return None
    table = gd.table
    ts = _flat_state(table)
    if ts is None:
        return None
    (unlim, rows_get, tpresent, tdist, tvalid, tdiffs, tmask, tshift,
     torder, sticky, farthest, refresh, track, towner, towner_set) = ts
    stats = vp.stats
    cdata, cunlim, cmask, cshift, cup, cdown, cmax, cthr = _conf_bind(vp)
    cget = cdata.get
    attempts = predictions = correct = confident_n = confident_correct = 0
    M = WORD_MASK
    trows = table._rows
    qbuf = queue._buf
    qcap = queue._capacity
    qdelay = queue.delay
    fullmask = queue._full_mask
    qcount0 = queue._count
    qcount = qcount0
    vmask = queue._vmask
    if vmask & (vmask + 1):
        return None     # non-contiguous valid mask: not a queue state
    vc = vmask.bit_length()
    fullbits = fullmask.bit_length()
    logbase = qcount0 - qcap
    if logbase < 0:
        logbase = 0
    log = [qbuf[k % qcap] for k in range(logbase, qcount0)]
    log_append = log.append
    lazy = {}       # row -> (actual, absolute window-top position)
    lazy_get = lazy.get
    accesses = 0
    conflicts = 0
    occupied = 0
    nrows = table._nrows
    last_sel = -1

    def dispatch(pc):
        if unlim:
            row = rows_get(pc, -1)
        else:
            row = (pc >> tshift) & tmask
            if not tpresent[row]:
                row = -1
        predicted = None
        if row >= 0:
            d = tdist[row]
            if d and d <= tvalid[row] and (vmask >> (d - 1)) & 1:
                base = log[qcount - qdelay - d - logbase]
                lz = lazy_get(row)
                if lz is None:
                    predicted = (base + tdiffs[row * torder + d - 1]) & M
                else:
                    predicted = (base + lz[0]
                                 - log[lz[1] - d - logbase]) & M
        if predicted is None:
            return None, False, None
        return predicted, cget(pc if cunlim else (pc >> cshift) & cmask,
                               0) >= cthr, None

    def complete(pc, predicted, confident, tag, actual):
        nonlocal qcount, vmask, vc, last_sel, accesses, conflicts, \
            occupied, nrows, attempts, predictions, correct, \
            confident_n, confident_correct
        attempts += 1
        if predicted is not None:
            predictions += 1
            cidx = pc if cunlim else (pc >> cshift) & cmask
            cur = cget(cidx, 0)
            if predicted == actual:
                correct += 1
                if confident:
                    confident_n += 1
                    confident_correct += 1
                cur += cup
                if cur > cmax:
                    cur = cmax
            else:
                if confident:
                    confident_n += 1
                cur -= cdown
                if cur < 0:
                    cur = 0
            cdata[cidx] = cur
        accesses += 1
        topb = qcount - qdelay - logbase   # log index of the window top
        # -- resolve/create the row (lookup_or_create accounting)
        if unlim:
            row = rows_get(pc, -1)
            if row < 0:
                if nrows * torder == len(tdiffs):
                    table._grow()
                row = nrows
                nrows += 1
                trows[pc] = row
                tpresent[row] = 1
                occupied += 1
                tdist[row] = 0
                tvalid[row] = 0
        else:
            row = (pc >> tshift) & tmask
            if tpresent[row]:
                if track:
                    if towner_set[row] and towner[row] != pc:
                        conflicts += 1
                    towner[row] = pc
                    towner_set[row] = 1
            else:
                tpresent[row] = 1
                occupied += 1
                tdist[row] = 0
                tvalid[row] = 0
                if track:
                    towner[row] = pc
                    towner_set[row] = 1
        # -- match & select (paper's update rule), diffs compared lazily
        sv = tvalid[row]
        limit = sv if sv < vc else vc
        chosen = 0
        lz = lazy_get(row)
        if lz is None:
            rbase = row * torder
            if sticky:
                d = tdist[row]
                if 0 < d <= limit and tdiffs[rbase + d - 1] == \
                        (actual - log[topb - d]) & M:
                    chosen = d
            if not chosen and limit:
                if farthest:
                    for d in range(limit, 0, -1):
                        if tdiffs[rbase + d - 1] == \
                                (actual - log[topb - d]) & M:
                            chosen = d
                            break
                else:
                    for d in range(1, limit + 1):
                        if tdiffs[rbase + d - 1] == \
                                (actual - log[topb - d]) & M:
                            chosen = d
                            break
        else:
            # (la - log[lwb-d]) == (actual - log[topb-d])  (mod 2^64)
            # rearranges to a per-scan constant vs a two-read probe.
            t = (lz[0] - actual) & M
            delta = lz[1] - logbase - topb
            if sticky:
                d = tdist[row]
                if 0 < d <= limit:
                    p = topb - d
                    if (log[p + delta] - log[p]) & M == t:
                        chosen = d
            if not chosen and limit:
                if farthest:
                    p = topb - limit
                    while p < topb:
                        if (log[p + delta] - log[p]) & M == t:
                            chosen = topb - p
                            break
                        p += 1
                else:
                    p = topb - 1
                    stop = topb - limit
                    while p >= stop:
                        if (log[p + delta] - log[p]) & M == t:
                            chosen = topb - p
                            break
                        p -= 1
        if chosen:
            tdist[row] = chosen
            if refresh:
                lazy[row] = (actual, topb + logbase)
                tvalid[row] = vc
            last_sel = chosen
        else:
            lazy[row] = (actual, topb + logbase)
            tvalid[row] = vc
            last_sel = 0
        # -- push into the (logged) queue
        log_append(actual)
        qcount += 1
        if qcount > qdelay:
            vmask = ((vmask << 1) | 1) & fullmask
            if vc < fullbits:
                vc += 1

    def finalize():
        queue._count = qcount
        queue._vmask = vmask
        start = qcount - qcap
        if start < qcount0:
            start = qcount0
        for k in range(start, qcount):
            qbuf[k % qcap] = log[k - logbase]
        for row, (la, lw) in lazy.items():
            rbase = row * torder
            lwb = lw - logbase
            for dd in range(tvalid[row]):
                tdiffs[rbase + dd] = (la - log[lwb - 1 - dd]) & M
        table.accesses += accesses
        table.conflicts += conflicts
        table._occupied += occupied
        table._nrows = nrows
        if last_sel >= 0:
            gd.last_distance = last_sel if last_sel else None
        stats.attempts += attempts
        stats.predictions += predictions
        stats.correct += correct
        stats.confident += confident_n
        stats.confident_correct += confident_correct

    return dispatch, complete, finalize


def _hgvq_vp(vp):
    """Fused HGVQ hooks over deposit-versioned absolute queue slots.

    The slotted ring becomes three absolute-indexed lists — filler
    content, deposited value, deposit ordinal — so a lazily stored row
    ``(actual, seq, ordinal)`` can re-read exactly the window snapshot
    its train step saw even after later out-of-order deposits mutate
    those positions.  Every in-window read stays within the lists
    because deposits and window reads are both bounded by the ring
    capacity.
    """
    hy = vp.hybrid
    if type(hy) is not HybridGDiffPredictor:
        return None
    queue = hy.queue
    if type(queue) is not SlottedValueQueue:
        return None
    table = hy.table
    ts = _flat_state(table)
    if ts is None:
        return None
    filler = hy.filler
    fstride = False
    fpredict = fupdate = ffinal = None
    fdata = fdget = None
    funlim = ftwo = False
    fmask = fshift = 0
    faccesses = 0
    if type(filler) is StridePredictor:
        ftab = filler._table
        if type(ftab) is DirectMappedTable and not ftab.tagged \
                and not ftab.track_conflicts:
            # The common filler is a stride predictor: inline its
            # predict/train like the standalone local family above.
            fstride = True
            fdata = ftab._data
            fdget = fdata.get
            funlim = ftab.entries is None
            fmask = 0 if funlim else ftab.entries - 1
            fshift = ftab.pc_shift
            ftwo = filler.two_delta
    if not fstride:
        fops = _inner_ops(filler)
        if fops is None:
            return None
        fpredict, fupdate, _fspec, _fretire, ffinal = fops
    (unlim, rows_get, tpresent, tdist, tvalid, tdiffs, tmask, tshift,
     torder, sticky, farthest, refresh, track, towner, towner_set) = ts
    stats = vp.stats
    cdata, cunlim, cmask, cshift, cup, cdown, cmax, cthr = _conf_bind(vp)
    cget = cdata.get
    attempts = predictions = correct = confident_n = confident_correct = 0
    M = WORD_MASK
    trows = table._rows
    qbuf = queue._buf
    qcap = queue._capacity
    qsize = queue.size
    next_seq0 = queue._next_seq
    next_seq = next_seq0
    sbase = next_seq0 - qcap
    if sbase < 0:
        sbase = 0
    BIG = 1 << 62
    # Pre-run ring content counts as deposited before any train this run.
    fillv = [qbuf[k % qcap] for k in range(sbase, next_seq0)]
    dval = [0] * (next_seq0 - sbase)
    dord = [BIG] * (next_seq0 - sbase)
    curw = fillv[:]  # latest visible value per slot (deposit else fill)
    fillv_append = fillv.append
    dval_append = dval.append
    dord_append = dord.append
    curw_append = curw.append
    wb_ord = 0
    lazy = {}       # row -> (actual, train seq, train ordinal)
    lazy_get = lazy.get
    late = 0
    accesses = 0
    conflicts = 0
    occupied = 0
    nrows = table._nrows
    last_sel = -1

    def dispatch(pc):
        nonlocal next_seq
        seq = next_seq
        if unlim:
            row = rows_get(pc, -1)
        else:
            row = (pc >> tshift) & tmask
            if not tpresent[row]:
                row = -1
        predicted = None
        if row >= 0:
            d = tdist[row]
            if d and d <= tvalid[row]:
                depth = seq - sbase
                if depth > qcap:
                    depth = qcap
                if depth > qsize:
                    depth = qsize
                if d <= depth:
                    p = seq - d - sbase
                    base = curw[p]
                    lz = lazy_get(row)
                    if lz is None:
                        predicted = (base
                                     + tdiffs[row * torder + d - 1]) & M
                    else:
                        p0 = lz[1] - d - sbase
                        b0 = dval[p0] if dord[p0] < lz[2] else fillv[p0]
                        predicted = (base + lz[0] - b0) & M
        if fstride:
            fe = fdget(pc if funlim else (pc >> fshift) & fmask)
            if fe is None or fe.seen == 0:
                fv = 0
            else:
                fv = (fe.last + fe.stride * (1 + fe.spec_ahead)) & M
        else:
            fv = fpredict(pc)
            fv = (fv if fv is not None else 0) & M
        fillv_append(fv)
        curw_append(fv)
        dval_append(0)
        dord_append(BIG)
        next_seq = seq + 1
        if predicted is None:
            return None, False, seq
        return predicted, cget(pc if cunlim else (pc >> cshift) & cmask,
                               0) >= cthr, seq

    def complete(pc, predicted, confident, seq, actual):
        nonlocal late, last_sel, wb_ord, accesses, conflicts, occupied, \
            nrows, attempts, predictions, correct, confident_n, \
            confident_correct, faccesses
        attempts += 1
        if predicted is not None:
            predictions += 1
            cidx = pc if cunlim else (pc >> cshift) & cmask
            cur = cget(cidx, 0)
            if predicted == actual:
                correct += 1
                if confident:
                    confident_n += 1
                    confident_correct += 1
                cur += cup
                if cur > cmax:
                    cur = cmax
            else:
                if confident:
                    confident_n += 1
                cur -= cdown
                if cur < 0:
                    cur = 0
            cdata[cidx] = cur
        my_ord = wb_ord
        wb_ord = my_ord + 1
        if seq < next_seq - qcap or seq >= next_seq:
            late += 1
        else:
            rel = seq - sbase
            dval[rel] = actual
            dord[rel] = my_ord
            curw[rel] = actual
        oldest = next_seq - qcap
        if oldest < 0:
            oldest = 0
        vc = seq - oldest
        if vc < 0:
            vc = 0
        elif vc > qsize:
            vc = qsize
        accesses += 1
        # -- resolve/create the row (lookup_or_create accounting)
        if unlim:
            row = rows_get(pc, -1)
            if row < 0:
                if nrows * torder == len(tdiffs):
                    table._grow()
                row = nrows
                nrows += 1
                trows[pc] = row
                tpresent[row] = 1
                occupied += 1
                tdist[row] = 0
                tvalid[row] = 0
        else:
            row = (pc >> tshift) & tmask
            if tpresent[row]:
                if track:
                    if towner_set[row] and towner[row] != pc:
                        conflicts += 1
                    towner[row] = pc
                    towner_set[row] = 1
            else:
                tpresent[row] = 1
                occupied += 1
                tdist[row] = 0
                tvalid[row] = 0
                if track:
                    towner[row] = pc
                    towner_set[row] = 1
        # -- match & select, window values versioned at this ordinal
        sv = tvalid[row]
        limit = sv if sv < vc else vc
        chosen = 0
        seqb = seq - sbase
        lz = lazy_get(row)
        if lz is None:
            rbase = row * torder
            if sticky:
                d = tdist[row]
                if 0 < d <= limit:
                    if tdiffs[rbase + d - 1] == \
                            (actual - curw[seqb - d]) & M:
                        chosen = d
            if not chosen and limit:
                if farthest:
                    scan = range(limit, 0, -1)
                else:
                    scan = range(1, limit + 1)
                for d in scan:
                    if tdiffs[rbase + d - 1] == \
                            (actual - curw[seqb - d]) & M:
                        chosen = d
                        break
        else:
            # (la - b0(d)) == (actual - base(d))  (mod 2^64), with the
            # per-scan constant hoisted; base is the live window (cur),
            # b0 the snapshot the lazy train saw (deposit-versioned).
            t = (lz[0] - actual) & M
            lt = lz[2]
            dd0 = lz[1] - sbase - seqb
            if sticky:
                d = tdist[row]
                if 0 < d <= limit:
                    p = seqb - d
                    p0 = p + dd0
                    b0 = dval[p0] if dord[p0] < lt else fillv[p0]
                    if (b0 - curw[p]) & M == t:
                        chosen = d
            if not chosen and limit:
                if farthest:
                    p = seqb - limit
                    while p < seqb:
                        p0 = p + dd0
                        b0 = dval[p0] if dord[p0] < lt else fillv[p0]
                        if (b0 - curw[p]) & M == t:
                            chosen = seqb - p
                            break
                        p += 1
                else:
                    p = seqb - 1
                    stop = seqb - limit
                    while p >= stop:
                        p0 = p + dd0
                        b0 = dval[p0] if dord[p0] < lt else fillv[p0]
                        if (b0 - curw[p]) & M == t:
                            chosen = seqb - p
                            break
                        p -= 1
        if chosen:
            tdist[row] = chosen
            if refresh:
                lazy[row] = (actual, seq, my_ord)
                tvalid[row] = vc
            last_sel = chosen
        else:
            lazy[row] = (actual, seq, my_ord)
            tvalid[row] = vc
            last_sel = 0
        if fstride:
            faccesses += 1
            fidx = pc if funlim else (pc >> fshift) & fmask
            fe = fdget(fidx)
            if fe is None:
                fe = _StrideEntry()
                fe.last = actual
                fe.seen = 1
                fdata[fidx] = fe
            elif fe.seen == 0:
                fe.last = actual
                fe.seen = 1
            else:
                fdelta = (actual - fe.last) & M
                if ftwo:
                    if fdelta == fe.candidate:
                        fe.stride = fdelta
                    fe.candidate = fdelta
                else:
                    fe.stride = fdelta
                fe.last = actual
                fe.seen += 1
        elif fupdate is not None:
            fupdate(pc, actual)

    def finalize():
        queue._next_seq = next_seq
        queue.late_deposits += late
        start = next_seq - qcap
        if start < next_seq0:
            start = next_seq0
        for k in range(start, next_seq):
            qbuf[k % qcap] = curw[k - sbase]
        for row, (la, lw, lt) in lazy.items():
            rbase = row * torder
            lwb = lw - sbase
            for dd in range(tvalid[row]):
                p = lwb - 1 - dd
                base = dval[p] if dord[p] < lt else fillv[p]
                tdiffs[rbase + dd] = (la - base) & M
        table.accesses += accesses
        table.conflicts += conflicts
        table._occupied += occupied
        table._nrows = nrows
        if last_sel >= 0:
            hy.last_distance = last_sel if last_sel else None
        stats.attempts += attempts
        stats.predictions += predictions
        stats.correct += correct
        stats.confident += confident_n
        stats.confident_correct += confident_correct
        if fstride:
            ftab.accesses += faccesses
        elif ffinal is not None:
            ffinal()

    return dispatch, complete, finalize


def _build_vp(vp):
    """Compile adapter *vp* into (dispatch, complete, finalize) closures.

    Returns None (declining the whole run) for adapter shapes the kernel
    does not model: subclasses, attached event recorders, non-standard
    confidence tables, or inner predictors without a fused form.
    """
    if vp._events is not None:
        return None
    conf = vp.confidence
    if type(conf) is not ConfidenceTable \
            or type(conf._table) is not DirectMappedTable \
            or conf._table.tagged:
        return None
    if type(vp.stats) is not PredictionStats:
        return None
    kind = type(vp)
    if kind is LocalPredictorAdapter:
        return _local_vp(vp)
    if kind is SGVQAdapter:
        return _sgvq_vp(vp)
    if kind is HGVQAdapter:
        return _hgvq_vp(vp)
    return None


# ----------------------------------------------------------------------
# The pipeline kernel
# ----------------------------------------------------------------------
def run_fast(core, trace, max_cycles=None, on_progress=None,
             total=None, progress_every=8192) -> Optional[SimResult]:
    """Run *core* over a packed *trace* with the fused kernel, if it fits.

    Returns the :class:`SimResult` (bit-identical to what the object loop
    would produce, with identical end state in the caches, branch
    predictor, and value-prediction adapter), or ``None`` — with nothing
    mutated — when the configuration is not modelled and the caller must
    fall back to the object path.

    Scheduling is event driven on a timing wheel plus a wakeup network:

    * Register dataflow is static — the producer of each source operand
      is the latest earlier writer of that register — so the dependency
      and consumer edges are precomputed once per trace into auxiliary
      columns and shared by every run over it.  A static producer is
      live exactly when its seq is at or above the retire head (the
      run-local writers map of the object path never holds a retired or
      overwritten entry), which makes the dispatch-time dependency scan
      a couple of integer compares with no dict in sight.
    * In-flight instructions live in a wheel of ``max_latency + 1``
      cycle buckets holding ``(issue_ordinal << bits) | slot`` ints.
      Bucket append order is issue order — exactly the object path's
      ``in_flight`` scan order — and every live record's ready cycle is
      provably the cycle its bucket is visited, so completions pop in
      the object order with no sorting at all.  Records orphaned by a
      selective-reissue squash are dropped by their stale ordinal.
    * Issue selection is a seq-ordered heap of *candidate* entries:
      an entry is pushed when dispatch finds it ready, and whenever one
      of its static producers completes while it is ready.  Pops
      re-validate readiness against live state, so duplicates and
      entries re-blocked by a squash drop out; draining oldest-first
      under the width/FU/port budgets makes the same selection as the
      object path's in-order ROB scan without visiting blocked entries.
      As in the object path's ``_ready``, an entry that passes an
      incomplete producer on a confident prediction is marked as having
      used speculation the moment it is *evaluated* ready — even if a
      d-cache port holds it back that cycle.

    The loop then jumps straight to the next cycle at which any phase
    can act (retirable head, ready-heap entry, next wheel bucket,
    dispatchable fetch queue, or fetch reopening); skipped cycles are
    provably no-ops on every architectural and statistical quantity.
    """
    if not kernels_enabled():
        return None
    if type(core) is not OutOfOrderCore:
        return None
    if core.metrics is not None:
        return None  # per-cycle occupancy/stall telemetry: object path
    if type(trace) is not PackedTrace:
        return None
    if on_progress is not None and progress_every <= 0:
        return None
    cfg = core.config
    if cfg.width < 1 or cfg.function_units < 1 or cfg.rob_entries < 1:
        return None
    vp = core.vp
    if vp is not None:
        hooks = _build_vp(vp)
        if hooks is None:
            return None
        vp_dispatch, vp_complete, vp_finalize = hooks
        has_vp = True
    else:
        vp_dispatch = vp_complete = vp_finalize = None
        has_vp = False

    heappush = _heappush
    heappop = _heappop

    result = SimResult()
    if total is None:
        total = len(trace)
    speculate = core.speculate
    spec_vp = speculate and has_vp
    track_delay = core.track_value_delay
    track_vc = has_vp or track_delay
    hist = result.value_delay_histogram

    # -- trace columns (absolute indices over the view window) ----------
    cols = trace._cols
    pcs = cols["pcs"]
    ops = cols["ops"]
    flags = cols["flags"]
    values = cols["values"]
    tb = trace._start
    t_stop = trace._stop

    # -- machine parameters ---------------------------------------------
    width = cfg.width
    R = cfg.rob_entries
    function_units = cfg.function_units
    dcache_ports = cfg.dcache_ports
    fq_cap = 2 * width * 4
    redirect_penalty = cfg.redirect_penalty
    # The object path counts down ``remaining`` starting the cycle after
    # issue and completes at <= 0, i.e. after max(1, latency) cycles.
    po = cfg.pipe_overhead
    load_hit_total = max(1, cfg.agen_latency + cfg.dcache_hit_latency + po)
    load_miss_total = max(1, cfg.agen_latency + cfg.dcache_hit_latency
                          + cfg.dcache.miss_penalty + po)
    store_total = max(1, cfg.agen_latency + po)
    br_total = max(1, cfg.branch_latency + po)
    ialu_total = max(1, cfg.ialu_latency + po)
    LIM = max_cycles if max_cycles is not None else 1 << 62

    # -- caches / branch predictor (buckets shared, counters local) -----
    icache = core.icache
    i_lines = icache._lines
    i_sets = icache.sets
    i_ways = icache.ways
    line_shift = icache._line_shift  # == the fetch line shift in ooo.py
    ic_penalty = cfg.icache.miss_penalty
    i_acc = i_miss = 0
    dcache = core.dcache
    d_lines = dcache._lines
    d_sets = dcache.sets
    d_ways = dcache.ways
    d_shift = dcache._line_shift
    d_acc = d_miss = 0
    bp = core.branch_predictor
    gcounters = bp._counters
    gmask = bp._mask
    ghist = bp._history
    glook = gcorrect = 0

    # -- per-trace auxiliary columns (memoised across runs) -------------
    aux = _trace_aux(cols)
    lkey = ("lines", line_shift)
    lines = aux.get(lkey)
    if lines is None:
        sh = line_shift
        lines = aux[lkey] = [pc >> sh for pc in pcs]
    dkey = ("dlines", d_shift)
    dlines = aux.get(dkey)
    if dlines is None:
        sh = d_shift
        dlines = aux[dkey] = [a >> sh for a in cols["addrs"]]
    flow = aux.get("dataflow")
    if flow is None:
        srcs_t = aux.get("srcs")
        if srcs_t is None:
            srcs_t = aux["srcs"] = list(map(_SRC_LUT.__getitem__,
                                            cols["srcs"]))
        dests = cols["dests"]
        n = len(pcs)
        sdeps = [()] * n    # i -> static producer trace indices (per src)
        scons = [()] * n    # j -> sorted consumer trace indices
        writers = {}
        writers_get = writers.get
        for i in range(n):
            st = srcs_t[i]
            if st:
                dep = None
                for reg in st:
                    j = writers_get(reg)
                    if j is not None:
                        if dep is None:
                            dep = [j]
                        else:
                            dep.append(j)
                        sc = scons[j]
                        if sc:
                            sc.append(i)
                        else:
                            scons[j] = [i]
                if dep is not None:
                    sdeps[i] = dep
            if flags[i] & 0x01:
                writers[dests[i]] = i
        vpre = [0]          # prefix counts of value-producing insns
        vpre.extend(accumulate(bytes(flags).translate(_VPRE_TBL)))
        flow = aux["dataflow"] = (sdeps, scons, vpre)
    sdeps, scons, vpre = flow

    # -- fetch-event precompute -----------------------------------------
    # Fetch consumes the trace strictly in order, so from pristine
    # front-end state the icache outcome and branch-prediction verdict
    # of every instruction are trace properties, independent of
    # back-end timing (stalls and redirects change *when* an
    # instruction is fetched, never *whether* its line probe hits or
    # its counter agrees).  They are precomputed once per trace and
    # shared by every run — speculative ones included.  Event byte:
    # low two bits icache (0 none / 1 line hit / 2 line miss), high
    # bits branch verdict (4 correct / 8 mispredicted).
    bp_pristine = bp.lookups == 0 and bp.correct == 0 and ghist == 0 \
        and gcounters.count(2) == len(gcounters)
    ic_pristine = icache.accesses == 0 and icache.misses == 0 \
        and not any(i_lines)
    fpre = None
    if bp_pristine and ic_pristine:
        fkey = ("fetch", tb, t_stop, i_sets, i_ways, line_shift, gmask)
        fent = aux.get(fkey)
        if fent is None:
            fpre = bytearray(t_stop)
            fl = [[] for _ in range(i_sets)]
            fgc = [2] * len(gcounters)
            fgh = 0
            ll = -1
            for fti in range(tb, t_stop):
                ev = 0
                line = lines[fti]
                if line != ll:
                    ll = line
                    bucket = fl[line % i_sets]
                    try:
                        pos = bucket.index(line)
                    except ValueError:
                        ev = 2
                        bucket.insert(0, line)
                        if len(bucket) > i_ways:
                            bucket.pop()
                    else:
                        ev = 1
                        if pos:
                            bucket.insert(0, bucket.pop(pos))
                if ops[fti] == 3:
                    pc = pcs[fti]
                    gidx = ((pc >> 2) ^ fgh) & gmask
                    counter = fgc[gidx]
                    if flags[fti] & 0x10:
                        if counter < 3:
                            fgc[gidx] = counter + 1
                        fgh = ((fgh << 1) | 1) & gmask
                        ev += 4 if counter >= 2 else 8
                    else:
                        if counter > 0:
                            fgc[gidx] = counter - 1
                        fgh = (fgh << 1) & gmask
                        ev += 4 if counter < 2 else 8
                fpre[fti] = ev
            fent = aux[fkey] = (fpre, fgh, fgc, fl)
        fpre, fghist, fgcnt, filines = fent

    # -- passive timing memo --------------------------------------------
    # Without speculative value use the machine timing is provably
    # independent of the attached predictor: nothing ever passes an
    # incomplete producer, no reissue can fire, and the VP hooks only
    # observe.  Sweeps that run several passive schemes over one
    # trace/config (fig13, fig16) therefore share a single timing
    # solution: the first pristine run records the interleaved
    # dispatch/complete order of value instructions plus the final
    # cache/branch state, and later runs replay only the VP side.
    events = None
    timing_key = None
    if not spec_vp and bp_pristine and ic_pristine \
            and dcache.accesses == 0 and dcache.misses == 0 \
            and not any(d_lines):
        timing_key = ("timing", tb, t_stop, LIM, width, R,
                      function_units, dcache_ports, redirect_penalty,
                      load_hit_total, load_miss_total, store_total,
                      br_total, ialu_total, i_sets, i_ways, line_shift,
                      ic_penalty, d_sets, d_ways, d_shift, gmask)
        memo = aux.get(timing_key)
        if memo is not None and on_progress is None:
            mev, snap = memo
            (m_cycles, m_retired, m_branches, m_mispred, m_icm,
             m_iacc, m_imiss, m_ilines, m_dacc, m_dmiss, m_dl,
             m_ghist, m_glook, m_gcorr, m_gcnt) = snap
            for b, sb in zip(i_lines, m_ilines):
                b[:] = sb
            for b, sb in zip(d_lines, m_dl):
                b[:] = sb
            gcounters[:] = m_gcnt
            bp._history = m_ghist
            bp.lookups += m_glook
            bp.correct += m_gcorr
            icache.accesses += m_iacc
            icache.misses += m_imiss
            dcache.accesses += m_dacc
            dcache.misses += m_dmiss
            result.cycles = m_cycles
            result.retired = m_retired
            result.retired_vp = vpre[tb + m_retired] - vpre[tb]
            result.branches = m_branches
            result.branch_mispredicts = m_mispred
            result.icache_misses = m_icm
            result.dcache_accesses = dcache.accesses
            result.dcache_misses = dcache.misses
            if track_vc:
                vpc = 0
                pend = {}
                pend_pop = pend.pop
                hist_get = hist.get
                for ev in mev:
                    if ev >= 0:
                        if has_vp:
                            pend[ev] = (vpc, vp_dispatch(pcs[ev]))
                        else:
                            pend[ev] = vpc
                    elif has_vp:
                        ti = ~ev
                        dvpc, (pred, conf_bit, tag) = pend_pop(ti)
                        if track_delay:
                            delay = vpc - dvpc
                            hist[delay] = hist_get(delay, 0) + 1
                        vpc += 1
                        vp_complete(pcs[ti], pred, conf_bit, tag,
                                    values[ti])
                    else:
                        delay = vpc - pend_pop(~ev)
                        hist[delay] = hist_get(delay, 0) + 1
                        vpc += 1
                if has_vp:
                    vp_finalize()
            return result
        if memo is None:
            events = []
    recording = events is not None
    if recording:
        ev_append = events.append
    rec_tvc = track_vc or recording

    # -- SoA reorder buffer ring (capacity: R rounded up to 2^k) --------
    cap = 1
    while cap < R:
        cap <<= 1
    RM = cap - 1
    SBITS = RM.bit_length()
    e_seq = [0] * cap     # seq of the slot's current occupant
    e_state = [0] * cap   # 0 waiting / 1 executing / 2 done
    e_iseq = [0] * cap    # issue ordinal of the current execute episode
    e_pred = [None] * cap
    e_conf = [False] * cap  # confidence bit as scored (value insns only)
    e_pass = [False] * cap  # True when consumers may pass on speculation
    e_tag = [None] * cap
    e_uspec = [False] * cap
    e_vpc = [0] * cap     # vp_counter at dispatch (value-delay clock)
    e_first = [False] * cap
    e_deps = [()] * cap   # live producer seqs at dispatch (speculate only)
    head_seq = 0
    tail_seq = 0
    rob_len = 0

    maxlat = load_miss_total
    for _v in (load_hit_total, store_total, br_total, ialu_total):
        if _v > maxlat:
            maxlat = _v
    W = maxlat + 1
    wheel = [[] for _ in range(W)]  # cycle % W -> issue-ordered records
    exec_count = 0        # live executing entries (wheel occupancy gate)
    ready = []            # candidate seqs; pops re-validate
    iseq_counter = 0

    fq_head = fq_tail = tb
    pending_mp = -1       # trace index of an undispatched mispredict
    stalled_seq = -1      # seq of the dispatched mispredicted branch
    fetch_free_at = 0
    last_line = -1
    exhausted = False
    vp_counter = 0
    branches = 0
    mispredicts = 0
    icache_misses = 0
    reissues = 0
    next_progress = progress_every
    cycle = 0

    while True:
        # ---- next event cycle (skipped cycles are provably no-ops) ----
        if (ready or (rob_len and e_state[head_seq & RM] == 2)
                or (fq_head != fq_tail and rob_len < R)):
            nxt = cycle + 1
        else:
            nxt = 0
            if exec_count:
                k = cycle + 1
                stop = cycle + W
                while k < stop:
                    if wheel[k % W]:
                        nxt = k
                        break
                    k += 1
            if nxt == 0:
                if not exhausted and stalled_seq < 0 and pending_mp < 0 \
                        and fq_tail - fq_head < fq_cap:
                    c = fetch_free_at
                    nxt = c if c > cycle else cycle + 1
                else:
                    nxt = cycle + 1  # wedged config: burn cycles
            elif nxt > cycle + 1 and not exhausted and stalled_seq < 0 \
                    and pending_mp < 0 and fq_tail - fq_head < fq_cap:
                c = fetch_free_at
                if c <= cycle:
                    c = cycle + 1
                if c < nxt:
                    nxt = c
        if nxt > LIM:
            if LIM > cycle:
                cycle = LIM
            break
        cycle = nxt

        # ---- Retire (in order; retired == head_seq throughout) --------
        if rob_len and e_state[head_seq & RM] == 2:
            lim_h = head_seq + width
            while rob_len and head_seq < lim_h \
                    and e_state[head_seq & RM] == 2:
                head_seq += 1
                rob_len -= 1
            if on_progress is not None and head_seq >= next_progress:
                next_progress = head_seq + progress_every
                on_progress(head_seq, total)

        # ---- Complete (write-back) ------------------------------------
        b = wheel[cycle % W]
        if b:
            comp = None
            for rec in b:
                slot = rec & RM
                if e_state[slot] == 1 and e_iseq[slot] == rec >> SBITS:
                    if comp is None:
                        comp = [slot]
                    else:
                        comp.append(slot)
            del b[:]
            if comp is not None:
                for slot in comp:
                    # Forced DONE even if squashed by an earlier
                    # completion this cycle — the object path's
                    # completing list does the same.
                    if e_state[slot] == 1:
                        exec_count -= 1
                    e_state[slot] = 2
                    s = e_seq[slot]
                    ti = tb + s
                    # Wake: re-evaluate waiting static consumers (the
                    # lists are ascending, so stop at the dispatch
                    # frontier).  A duplicate heap entry is harmless —
                    # pops re-validate.
                    for i2 in scons[ti]:
                        p2 = i2 - tb
                        if p2 >= tail_seq:
                            break
                        p2slot = p2 & RM
                        if e_state[p2slot] == 0:
                            blocked = False
                            if spec_vp:
                                for d in e_deps[p2slot]:
                                    if d >= head_seq:
                                        ds = d & RM
                                        if e_state[ds] != 2 \
                                                and not e_pass[ds]:
                                            blocked = True
                                            break
                            else:
                                for j2 in sdeps[i2]:
                                    d = j2 - tb
                                    if d >= head_seq \
                                            and e_state[d & RM] != 2:
                                        blocked = True
                                        break
                            if not blocked:
                                heappush(ready, p2)
                    if rec_tvc:
                        flag = flags[ti]
                        if flag & 0x40 and not e_first[slot]:
                            e_first[slot] = True
                            if recording:
                                ev_append(~ti)
                            vp_counter += 1
                            if track_delay:
                                delay = vp_counter - e_vpc[slot] - 1
                                hist[delay] = hist.get(delay, 0) + 1
                            if has_vp:
                                actual = values[ti]
                                pred = e_pred[slot]
                                vp_complete(pcs[ti], pred, e_conf[slot],
                                            e_tag[slot], actual)
                                if spec_vp and e_pass[slot] \
                                        and pred != actual:
                                    # Selective reissue of speculative
                                    # consumers.  At a first completion
                                    # every dispatched static consumer
                                    # holds a registered edge (the
                                    # producer was incomplete since
                                    # dispatch), so only the transitive
                                    # edges need validating against the
                                    # consumer's live-deps snapshot.
                                    stack = None
                                    for i2 in scons[ti]:
                                        p2 = i2 - tb
                                        if p2 >= tail_seq:
                                            break
                                        if e_uspec[p2 & RM]:
                                            if stack is None:
                                                stack = [p2]
                                            else:
                                                stack.append(p2)
                                    if stack is not None:
                                        seen = set()
                                        seen_add = seen.add
                                        while stack:
                                            cs = stack.pop()
                                            if cs in seen:
                                                continue
                                            seen_add(cs)
                                            cslot = cs & RM
                                            st = e_state[cslot]
                                            if st == 0:
                                                continue
                                            if st == 1:
                                                exec_count -= 1
                                            # Re-enter waiting; the
                                            # stale issue ordinal
                                            # orphans any wheel record.
                                            e_state[cslot] = 0
                                            blocked = False
                                            for d in e_deps[cslot]:
                                                if d >= head_seq:
                                                    ds = d & RM
                                                    if e_state[ds] != 2 \
                                                            and not \
                                                            e_pass[ds]:
                                                        blocked = True
                                                        break
                                            if not blocked:
                                                heappush(ready, cs)
                                            reissues += 1
                                            cti = tb + cs
                                            for i3 in scons[cti]:
                                                p3 = i3 - tb
                                                if p3 >= tail_seq:
                                                    break
                                                if cs in e_deps[p3 & RM]:
                                                    stack.append(p3)
                    if s == stalled_seq:
                        stalled_seq = -1
                        c = cycle + redirect_penalty
                        if c > fetch_free_at:
                            fetch_free_at = c

        # ---- Issue -----------------------------------------------------
        if ready:
            fu_free = function_units
            ports_free = dcache_ports
            issued = 0
            deferred = None
            while ready and issued < width and fu_free:
                s = heappop(ready)
                slot = s & RM
                # Drop stale candidates: retired seqs, already-issued
                # duplicates; then re-validate readiness live.
                if s < head_seq or e_state[slot] != 0:
                    continue
                ti = tb + s
                if spec_vp:
                    uspec = False
                    blocked = False
                    for d in e_deps[slot]:
                        if d >= head_seq:
                            ds = d & RM
                            if e_state[ds] != 2:
                                if e_pass[ds]:
                                    uspec = True
                                else:
                                    blocked = True
                                    break
                    if blocked:
                        continue
                    if uspec:
                        # Marked on evaluation, not on issue — a ready
                        # entry held back by the d-cache ports below
                        # still consumed the speculative value.
                        e_uspec[slot] = True
                else:
                    blocked = False
                    for j in sdeps[ti]:
                        d = j - tb
                        if d >= head_seq and e_state[d & RM] != 2:
                            blocked = True
                            break
                    if blocked:
                        continue
                op = ops[ti]
                if op == 1 or op == 2:  # LOAD / STORE
                    if ports_free == 0:
                        # Ready but port-blocked: younger ready entries
                        # may still issue (the object scan continues).
                        if deferred is None:
                            deferred = [s]
                        else:
                            deferred.append(s)
                        continue
                    d_acc += 1
                    line = dlines[ti]
                    bucket = d_lines[line % d_sets]
                    try:
                        pos = bucket.index(line)
                    except ValueError:
                        d_miss += 1
                        bucket.insert(0, line)
                        if len(bucket) > d_ways:
                            bucket.pop()
                        lat = load_miss_total if op == 1 else store_total
                    else:
                        if pos:
                            bucket.insert(0, bucket.pop(pos))
                        lat = load_hit_total if op == 1 else store_total
                    ports_free -= 1
                elif op == 3:  # BRANCH
                    lat = br_total
                else:
                    lat = ialu_total
                e_state[slot] = 1
                isq = iseq_counter = iseq_counter + 1
                e_iseq[slot] = isq
                exec_count += 1
                wheel[(cycle + lat) % W].append((isq << SBITS) | slot)
                fu_free -= 1
                issued += 1
            if deferred is not None:
                for s in deferred:
                    heappush(ready, s)

        # ---- Dispatch --------------------------------------------------
        if fq_head != fq_tail and rob_len < R:
            dispatched = 0
            while fq_head != fq_tail and dispatched < width \
                    and rob_len < R:
                ti = fq_head
                fq_head += 1
                s = tail_seq
                tail_seq += 1
                rob_len += 1
                slot = s & RM
                e_seq[slot] = s
                e_state[slot] = 0
                if spec_vp:
                    e_uspec[slot] = False
                    blocked = False
                    dlist = None
                    for j in sdeps[ti]:
                        p = j - tb
                        if p >= head_seq:
                            ps = p & RM
                            if e_state[ps] != 2:
                                if dlist is None:
                                    dlist = [p]
                                else:
                                    dlist.append(p)
                                if not e_pass[ps]:
                                    blocked = True
                    e_deps[slot] = dlist if dlist is not None else ()
                else:
                    blocked = False
                    for j in sdeps[ti]:
                        p = j - tb
                        if p >= head_seq and e_state[p & RM] != 2:
                            blocked = True
                            break
                if not blocked:
                    heappush(ready, s)
                if rec_tvc:
                    flag = flags[ti]
                    if flag & 0x40:
                        e_first[slot] = False
                        if recording:
                            ev_append(ti)
                        if track_delay:
                            e_vpc[slot] = vp_counter
                        if has_vp:
                            pred, conf_bit, tag = vp_dispatch(pcs[ti])
                            e_pred[slot] = pred
                            e_conf[slot] = conf_bit
                            e_tag[slot] = tag
                            if spec_vp:
                                e_pass[slot] = conf_bit
                    elif spec_vp:
                        e_pass[slot] = False
                if ti == pending_mp:
                    stalled_seq = s
                    pending_mp = -1
                dispatched += 1

        # ---- Fetch -----------------------------------------------------
        if not exhausted and stalled_seq < 0 and pending_mp < 0 \
                and cycle >= fetch_free_at \
                and fq_tail - fq_head < fq_cap:
            fetched = 0
            if fpre is not None:
                while fetched < width:
                    if fq_tail >= t_stop:
                        exhausted = True
                        break
                    ti = fq_tail
                    fq_tail += 1
                    fetched += 1
                    ev = fpre[ti]
                    if ev:
                        ic = ev & 3
                        if ic:
                            i_acc += 1
                            if ic == 2:
                                i_miss += 1
                                icache_misses += 1
                                fetch_free_at = cycle + ic_penalty
                        if ev >= 4:
                            branches += 1
                            glook += 1
                            if ev & 8:
                                mispredicts += 1
                                pending_mp = ti
                            else:
                                gcorrect += 1
                            break  # fetch redirects at branches
                        if ic == 2:
                            break
                if exhausted and rob_len == 0 and fq_head == fq_tail:
                    break
                continue
            while fetched < width:
                if fq_tail >= t_stop:
                    exhausted = True
                    break
                ti = fq_tail
                stop_fetch = False
                line = lines[ti]
                if line != last_line:
                    last_line = line
                    i_acc += 1
                    bucket = i_lines[line % i_sets]
                    try:
                        pos = bucket.index(line)
                    except ValueError:
                        i_miss += 1
                        bucket.insert(0, line)
                        if len(bucket) > i_ways:
                            bucket.pop()
                        icache_misses += 1
                        fetch_free_at = cycle + ic_penalty
                        stop_fetch = True
                    else:
                        if pos:
                            bucket.insert(0, bucket.pop(pos))
                fq_tail += 1
                fetched += 1
                if ops[ti] == 3:  # BRANCH
                    pc = pcs[ti]
                    gidx = ((pc >> 2) ^ ghist) & gmask
                    counter = gcounters[gidx]
                    if flags[ti] & 0x10:  # taken
                        if counter < 3:
                            gcounters[gidx] = counter + 1
                        ghist = ((ghist << 1) | 1) & gmask
                        correct = counter >= 2
                    else:
                        if counter > 0:
                            gcounters[gidx] = counter - 1
                        ghist = (ghist << 1) & gmask
                        correct = counter < 2
                    glook += 1
                    if correct:
                        gcorrect += 1
                    else:
                        mispredicts += 1
                        pending_mp = ti
                    branches += 1
                    stop_fetch = True  # fetch redirects at branches
                if stop_fetch:
                    break

        # ---- Termination -----------------------------------------------
        if exhausted and rob_len == 0 and fq_head == fq_tail:
            break

    if fpre is not None:
        if fq_tail == t_stop:
            # Whole trace consumed: the precomputed final front-end
            # state applies verbatim.
            ghist = fghist
            gcounters[:] = fgcnt
            for b2, sb in zip(i_lines, filines):
                b2[:] = sb
        else:
            # Partial run (max_cycles): replay the consumed prefix of
            # the event stream to reconstruct the front-end state.
            for ti in range(tb, fq_tail):
                ev = fpre[ti]
                if ev:
                    ic = ev & 3
                    if ic:
                        line = lines[ti]
                        bucket = i_lines[line % i_sets]
                        if ic == 2:
                            bucket.insert(0, line)
                            if len(bucket) > i_ways:
                                bucket.pop()
                        else:
                            pos = bucket.index(line)
                            if pos:
                                bucket.insert(0, bucket.pop(pos))
                    if ev >= 4:
                        pc = pcs[ti]
                        gidx = ((pc >> 2) ^ ghist) & gmask
                        counter = gcounters[gidx]
                        if flags[ti] & 0x10:
                            if counter < 3:
                                gcounters[gidx] = counter + 1
                            ghist = ((ghist << 1) | 1) & gmask
                        else:
                            if counter > 0:
                                gcounters[gidx] = counter - 1
                            ghist = (ghist << 1) & gmask

    # ---- flush local accounting into the shared model state -----------
    bp._history = ghist
    bp.lookups += glook
    bp.correct += gcorrect
    icache.accesses += i_acc
    icache.misses += i_miss
    dcache.accesses += d_acc
    dcache.misses += d_miss
    retired = head_seq
    if recording:
        old = [k for k in aux if type(k) is tuple and k[0] == "timing"]
        if len(old) >= 4:
            aux.pop(old[0])
        aux[timing_key] = (events, (
            cycle, retired, branches, mispredicts, icache_misses,
            i_acc, i_miss, [list(b) for b in i_lines],
            d_acc, d_miss, [list(b) for b in d_lines],
            ghist, glook, gcorrect, list(gcounters)))
    result.cycles = cycle
    result.retired = retired
    result.retired_vp = vpre[tb + retired] - vpre[tb]
    result.branches = branches
    result.branch_mispredicts = mispredicts
    result.icache_misses = icache_misses
    result.reissues = reissues
    # Cumulative totals, exactly as the object path reports them.
    result.dcache_accesses = dcache.accesses
    result.dcache_misses = dcache.misses
    if on_progress is not None:
        on_progress(retired, total)
    if has_vp:
        vp_finalize()
    return result
