"""Pipeline-facing value-predictor adapters.

The OOO core interacts with every value-prediction scheme through one
protocol: :meth:`PipelinePredictor.on_dispatch` when a value-producing
instruction enters the window (in program order), and
:meth:`PipelinePredictor.on_complete` when it finishes execution (in
completion order — this is where the schemes differ).  Each adapter owns
its 3-bit confidence table and a :class:`PredictionStats`, so the Figure
13/16 accuracy/coverage numbers fall straight out of a simulation run.

Adapters:

* :class:`LocalPredictorAdapter` — wraps any PC-indexed local predictor
  (stride, DFCM, last-value...).  Predictions at dispatch, training at
  write-back, exactly as the paper configures its baselines ("all
  predictors make predictions at dispatch stage and are updated at
  write-back stage").
* :class:`SGVQAdapter` — gDiff over the speculative GVQ (Section 4): the
  queue is pushed at write-back, in completion order, so cache misses
  reorder it.
* :class:`HGVQAdapter` — gDiff over the hybrid queue (Section 5): slots
  allocated in dispatch order, seeded by the filler predictor, overwritten
  at write-back.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.gdiff import GDiffPredictor
from ..core.hybrid import HybridGDiffPredictor
from ..predictors.base import PredictionStats, ValuePredictor
from ..predictors.confidence import ConfidenceTable


class PipelinePredictor:
    """Base adapter: dispatch-time prediction, completion-time training."""

    name = "adapter"

    #: Optional event recorder (class-level None keeps the hot path to one
    #: attribute test); attach via :meth:`attach_events`.
    _events = None

    def __init__(self, confidence: Optional[ConfidenceTable] = None):
        self.confidence = confidence if confidence is not None else ConfidenceTable()
        self.stats = PredictionStats()

    def attach_events(self, recorder) -> None:
        """Sample completion-time prediction events into *recorder*."""
        self._events = recorder

    def _record_event(self, pc: int, predicted: Optional[int],
                      confident: bool, actual: int, correct: bool,
                      distance: Optional[int]) -> None:
        events = self._events
        if events is not None and events.want():
            events.push({
                "pc": pc,
                "predictor": self.name,
                "predicted": predicted,
                "actual": actual,
                "correct": correct,
                "confident": confident,
                "distance": distance,
            })

    def attach_metrics(self, registry) -> None:
        """Publish the adapter's accuracy/coverage as ``vp.<name>.*`` gauges.

        Registered as an export-time collector so the pipeline's dispatch
        and completion paths stay untouched.  Subclasses extend this to
        expose their internal predictor state.
        """
        stats = self.stats
        prefix = f"vp.{self.name}"

        def _collect(reg):
            reg.gauge(f"{prefix}.accuracy").set(stats.accuracy)
            reg.gauge(f"{prefix}.coverage").set(stats.coverage)
            reg.gauge(f"{prefix}.raw_accuracy").set(stats.raw_accuracy)
            reg.counter(f"{prefix}.attempts").value = stats.attempts
            reg.counter(f"{prefix}.predictions").value = stats.predictions

        registry.add_collector(_collect)

    def on_dispatch(self, pc: int) -> Tuple[Optional[int], bool, object]:
        """Returns (prediction, confident, tag to pass back at complete)."""
        raise NotImplementedError

    def on_complete(self, pc: int, tag: object, actual: int) -> bool:
        """Scores and trains; returns True if the prediction was correct."""
        raise NotImplementedError

    def _score(self, pc: int, predicted: Optional[int], confident: bool,
               actual: int) -> bool:
        correct = self.stats.record(predicted, actual, confident)
        if predicted is not None:
            self.confidence.train(pc, predicted == actual)
        return correct


class LocalPredictorAdapter(PipelinePredictor):
    """Adapter for PC-indexed local predictors (stride, DFCM, ...).

    With ``spec_update`` the predictor's state is rolled forward at each
    dispatch as if the prediction were correct (Section 3.1's speculative
    update, after [10]), so back-to-back in-flight instances of the same
    instruction chain their predictions instead of reading stale state.
    Real updates at write-back resynchronise.
    """

    def __init__(self, inner: ValuePredictor,
                 confidence: Optional[ConfidenceTable] = None,
                 spec_update: bool = False):
        super().__init__(confidence)
        self.inner = inner
        self.spec_update = spec_update
        self.name = inner.name

    def attach_metrics(self, registry) -> None:
        super().attach_metrics(registry)
        attach = getattr(self.inner, "attach_metrics", None)
        if attach is not None:
            attach(registry, prefix=f"vp.{self.name}.inner")

    def on_dispatch(self, pc: int) -> Tuple[Optional[int], bool, object]:
        predicted = self.inner.predict(pc)
        confident = predicted is not None and self.confidence.is_confident(pc)
        speculated = self.spec_update and predicted is not None
        if speculated:
            self.inner.speculative_update(pc)
        return predicted, confident, (predicted, confident, speculated)

    def on_complete(self, pc: int, tag: object, actual: int) -> bool:
        predicted, confident, speculated = tag
        correct = self._score(pc, predicted, confident, actual)
        if self._events is not None:
            self._record_event(pc, predicted, confident, actual, correct, None)
        if speculated:
            # Exact bookkeeping: the speculative-advance count always
            # equals the number of speculated instances still in flight,
            # so predictions extrapolate the committed state by exactly
            # the right amount.  Mispredictions need no special squash:
            # the committed update below re-anchors the chain, and the
            # remaining in-flight instances mispredict once each — the
            # same transient cost any value misprediction pays.
            self.inner.retire_speculation(pc)
        self.inner.update(pc, actual)
        return correct


class SGVQAdapter(PipelinePredictor):
    """gDiff with the speculative global value queue (Figure 13).

    ``on_complete`` runs in the core's completion order, so the GVQ fills
    with speculative execution-order values — including all the variation
    that cache misses introduce.  Per the paper's implementation note, the
    queue "does not squash the values in the case of a branch
    misprediction" (and in a trace-driven model there is no wrong path to
    squash anyway).
    """

    def __init__(self, order: int = 32, entries: Optional[int] = 8192,
                 confidence: Optional[ConfidenceTable] = None):
        super().__init__(confidence)
        self.gdiff = GDiffPredictor(order=order, entries=entries)
        self.name = f"gdiff-sgvq-{order}"

    def attach_metrics(self, registry) -> None:
        super().attach_metrics(registry)
        self.gdiff.attach_metrics(registry, prefix="gdiff.sgvq")

    def on_dispatch(self, pc: int) -> Tuple[Optional[int], bool, object]:
        predicted = self.gdiff.predict(pc)
        confident = predicted is not None and self.confidence.is_confident(pc)
        return predicted, confident, (predicted, confident)

    def on_complete(self, pc: int, tag: object, actual: int) -> bool:
        predicted, confident = tag
        correct = self._score(pc, predicted, confident, actual)
        self.gdiff.update(pc, actual)
        if self._events is not None:
            self._record_event(pc, predicted, confident, actual, correct,
                               self.gdiff.last_distance)
        return correct


class HGVQAdapter(PipelinePredictor):
    """gDiff with the hybrid global value queue (Figure 16).

    Dispatch allocates the instruction's queue slot (seeded with the local
    filler prediction) and makes the gDiff prediction against the
    dispatch-ordered window; completion overwrites the slot and trains
    both tables.  The slot sequence number is the per-instruction tag the
    paper describes ("a field is associated with each instruction in the
    issue queue to direct which entry in the HGVQ the result should
    update").
    """

    def __init__(self, order: int = 32, entries: Optional[int] = 8192,
                 filler: Optional[ValuePredictor] = None,
                 confidence: Optional[ConfidenceTable] = None,
                 capacity: int = 512):
        super().__init__(confidence)
        self.hybrid = HybridGDiffPredictor(
            order=order, entries=entries, filler=filler, capacity=capacity
        )
        self.name = f"gdiff-hgvq-{order}"

    def attach_metrics(self, registry) -> None:
        super().attach_metrics(registry)
        self.hybrid.attach_metrics(registry, prefix="gdiff.hgvq")

    def on_dispatch(self, pc: int) -> Tuple[Optional[int], bool, object]:
        predicted, seq = self.hybrid.dispatch(pc)
        confident = predicted is not None and self.confidence.is_confident(pc)
        return predicted, confident, (predicted, confident, seq)

    def on_complete(self, pc: int, tag: object, actual: int) -> bool:
        predicted, confident, seq = tag
        correct = self._score(pc, predicted, confident, actual)
        self.hybrid.writeback(pc, seq, actual)
        if self._events is not None:
            self._record_event(pc, predicted, confident, actual, correct,
                               self.hybrid.last_distance)
        return correct
