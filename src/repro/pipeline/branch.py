"""gshare branch predictor (the pipeline's control-flow substrate).

The paper's machine "can issue branch instructions speculatively"; its
branch predictor is not specified beyond being conventional, so we use the
standard gshare scheme: a table of 2-bit saturating counters indexed by
the XOR of global branch history and PC bits.  Mispredictions stall the
trace-driven front end until the branch resolves (the usual trace-driven
approximation — the wrong path is not in the trace), which is the
pipeline's second source of execution variation after cache misses.
"""

from __future__ import annotations

from typing import List


class GShare:
    """gshare: 2-bit counters indexed by (PC >> 2) XOR global history."""

    def __init__(self, history_bits: int = 12):
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self.entries = 1 << history_bits
        self._mask = self.entries - 1
        self._counters: List[int] = [2] * self.entries  # weakly taken
        self._history = 0
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc*."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome and advance the history.

        The caller is responsible for calling ``predict`` before ``update``
        for each dynamic branch (the index depends on the history, which
        this method shifts).
        """
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._mask

    def record(self, correct: bool) -> None:
        """Accuracy bookkeeping (kept separate from the training path)."""
        self.lookups += 1
        if correct:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 0.0
        return self.correct / self.lookups
