"""Cycle-level out-of-order pipeline model (the paper's Table 1 machine).

* :class:`ProcessorConfig` / :class:`CacheConfig` — machine parameters.
* :class:`OutOfOrderCore` — the 4-wide, 64-entry-ROB trace-driven core
  with value-prediction hooks, selective reissue and value-delay
  measurement.
* Adapters in :mod:`repro.pipeline.vp` connect any predictor to the core.
"""

from .branch import GShare
from .cache import Cache
from .config import CacheConfig, ProcessorConfig
from .ooo import OutOfOrderCore, SimResult
from .vp import (
    HGVQAdapter,
    LocalPredictorAdapter,
    PipelinePredictor,
    SGVQAdapter,
)

__all__ = [
    "ProcessorConfig",
    "CacheConfig",
    "Cache",
    "GShare",
    "OutOfOrderCore",
    "SimResult",
    "PipelinePredictor",
    "LocalPredictorAdapter",
    "SGVQAdapter",
    "HGVQAdapter",
]
