"""Processor configuration (the paper's Table 1).

The machine modelled is MIPS R10000-like: 4-way superscalar with a
64-entry reorder buffer, four fully symmetric function units, four data
cache ports, and split 64 KB 4-way L1 caches.  All Table 1 numbers are
defaults here; every experiment takes a :class:`ProcessorConfig` so the
ablation benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int
    ways: int
    line_bytes: int
    miss_penalty: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError("cache size must be divisible by ways*line")


@dataclass
class ProcessorConfig:
    """Table 1: the 4-way, 64-entry-window machine model."""

    #: Fetch/dispatch/issue/retire bandwidth ("4-way superscalar").
    width: int = 4
    #: Reorder buffer entries ("Reorder buffer: 64 entries").
    rob_entries: int = 64
    #: Fully symmetric function units.
    function_units: int = 4
    #: Data cache ports.
    dcache_ports: int = 4

    #: Instruction cache: 64 KB, 4-way, 64-byte lines, 12-cycle penalty.
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 64, 12)
    )
    #: Data cache: 64 KB, 4-way, 64-byte lines, 14-cycle penalty.
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 64, 14)
    )

    #: Integer ALU latency ("Integer ALU ops = 1 cycle").
    ialu_latency: int = 1
    #: Address generation ("Address generation: 1 cycle").
    agen_latency: int = 1
    #: Cache access on a hit ("Memory access: 2 cycles (hit)").
    dcache_hit_latency: int = 2
    #: Branch execution latency.
    branch_latency: int = 1

    #: Extra cycles on every instruction's issue-to-writeback path beyond
    #: raw execution latency, modelling the register-read and write-back
    #: stages of the paper's 7-stage pipe (fetch, dispatch, issue, reg
    #: read, execution, write back, retire).
    pipe_overhead: int = 1

    #: Cycles between a mispredicted branch resolving and useful fetch
    #: resuming (front-end redirect).
    redirect_penalty: int = 2

    #: gshare global-history bits (branch predictor substrate).
    gshare_history_bits: int = 12
    #: Branch target buffer entries.
    btb_entries: int = 2048

    def load_latency(self, hit: bool) -> int:
        """Total execution latency of a load."""
        latency = self.agen_latency + self.dcache_hit_latency
        if not hit:
            latency += self.dcache.miss_penalty
        return latency
