"""Cycle-level out-of-order core (trace driven).

Models the paper's Table 1 machine: 4-wide fetch/dispatch/issue/retire, a
64-entry reorder buffer, four symmetric function units, split 64 KB L1
caches, a gshare branch predictor, and — when a value-prediction adapter
is attached — dispatch-time prediction with write-back-time verification
and *selective reissue* of the instructions that consumed a mispredicted
value (the "aggressive machine model, similar to the great latency model"
of Section 7).

Being trace driven, the simulator executes only the correct path; a
branch misprediction therefore stalls fetch until the branch resolves
plus a redirect penalty, the standard trace-driven approximation.  All
values come from the trace — value prediction affects *timing* only
(dependents may issue before their producer completes), which is exactly
what the paper's IPC experiments measure.

The simulator also measures **value delay** (Figure 12): for each
value-producing instruction, the number of values that complete between
its dispatch and its own write-back — the quantity that limits how fresh
the global value queue can be.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..trace.isa import Instruction, OpClass
from .branch import GShare
from .cache import Cache
from .config import ProcessorConfig
from .vp import PipelinePredictor

# Entry states.
_WAITING = 0
_EXECUTING = 1
_DONE = 2

# Stall-reason names in publication order; the per-cycle accounting
# indexes a preallocated list by position instead of hashing the name.
_STALL_REASONS = (
    "retire_empty_window",
    "retire_head_executing",
    "retire_head_waiting",
    "issue_dependencies",
    "issue_dcache_ports",
    "dispatch_rob_full",
    "dispatch_fetch_starved",
    "fetch_branch_resolve",
    "fetch_redirect_or_icache",
    "fetch_queue_full",
)
(_RETIRE_EMPTY, _RETIRE_EXECUTING, _RETIRE_WAITING,
 _ISSUE_DEPS, _ISSUE_PORTS,
 _DISPATCH_ROB_FULL, _DISPATCH_STARVED,
 _FETCH_BRANCH, _FETCH_REDIRECT, _FETCH_QUEUE_FULL) = range(10)


class _Entry:
    """One reorder-buffer entry."""

    __slots__ = (
        "insn", "seq", "state", "deps", "consumers", "remaining",
        "predicted", "confident", "vp_tag", "used_speculation",
        "dispatch_cycle", "complete_cycle", "vp_counter_at_dispatch",
        "reissued", "first_completion_done",
    )

    def __init__(self, insn: Instruction, seq: int):
        self.insn = insn
        self.seq = seq
        self.state = _WAITING
        self.deps: List["_Entry"] = []
        self.consumers: List["_Entry"] = []
        self.remaining = 0
        self.predicted: Optional[int] = None
        self.confident = False
        self.vp_tag: object = None
        self.used_speculation = False
        self.dispatch_cycle = 0
        self.complete_cycle = -1
        self.vp_counter_at_dispatch = 0
        self.reissued = 0
        self.first_completion_done = False


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    cycles: int = 0
    retired: int = 0
    retired_vp: int = 0
    branch_mispredicts: int = 0
    branches: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    icache_misses: int = 0
    value_delay_histogram: Dict[int, int] = field(default_factory=dict)
    reissues: int = 0

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.retired / self.cycles

    @property
    def dcache_miss_rate(self) -> float:
        if not self.dcache_accesses:
            return 0.0
        return self.dcache_misses / self.dcache_accesses

    @property
    def branch_mispredict_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.branch_mispredicts / self.branches

    def mean_value_delay(self) -> float:
        total = sum(self.value_delay_histogram.values())
        if not total:
            return 0.0
        weighted = sum(d * n for d, n in self.value_delay_histogram.items())
        return weighted / total


class OutOfOrderCore:
    """The trace-driven OOO pipeline.

    Args:
        config: machine parameters (Table 1 defaults).
        value_predictor: optional :class:`PipelinePredictor` adapter; it is
            consulted at dispatch and trained at completion whether or not
            speculation is enabled (Figures 13/16 measure prediction
            capability with the predictor passive).
        speculate: when True, confident predictions break data
            dependencies — dependents may issue using the predicted value,
            with selective reissue on misprediction (Figure 19).
        track_value_delay: collect the Figure 12 histogram.
        metrics: optional :class:`~repro.telemetry.MetricsRegistry`; when
            attached the run publishes per-cycle ROB occupancy, stall-reason
            counters, flush/reissue counts, and the value-delay histogram
            under the ``ooo.*`` namespace (see docs/TELEMETRY.md).  The
            per-cycle accounting indexes preallocated occupancy/stall
            lists merged once at the end, so a detached core pays a
            single branch per cycle and an attached one pays O(1) list
            bumps instead of dict lookups.

    Packed traces run through the fused SoA kernel in
    :mod:`repro.pipeline.kernels` when it models the configuration
    (bit-identical results, same end state); ``REPRO_KERNELS=0`` or any
    unmodelled shape falls back to this object loop, which remains the
    reference semantics.
    """

    def __init__(
        self,
        config: Optional[ProcessorConfig] = None,
        value_predictor: Optional[PipelinePredictor] = None,
        speculate: bool = False,
        track_value_delay: bool = False,
        metrics=None,
    ):
        self.config = config if config is not None else ProcessorConfig()
        self.vp = value_predictor
        self.speculate = speculate
        self.metrics = metrics
        # The value-delay histogram is the core's headline internal-state
        # metric; an attached registry implies we want it.
        self.track_value_delay = track_value_delay or metrics is not None
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.branch_predictor = GShare(self.config.gshare_history_bits)

    def run(self, trace: Iterable[Instruction],
            max_cycles: Optional[int] = None,
            on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
            total: Optional[int] = None,
            progress_every: int = 8192) -> SimResult:
        """Simulate the full trace; returns aggregate statistics.

        Args:
            on_progress: optional ``(retired, total)`` callback invoked
                every *progress_every* retired instructions (and once at
                the end); *total* is taken from ``len(trace)`` when the
                trace supports it.
        """
        from .kernels import run_fast  # deferred: kernels imports this module
        fast = run_fast(self, trace, max_cycles, on_progress, total,
                        progress_every)
        if fast is not None:
            return fast

        cfg = self.config
        result = SimResult()
        if total is None and hasattr(trace, "__len__"):
            total = len(trace)
        track = self.metrics is not None
        # len(rob) never exceeds rob_entries (dispatch guard), so the
        # occupancy histogram is a dense list; stalls index by reason.
        occupancy: List[int] = [0] * (cfg.rob_entries + 1)
        stalls: List[int] = [0] * len(_STALL_REASONS)
        reissue_events = 0
        next_progress = progress_every
        stream = iter(trace)
        rob: deque = deque()
        fetch_queue: deque = deque()
        fetch_queue_cap = 2 * cfg.width * 4
        # Latest in-window writer of each architectural register.
        writers: Dict[int, _Entry] = {}
        in_flight: List[_Entry] = []
        # Completed value-producing instruction counter (value-delay clock).
        vp_counter = 0
        # Fetch stall state: a mispredicted branch instruction that has not
        # yet dispatched, then the ROB entry it became.  Fetch is blocked
        # while either is set; the entry's completion clears the stall.
        pending_mispredict: Optional[Instruction] = None
        stalled_branch: Optional[_Entry] = None
        fetch_free_at = 0  # cycle at which fetch may resume (icache/redirect)
        last_line = -1
        line_shift = cfg.icache.line_bytes.bit_length() - 1
        exhausted = False
        seq = 0
        cycle = 0

        while True:
            cycle += 1
            if max_cycles is not None and cycle > max_cycles:
                cycle -= 1
                break

            if track:
                occupancy[len(rob)] += 1

            # ---- Retire (in order) -------------------------------------
            retired_this_cycle = 0
            while rob and retired_this_cycle < cfg.width and \
                    rob[0].state == _DONE:
                entry = rob.popleft()
                regs = writers
                insn = entry.insn
                if insn.dest is not None and regs.get(insn.dest) is entry:
                    del regs[insn.dest]
                result.retired += 1
                if insn.produces_value:
                    result.retired_vp += 1
                retired_this_cycle += 1
            if track and retired_this_cycle == 0:
                if not rob:
                    stalls[_RETIRE_EMPTY] += 1
                elif rob[0].state == _EXECUTING:
                    stalls[_RETIRE_EXECUTING] += 1
                else:
                    stalls[_RETIRE_WAITING] += 1
            if on_progress is not None and result.retired >= next_progress:
                next_progress = result.retired + progress_every
                on_progress(result.retired, total)

            # ---- Complete (write-back) ---------------------------------
            still_flying: List[_Entry] = []
            completing: List[_Entry] = []
            for entry in in_flight:
                entry.remaining -= 1
                if entry.remaining <= 0:
                    completing.append(entry)
                else:
                    still_flying.append(entry)
            in_flight = still_flying
            for entry in completing:
                entry.state = _DONE
                entry.complete_cycle = cycle
                insn = entry.insn
                if insn.produces_value and not entry.first_completion_done:
                    entry.first_completion_done = True
                    vp_counter += 1
                    if self.track_value_delay:
                        delay = vp_counter - entry.vp_counter_at_dispatch - 1
                        hist = result.value_delay_histogram
                        hist[delay] = hist.get(delay, 0) + 1
                    if self.vp is not None:
                        self.vp.on_complete(insn.pc, entry.vp_tag, insn.value)
                        # Verify: wrong confident predictions trigger
                        # selective reissue of speculative consumers.
                        if (self.speculate and entry.confident
                                and entry.predicted != insn.value):
                            reissue_events += 1
                            result.reissues += self._selective_reissue(
                                entry, in_flight
                            )
                if insn.op is OpClass.BRANCH and entry is stalled_branch:
                    stalled_branch = None
                    fetch_free_at = max(fetch_free_at,
                                        cycle + cfg.redirect_penalty)

            # ---- Issue --------------------------------------------------
            fu_free = cfg.function_units
            ports_free = cfg.dcache_ports
            issued = 0
            dep_blocked = port_blocked = False
            if rob:
                for entry in rob:
                    if issued >= cfg.width or fu_free == 0:
                        break
                    if entry.state != _WAITING:
                        continue
                    if not self._ready(entry):
                        dep_blocked = True
                        continue
                    insn = entry.insn
                    if insn.is_mem and ports_free == 0:
                        port_blocked = True
                        continue
                    entry.state = _EXECUTING
                    entry.remaining = self._latency(insn, result)
                    in_flight.append(entry)
                    fu_free -= 1
                    issued += 1
                    if insn.is_mem:
                        ports_free -= 1
            if track and issued == 0 and rob:
                # With nothing issued (and a sane width/FU budget, so the
                # scan above saw every entry), each waiting entry either
                # had an unresolved producer or was a ready memory op held
                # back by the dcache ports — the flags folded into the
                # scan classify the cycle without a second walk.
                if cfg.width < 1 or cfg.function_units < 1:
                    # Degenerate budget: the scan broke out before
                    # classifying anything, so walk once here.
                    for entry in rob:
                        if entry.state == _WAITING:
                            port_blocked = True
                            if not self._ready(entry):
                                dep_blocked = True
                                break
                if dep_blocked:
                    stalls[_ISSUE_DEPS] += 1
                elif port_blocked:
                    stalls[_ISSUE_PORTS] += 1

            # ---- Dispatch -----------------------------------------------
            dispatched = 0
            while (fetch_queue and dispatched < cfg.width
                   and len(rob) < cfg.rob_entries):
                insn = fetch_queue.popleft()
                entry = _Entry(insn, seq)
                seq += 1
                entry.dispatch_cycle = cycle
                entry.vp_counter_at_dispatch = vp_counter
                for reg in insn.srcs:
                    producer = writers.get(reg)
                    if producer is not None and producer.state != _DONE:
                        entry.deps.append(producer)
                        producer.consumers.append(entry)
                if insn.dest is not None:
                    writers[insn.dest] = entry
                if self.vp is not None and insn.produces_value:
                    predicted, confident, tag = self.vp.on_dispatch(insn.pc)
                    entry.predicted = predicted
                    entry.confident = confident
                    entry.vp_tag = tag
                if insn is pending_mispredict:
                    stalled_branch = entry
                    pending_mispredict = None
                rob.append(entry)
                dispatched += 1
            if track and dispatched == 0:
                if fetch_queue:
                    stalls[_DISPATCH_ROB_FULL] += 1
                elif not exhausted:
                    stalls[_DISPATCH_STARVED] += 1

            # ---- Fetch --------------------------------------------------
            if track and not exhausted:
                if stalled_branch is not None or pending_mispredict is not None:
                    stalls[_FETCH_BRANCH] += 1
                elif cycle < fetch_free_at:
                    stalls[_FETCH_REDIRECT] += 1
                elif len(fetch_queue) >= fetch_queue_cap:
                    stalls[_FETCH_QUEUE_FULL] += 1
            if (not exhausted and stalled_branch is None
                    and pending_mispredict is None
                    and cycle >= fetch_free_at
                    and len(fetch_queue) < fetch_queue_cap):
                fetched = 0
                while fetched < cfg.width:
                    insn = next(stream, None)
                    if insn is None:
                        exhausted = True
                        break
                    stop_fetch = False
                    line = insn.pc >> line_shift
                    if line != last_line:
                        last_line = line
                        if not self.icache.access(insn.pc):
                            result.icache_misses += 1
                            fetch_free_at = cycle + cfg.icache.miss_penalty
                            stop_fetch = True
                    fetch_queue.append(insn)
                    fetched += 1
                    if insn.op is OpClass.BRANCH:
                        predicted = self.branch_predictor.predict(insn.pc)
                        self.branch_predictor.update(insn.pc, insn.taken)
                        correct = predicted == insn.taken
                        self.branch_predictor.record(correct)
                        result.branches += 1
                        if not correct:
                            result.branch_mispredicts += 1
                            # Fetch stalls until this branch resolves.
                            pending_mispredict = insn
                        stop_fetch = True  # fetch redirects at taken branches
                    if stop_fetch:
                        break

            # ---- Termination --------------------------------------------
            if exhausted and not rob and not fetch_queue:
                break

        result.cycles = cycle
        result.dcache_accesses = self.dcache.accesses
        result.dcache_misses = self.dcache.misses
        if on_progress is not None:
            on_progress(result.retired, total)
        if track:
            self._publish(result, occupancy, stalls, reissue_events)
        return result

    def _publish(self, result: SimResult, occupancy: List[int],
                 stalls: List[int], reissue_events: int) -> None:
        """Merge the run's local accounting into the attached registry."""
        m = self.metrics
        m.histogram("ooo.rob_occupancy").merge_counts(
            {occ: n for occ, n in enumerate(occupancy) if n})
        m.histogram("ooo.value_delay").merge_counts(
            result.value_delay_histogram)
        for reason, count in zip(_STALL_REASONS, stalls):
            if count:
                m.counter(f"ooo.stall.{reason}").inc(count)
        m.counter("ooo.cycles").inc(result.cycles)
        m.counter("ooo.retired").inc(result.retired)
        m.counter("ooo.retired_value_producing").inc(result.retired_vp)
        m.counter("ooo.branches").inc(result.branches)
        m.counter("ooo.branch_mispredicts").inc(result.branch_mispredicts)
        m.counter("ooo.icache_misses").inc(result.icache_misses)
        m.counter("ooo.dcache_accesses").inc(result.dcache_accesses)
        m.counter("ooo.dcache_misses").inc(result.dcache_misses)
        m.counter("ooo.flush_events").inc(reissue_events)
        m.counter("ooo.reissued_instructions").inc(result.reissues)
        m.gauge("ooo.ipc").set(result.ipc)
        m.gauge("ooo.mean_value_delay").set(result.mean_value_delay())

    def _ready(self, entry: _Entry) -> bool:
        """Dependency check; records speculative-value consumption."""
        used_spec = False
        for dep in entry.deps:
            if dep.state == _DONE:
                continue
            if self.speculate and dep.confident:
                used_spec = True
                continue
            return False
        if used_spec:
            entry.used_speculation = True
        return True

    def _latency(self, insn: Instruction, result: SimResult) -> int:
        cfg = self.config
        if insn.op is OpClass.LOAD:
            hit = self.dcache.access(insn.addr)
            latency = cfg.load_latency(hit)
        elif insn.op is OpClass.STORE:
            # Stores retire from the pipeline's perspective once the
            # address is generated; the write is buffered.
            self.dcache.access(insn.addr)
            latency = cfg.agen_latency
        elif insn.op is OpClass.BRANCH:
            latency = cfg.branch_latency
        else:
            latency = cfg.ialu_latency
        return latency + cfg.pipe_overhead

    def _selective_reissue(self, producer: _Entry,
                           in_flight: List[_Entry]) -> int:
        """Re-execute everything that transitively consumed a wrong value.

        Consumers that issued while *producer* was still executing used its
        (now known wrong) predicted value; they and anything that consumed
        *their* results must re-execute.  The producer itself has just
        completed, so re-issued consumers will pick up the correct value.
        """
        squashed = 0
        stack = [c for c in producer.consumers if c.used_speculation]
        seen = set()
        while stack:
            entry = stack.pop()
            if id(entry) in seen:
                continue
            seen.add(id(entry))
            if entry.state == _WAITING:
                continue
            if entry.state == _EXECUTING:
                try:
                    in_flight.remove(entry)
                except ValueError:
                    pass
            entry.state = _WAITING
            entry.remaining = 0
            entry.reissued += 1
            squashed += 1
            stack.extend(entry.consumers)
        return squashed
