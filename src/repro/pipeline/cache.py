"""Set-associative cache model with LRU replacement.

Timing-only: the cache tracks which lines are resident to classify each
access as hit or miss; data always comes from the trace.  Used for both
the I-cache (fetch stalls) and D-cache (load latency, the execution
variation that Section 4 shows disrupts the speculative GVQ, and the
"missing loads" filter of Figure 18b).
"""

from __future__ import annotations

from typing import Dict, List

from .config import CacheConfig


class Cache:
    """An LRU set-associative cache keyed by line address."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.sets = config.size_bytes // (config.ways * config.line_bytes)
        self.ways = config.ways
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set is an MRU-ordered list of line tags.
        self._lines: List[List[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access *addr*; returns True on hit.  Misses allocate the line."""
        self.accesses += 1
        line = addr >> self._line_shift
        index = line % self.sets
        bucket = self._lines[index]
        try:
            pos = bucket.index(line)
        except ValueError:
            self.misses += 1
            bucket.insert(0, line)
            if len(bucket) > self.ways:
                bucket.pop()
            return False
        if pos:
            bucket.insert(0, bucket.pop(pos))
        return True

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        line = addr >> self._line_shift
        return line in self._lines[line % self.sets]

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def clear(self) -> None:
        self._lines = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0
