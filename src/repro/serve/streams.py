"""Per-stream predictor state and the LRU stream manager.

A serve shard hosts many concurrent value streams, each with its own
predictor instance, optional confidence gate, and
:class:`~repro.predictors.base.PredictionStats`.  Two invariants drive
everything here:

* **Serve equals batch.**  A stream's PREDICT_TRAIN path performs
  *exactly* the accounting of the batch harness
  (:func:`repro.harness.runner.run_value_prediction` over packed
  columns): the fused kernels from :mod:`repro.core.kernels` when they
  model the predictor, the same tight fallback loops otherwise.  Feeding
  the same ``(pc, value)`` pairs through any number of serve frames
  yields the same ``PredictionStats`` — and the same predictor state —
  as one uninterrupted batch run (asserted by ``tests/test_serve.py``
  and ``benchmarks/bench_serve.py``).
* **Bounded residency.**  The manager is a true LRU over stream ids: a
  touch refreshes recency, inserting past ``max_streams`` evicts the
  least recently used stream through the snapshot spool
  (:mod:`repro.serve.snapshot`), and the next touch of an evicted stream
  restores it transparently — bit-identically, including across the
  evict→restore cycle.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.gdiff import GDiffPredictor
from ..core.hybrid import HybridGDiffPredictor
from ..core.kernels import run_pairs
from ..harness.runner import _gated_pairs, _profile_pairs
from ..predictors.base import PredictionStats, ValuePredictor
from ..predictors.confidence import ConfidenceTable
from ..predictors.dfcm import DFCMPredictor
from ..predictors.last_value import LastValuePredictor
from ..predictors.stride import StridePredictor
from .snapshot import (
    SnapshotError,
    discard,
    dump_stream,
    load_stream,
    snapshot_path,
)

#: Predictor specs a client can name in a frame.  Bounded tables
#: throughout — a long-lived service must not grow per-stream state
#: without bound the way the unlimited profile tables do.
SERVE_PREDICTORS: Dict[str, Callable[[], ValuePredictor]] = {
    "last-value": lambda: LastValuePredictor(entries=8192),
    "stride": lambda: StridePredictor(entries=8192),
    "dfcm": lambda: DFCMPredictor(l1_entries=8192),
    "gdiff8": lambda: GDiffPredictor(order=8, entries=8192),
    "gdiff32": lambda: GDiffPredictor(order=32, entries=8192),
    "hgvq": lambda: HybridGDiffPredictor(order=32, entries=8192),
}

#: Spec used when a creating frame names none.
DEFAULT_PREDICTOR = "gdiff32"

#: Default resident-stream bound per shard (``REPRO_SERVE_STREAMS``).
DEFAULT_MAX_STREAMS = 256


class StreamError(ValueError):
    """A per-stream request cannot be honoured (unknown predictor spec,
    spec/gating mismatch with existing stream state)."""


class StreamRecord:
    """One resident stream: predictor + gate + running stats."""

    __slots__ = ("sid", "spec", "gated", "predictor", "conf", "stats")

    def __init__(self, sid: str, spec: str, gated: bool,
                 predictor: ValuePredictor,
                 conf: Optional[ConfidenceTable],
                 stats: PredictionStats) -> None:
        self.sid = sid
        self.spec = spec
        self.gated = gated
        self.predictor = predictor
        self.conf = conf
        self.stats = stats

    # -- request bodies ---------------------------------------------------
    def probe(self, pcs) -> List[Optional[int]]:
        """Per-event predictions without mutating any state.

        The HGVQ predictor's ``predict`` allocates a queue slot (it is a
        dispatch), so probing goes through its read-only window lookup
        instead; every other predictor's ``predict`` is already pure.
        """
        predictor = self.predictor
        if isinstance(predictor, HybridGDiffPredictor):
            seq = predictor.queue.total_allocated
            return [predictor._predict_at(pc, seq) for pc in pcs]
        predict = predictor.predict
        return [predict(pc) for pc in pcs]

    def train(self, pcs, values) -> int:
        """Update-only pass (no prediction, no stats)."""
        update = self.predictor.update
        for pc, value in zip(pcs, values):
            update(pc, value)
        return len(pcs)

    def predict_train(self, pcs, values, want_values: bool = False
                      ) -> Tuple[Tuple[int, ...], Optional[List[Optional[int]]]]:
        """The batch-harness profile loop over one frame's columns.

        Returns ``(stats_delta, predictions)`` where *stats_delta* is the
        frame's contribution to the 5 ``PredictionStats`` counters and
        *predictions* is per-event output when *want_values* (the slow
        path — it forgoes the fused kernels).
        """
        stats = self.stats
        before = (stats.attempts, stats.predictions, stats.correct,
                  stats.confident, stats.confident_correct)
        predictions: Optional[List[Optional[int]]] = None
        if want_values:
            predictions = self._pairs_with_values(pcs, values)
        elif self.conf is not None:
            if not run_pairs(self.predictor, pcs, values, stats, self.conf):
                _gated_pairs(self.predictor, self.conf, pcs, values, stats)
        else:
            if not run_pairs(self.predictor, pcs, values, stats):
                _profile_pairs(self.predictor, pcs, values, stats)
        delta = (stats.attempts - before[0],
                 stats.predictions - before[1],
                 stats.correct - before[2],
                 stats.confident - before[3],
                 stats.confident_correct - before[4])
        return delta, predictions

    def _pairs_with_values(self, pcs, values) -> List[Optional[int]]:
        """Object loop mirroring the harness accounting while collecting
        each event's prediction (``_profile_pairs``/``_gated_pairs`` with
        the predictions kept)."""
        predictor = self.predictor
        stats = self.stats
        conf = self.conf
        out: List[Optional[int]] = []
        predict = predictor.predict
        update = predictor.update
        record = stats.record
        if conf is None:
            for pc, actual in zip(pcs, values):
                predicted = predict(pc)
                record(predicted, actual)
                update(pc, actual)
                out.append(predicted)
            return out
        train = conf.train
        index = conf.index
        is_conf = conf.is_confident
        state: Dict[int, bool] = {}
        for pc, actual in zip(pcs, values):
            predicted = predict(pc)
            slot = index(pc)
            confident_now = state.get(slot)
            if confident_now is None:
                confident_now = is_conf(pc)
            record(predicted, actual,
                   predicted is not None and confident_now)
            if predicted is not None:
                confident_now = train(pc, predicted == actual)
            state[slot] = confident_now
            update(pc, actual)
            out.append(predicted)
        return out

    def stats_tuple(self) -> Tuple[int, ...]:
        stats = self.stats
        return (stats.attempts, stats.predictions, stats.correct,
                stats.confident, stats.confident_correct)


def max_streams_from_env() -> int:
    raw = os.environ.get("REPRO_SERVE_STREAMS", "").strip()
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_STREAMS
    return value if value > 0 else DEFAULT_MAX_STREAMS


def spool_from_env() -> Optional[str]:
    return os.environ.get("REPRO_SERVE_SPOOL") or None


class StreamManager:
    """LRU-bounded resident streams with transparent spill/restore.

    Args:
        max_streams: resident bound; inserting past it evicts LRU
            streams through the spool.
        spool: snapshot directory; ``None`` disables persistence (an
            evicted stream restarts fresh — counted, never silent).
    """

    def __init__(self, max_streams: Optional[int] = None,
                 spool: Optional[str] = None) -> None:
        self.max_streams = max_streams or max_streams_from_env()
        self.spool = spool if spool is not None else spool_from_env()
        self._streams: "OrderedDict[str, StreamRecord]" = OrderedDict()
        #: Telemetry deltas drained per batch by the shard servant.
        self.counters: Dict[str, int] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def __len__(self) -> int:
        return len(self._streams)

    def resident(self, sid: str) -> bool:
        return sid in self._streams

    def drain_counters(self) -> Dict[str, int]:
        drained, self.counters = self.counters, {}
        drained["streams"] = len(self._streams)
        return drained

    # -- the core operation ----------------------------------------------
    def touch(self, sid: str, spec: str = "",
              gated: Optional[bool] = None) -> StreamRecord:
        """Return the stream's record, restoring or creating as needed.

        *spec* and *gated* describe what the request expects; an existing
        (resident or snapshotted) stream with a different predictor spec
        or gating raises :class:`StreamError` rather than silently
        serving divergent state.  ``gated=None`` skips the gating check
        (ops where gating is irrelevant).
        """
        record = self._streams.get(sid)
        if record is None:
            record = self._restore(sid)
        if record is not None:
            self._streams.move_to_end(sid)
            if spec and record.spec != spec:
                raise StreamError(
                    f"stream {sid!r} runs predictor {record.spec!r}, "
                    f"request names {spec!r}")
            if gated is not None and record.gated != gated:
                raise StreamError(
                    f"stream {sid!r} is {'gated' if record.gated else 'ungated'}, "
                    "request disagrees")
            return record
        return self._create(sid, spec or DEFAULT_PREDICTOR,
                            bool(gated))

    def _create(self, sid: str, spec: str, gated: bool) -> StreamRecord:
        factory = SERVE_PREDICTORS.get(spec)
        if factory is None:
            raise StreamError(
                f"unknown predictor {spec!r}; choose from "
                f"{sorted(SERVE_PREDICTORS)}")
        record = StreamRecord(sid, spec, gated, factory(),
                              ConfidenceTable() if gated else None,
                              PredictionStats())
        self._count("creates")
        self._insert(record)
        return record

    def _restore(self, sid: str) -> Optional[StreamRecord]:
        if self.spool is None:
            return None
        path = snapshot_path(self.spool, sid)
        if not path.exists():
            return None
        try:
            spec, gated, predictor, conf, stats = load_stream(path)
        except SnapshotError:
            self._count("snapshot_invalid")
            discard(path)
            return None
        record = StreamRecord(sid, spec, gated, predictor, conf, stats)
        self._count("restores")
        self._insert(record)
        return record

    def _insert(self, record: StreamRecord) -> None:
        self._streams[record.sid] = record
        while len(self._streams) > self.max_streams:
            _sid, victim = self._streams.popitem(last=False)
            self._spill(victim)
            self._count("evictions")

    def _spill(self, record: StreamRecord) -> int:
        if self.spool is None:
            self._count("dropped")
            return 0
        nbytes = dump_stream(snapshot_path(self.spool, record.sid),
                             record.spec, record.gated, record.predictor,
                             record.conf, record.stats)
        self._count("snapshot_bytes", nbytes)
        return nbytes

    # -- explicit ops -----------------------------------------------------
    def snapshot(self, sid: str) -> Tuple[bool, int]:
        """Persist *sid* to the spool, leaving it resident.

        Returns ``(existed, bytes_written)``; a stream that is neither
        resident nor snapshotted reports ``existed=False``.
        """
        record = self._streams.get(sid)
        if record is None:
            if self.spool is not None \
                    and snapshot_path(self.spool, sid).exists():
                return True, 0  # already spooled, nothing resident to add
            return False, 0
        return True, self._spill(record)

    def evict(self, sid: str) -> Tuple[bool, int]:
        """Snapshot (when spooling) and drop *sid*'s resident state."""
        record = self._streams.pop(sid, None)
        if record is None:
            return False, 0
        nbytes = self._spill(record)
        self._count("evictions")
        return True, nbytes


class PairColumns:
    """Minimal packed-trace stand-in: ``(pc, value)`` columns only.

    Quacks enough like :class:`~repro.trace.packed.PackedTrace` for
    :func:`repro.harness.runner.run_value_prediction`'s fast path, so the
    serve-vs-batch identity checks drive the *real* batch harness over
    the exact pairs a client streamed.
    """

    def __init__(self, pcs, values) -> None:
        self._pcs = pcs
        self._values = values

    def value_pairs(self):
        return self._pcs, self._values

    def __len__(self) -> int:
        return len(self._pcs)


def batch_reference_stats(spec: str, gated: bool, pcs, values
                          ) -> PredictionStats:
    """What the batch harness computes for one stream's whole pair
    sequence — the reference side of every serve-vs-batch identity
    check."""
    from ..harness.runner import run_value_prediction

    predictor = SERVE_PREDICTORS[spec]()
    stats = run_value_prediction(PairColumns(pcs, values),
                                 {spec: predictor}, gated=gated)
    return stats[spec]


def clear_spool(spool: str) -> int:
    """Delete every snapshot under *spool*; returns the count removed."""
    root = Path(spool)
    if not root.is_dir():
        return 0
    removed = 0
    for path in root.glob("*.rps"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
