"""``repro loadgen``: drive a serve daemon with N concurrent streams.

The generator models the deployment shape the serve plane is built for:
many independent value streams, each strictly ordered, all in flight at
once.  Per stream it holds **at most one frame outstanding** — that is
what guarantees a stream's events reach its shard in order (the ordering
the bit-identity contract needs) — while concurrency comes from the
stream count: with 64 streams there are up to 64 frames in flight,
which is what keeps every shard's coalescing window full.

Two pacing modes:

* **closed-loop** (default): each stream sends its next frame the moment
  the previous one is answered; a ``BUSY`` reply re-sends the same frame
  (the daemon did not apply it, so the retry is exact).  Measures
  saturated throughput.
* **open-loop**: frames are offered on a fixed events/s schedule
  regardless of replies; ``BUSY`` frames are counted and *dropped*.
  Measures behaviour under a fixed offered load, including loss.

Stream payloads come from the packed workload traces (one workload per
stream, round-robin over the paper's benchmark list, each stream reading
a different window of the pair columns), so the values exercised are the
same distributions every other figure uses.  ``verify=True`` replays
every stream through the *batch* harness afterwards and compares
``PredictionStats`` — the serve-vs-batch identity check, run over the
wire.
"""

from __future__ import annotations

import socket
import time
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .protocol import (
    OP_EVICT,
    OP_PREDICT,
    OP_PREDICT_TRAIN,
    OP_SNAPSHOT,
    OP_STATS,
    OP_TRAIN,
    FLAG_GATED,
    FLAG_WANT_VALUES,
    STATUS_BUSY,
    STATUS_OK,
    FrameReader,
    ProtocolError,
    Response,
    decode_response,
    encode_request,
)
from .streams import batch_reference_stats

#: The paper's benchmark list (mirrors ``repro.cli.BENCHMARKS``) —
#: loadgen streams cycle over these workloads.
DEFAULT_WORKLOADS = ("bzip2", "gap", "gcc", "gzip", "mcf", "parser",
                     "perl", "twolf", "vortex", "vpr")


class ServeClient:
    """Blocking request/response client for one daemon connection."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._reader = FrameReader()
        self._frames: List[bytes] = []

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float = 30.0) -> "ServeClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- raw pipelined I/O -------------------------------------------------
    def send(self, op: int, req_id: int, stream_id: str = "",
             predictor: str = "", gated: bool = False,
             want_values: bool = False, pcs=(), values=()) -> None:
        flags = (FLAG_GATED if gated else 0) \
            | (FLAG_WANT_VALUES if want_values else 0)
        self._sock.sendall(encode_request(op, req_id, stream_id, predictor,
                                          flags, pcs, values))

    def recv(self) -> Response:
        while not self._frames:
            data = self._sock.recv(1 << 18)
            if not data:
                raise ProtocolError("connection closed mid-exchange")
            self._frames.extend(self._reader.feed(data))
        return decode_response(self._frames.pop(0))

    # -- one-shot convenience ----------------------------------------------
    def request(self, op: int, stream_id: str = "", predictor: str = "",
                gated: bool = False, want_values: bool = False,
                pcs=(), values=(), req_id: int = 0,
                busy_retries: int = 100) -> Response:
        """One synchronous round trip, transparently retrying BUSY."""
        for _attempt in range(busy_retries + 1):
            self.send(op, req_id, stream_id, predictor, gated,
                      want_values, pcs, values)
            resp = self.recv()
            if resp.status != STATUS_BUSY:
                return resp
            time.sleep(0.002)
        return resp

    # -- op sugar (used by tests and the bench) ------------------------------
    def predict_train(self, stream_id: str, predictor: str, pcs, values,
                      gated: bool = False,
                      want_values: bool = False) -> Response:
        return self.request(OP_PREDICT_TRAIN, stream_id, predictor,
                            gated=gated, want_values=want_values,
                            pcs=pcs, values=values)

    def predict(self, stream_id: str, predictor: str, pcs) -> Response:
        return self.request(OP_PREDICT, stream_id, predictor, pcs=pcs)

    def train(self, stream_id: str, predictor: str, pcs, values) -> Response:
        return self.request(OP_TRAIN, stream_id, predictor,
                            pcs=pcs, values=values)

    def stats(self, stream_id: str = "") -> Response:
        return self.request(OP_STATS, stream_id)

    def snapshot(self, stream_id: str) -> Response:
        return self.request(OP_SNAPSHOT, stream_id)

    def evict(self, stream_id: str) -> Response:
        return self.request(OP_EVICT, stream_id)


# ---------------------------------------------------------------------------
# Stream payloads
# ---------------------------------------------------------------------------
def stream_pairs(streams: int, per_stream: int,
                 workloads: Sequence[str] = DEFAULT_WORKLOADS,
                 length: Optional[int] = None,
                 ) -> List[Tuple[str, array, array]]:
    """Build ``(stream_id, pcs, values)`` payloads for *streams* streams.

    Stream *i* draws from workload ``workloads[i % len]``, reading a
    window of the trace's value pairs offset by a per-stream stride so
    no two streams of one workload replay the same window aligned.
    """
    from ..trace.cache import cached_trace

    if length is None:
        length = max(20000, per_stream * 3)
    columns: Dict[str, Tuple[array, array]] = {}
    for name in set(workloads[:streams] if streams < len(workloads)
                    else workloads):
        columns[name] = cached_trace(name, length).value_pairs()
    out: List[Tuple[str, array, array]] = []
    for i in range(streams):
        name = workloads[i % len(workloads)]
        pcs, values = columns[name]
        n = len(pcs)
        if n == 0:
            raise ValueError(f"workload {name} produced no value pairs")
        start = (i * 7919) % n
        take_pcs = array("Q")
        take_values = array("Q")
        while len(take_pcs) < per_stream:
            end = min(n, start + per_stream - len(take_pcs))
            take_pcs.extend(pcs[start:end])
            take_values.extend(values[start:end])
            start = 0
        out.append((f"lg-{i:04d}-{name}", take_pcs, take_values))
    return out


def _percentiles(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(samples)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {"p50_ms": round(pct(0.50), 4), "p90_ms": round(pct(0.90), 4),
            "p99_ms": round(pct(0.99), 4)}


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------
def run_loadgen(host: str, port: int, *,
                streams: int = 64,
                events_per_stream: int = 2000,
                frame_events: int = 256,
                predictor: str = "gdiff32",
                gated: bool = False,
                mode: str = "closed",
                rate: Optional[float] = None,
                workloads: Sequence[str] = DEFAULT_WORKLOADS,
                verify: bool = False,
                timeout: float = 120.0) -> Dict[str, Any]:
    """Drive the daemon and return a QPS / latency-percentile report."""
    if mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open'")
    payloads = stream_pairs(streams, events_per_stream, workloads)
    client = ServeClient.connect(host, port, timeout=timeout)
    try:
        if mode == "closed":
            report = _closed_loop(client, payloads, predictor, gated,
                                  frame_events)
        else:
            report = _open_loop(client, payloads, predictor, gated,
                                frame_events, rate)
        report.update(mode=mode, streams=streams, predictor=predictor,
                      gated=gated)
        if verify:
            report["verify"] = _verify(client, payloads, predictor, gated,
                                       applied_all=(mode == "closed"))
        return report
    finally:
        client.close()


def _frames_of(pcs: array, values: array, frame_events: int
               ) -> List[Tuple[array, array]]:
    return [(pcs[i:i + frame_events], values[i:i + frame_events])
            for i in range(0, len(pcs), frame_events)]


def _closed_loop(client: ServeClient, payloads, predictor: str,
                 gated: bool, frame_events: int) -> Dict[str, Any]:
    frames = [_frames_of(pcs, values, frame_events)
              for _sid, pcs, values in payloads]
    cursor = [0] * len(payloads)          # next frame index per stream
    sent_at: Dict[int, float] = {}        # req_id -> send timestamp
    outstanding = 0
    rtts: List[float] = []
    busy = errors = frames_done = events_applied = 0

    def send_frame(si: int) -> None:
        nonlocal outstanding
        sid, _pcs, _values = payloads[si]
        fi = cursor[si]
        pcs, values = frames[si][fi]
        req_id = (si << 16) | (fi & 0xFFFF)
        sent_at[req_id] = time.perf_counter()
        client.send(OP_PREDICT_TRAIN, req_id, sid, predictor,
                    gated=gated, pcs=pcs, values=values)
        outstanding += 1

    start = time.perf_counter()
    for si in range(len(payloads)):
        send_frame(si)
    while outstanding:
        resp = client.recv()
        outstanding -= 1
        si = resp.req_id >> 16
        t0 = sent_at.pop(resp.req_id, None)
        if resp.status == STATUS_BUSY:
            busy += 1
            send_frame(si)  # same cursor: exact retry
            continue
        if t0 is not None:
            rtts.append((time.perf_counter() - t0) * 1000.0)
        if resp.status == STATUS_OK and resp.stats is not None:
            events_applied += resp.stats[0]
        elif resp.status != STATUS_OK:
            errors += 1
        frames_done += 1
        cursor[si] += 1
        if cursor[si] < len(frames[si]):
            send_frame(si)
    wall = time.perf_counter() - start
    report: Dict[str, Any] = {
        "events_offered": sum(len(p[1]) for p in payloads),
        "events_applied": events_applied,
        "frames": frames_done,
        "busy": busy,
        "errors": errors,
        "wall_s": round(wall, 4),
        "events_eps": round(events_applied / wall, 1) if wall else 0.0,
    }
    report.update(_percentiles(rtts))
    return report


def _open_loop(client: ServeClient, payloads, predictor: str, gated: bool,
               frame_events: int, rate: Optional[float]) -> Dict[str, Any]:
    frames: List[Tuple[int, array, array]] = []
    for si, (_sid, pcs, values) in enumerate(payloads):
        for fi, (fp, fv) in enumerate(_frames_of(pcs, values,
                                                 frame_events)):
            frames.append((((si << 16) | (fi & 0xFFFF)), fp, fv))
    # Interleave streams so the offered order exercises every shard.
    frames.sort(key=lambda item: (item[0] & 0xFFFF, item[0] >> 16))
    sent_at: Dict[int, float] = {}
    rtts: List[float] = []
    busy = errors = events_applied = answered = 0
    offered_events = 0
    client._sock.settimeout(0.0)

    def drain(block_s: float = 0.0) -> None:
        nonlocal busy, errors, events_applied, answered
        deadline = time.perf_counter() + block_s
        while True:
            try:
                resp = client.recv()
            except (BlockingIOError, socket.timeout):
                if time.perf_counter() >= deadline:
                    return
                time.sleep(0.001)
                continue
            t0 = sent_at.pop(resp.req_id, None)
            answered += 1
            if resp.status == STATUS_BUSY:
                busy += 1  # open loop: offered load is fixed, no retry
                continue
            if t0 is not None:
                rtts.append((time.perf_counter() - t0) * 1000.0)
            if resp.status == STATUS_OK and resp.stats is not None:
                events_applied += resp.stats[0]
            elif resp.status != STATUS_OK:
                errors += 1

    start = time.perf_counter()
    for i, (req_id, fp, fv) in enumerate(frames):
        if rate:
            lead = offered_events / rate
            while time.perf_counter() - start < lead:
                drain(0.001)
        sid = payloads[req_id >> 16][0]
        sent_at[req_id] = time.perf_counter()
        client._sock.settimeout(None)
        client.send(OP_PREDICT_TRAIN, req_id, sid, predictor,
                    gated=gated, pcs=fp, values=fv)
        client._sock.settimeout(0.0)
        offered_events += len(fp)
        drain(0.0)
    while answered < len(frames):
        drain(0.05)
    wall = time.perf_counter() - start
    report: Dict[str, Any] = {
        "events_offered": offered_events,
        "events_applied": events_applied,
        "frames": len(frames),
        "busy": busy,
        "errors": errors,
        "wall_s": round(wall, 4),
        "events_eps": round(events_applied / wall, 1) if wall else 0.0,
        "offered_eps": round(offered_events / wall, 1) if wall else 0.0,
    }
    report.update(_percentiles(rtts))
    return report


def _verify(client: ServeClient, payloads, predictor: str, gated: bool,
            applied_all: bool) -> Dict[str, Any]:
    """Serve-vs-batch identity over the wire: OP_STATS totals for every
    stream against a local batch-harness run of the same pairs.

    Only meaningful when every offered event was applied exactly once
    (closed loop); an open-loop run that shed BUSY frames reports
    ``checked=0``.
    """
    client._sock.settimeout(None)
    if not applied_all:
        return {"checked": 0, "matched": 0, "mismatches": []}
    mismatches: List[Dict[str, Any]] = []
    for sid, pcs, values in payloads:
        resp = client.stats(sid)
        expected = batch_reference_stats(predictor, gated, pcs, values)
        want = (expected.attempts, expected.predictions, expected.correct,
                expected.confident, expected.confident_correct)
        if resp.status != STATUS_OK or resp.stats != want:
            mismatches.append({"stream": sid,
                               "serve": list(resp.stats or ()),
                               "batch": list(want)})
    return {"checked": len(payloads),
            "matched": len(payloads) - len(mismatches),
            "mismatches": mismatches[:8]}
