"""The online prediction plane: a sharded, batched ``repro serve`` daemon.

Modules:

* :mod:`~repro.serve.protocol` — the length-prefixed binary frame
  protocol (PREDICT / TRAIN / PREDICT_TRAIN / SNAPSHOT / EVICT / STATS).
* :mod:`~repro.serve.snapshot` — CRC-framed predictor-state snapshots
  for evicted streams.
* :mod:`~repro.serve.streams` — per-stream predictor records and the
  LRU :class:`~repro.serve.streams.StreamManager`.
* :mod:`~repro.serve.shard` — the worker-side batch servant.
* :mod:`~repro.serve.engine` — the selectors event loop, shard
  dispatcher, and backpressure.
* :mod:`~repro.serve.loadgen` — the client and the ``repro loadgen``
  open/closed-loop load generator.

See docs/SERVING.md for the protocol spec and operational contract.
"""

from .engine import ServeConfig, ServeEngine, run_serve, shard_of
from .loadgen import ServeClient, run_loadgen, stream_pairs
from .protocol import (
    OP_EVICT,
    OP_PREDICT,
    OP_PREDICT_TRAIN,
    OP_SNAPSHOT,
    OP_STATS,
    OP_TRAIN,
    PROTOCOL_VERSION,
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
    ProtocolError,
)
from .streams import SERVE_PREDICTORS, StreamManager, batch_reference_stats

__all__ = [
    "OP_EVICT", "OP_PREDICT", "OP_PREDICT_TRAIN", "OP_SNAPSHOT",
    "OP_STATS", "OP_TRAIN", "PROTOCOL_VERSION", "STATUS_BUSY",
    "STATUS_ERROR", "STATUS_OK", "ProtocolError", "SERVE_PREDICTORS",
    "ServeClient", "ServeConfig", "ServeEngine", "StreamManager",
    "batch_reference_stats", "run_loadgen", "run_serve", "shard_of",
    "stream_pairs",
]
