"""The ``repro serve`` daemon: sharded, batched online prediction.

One single-threaded driver multiplexes every client connection and every
shard worker over one ``selectors`` loop.  The data path is built so the
per-event cost is amortised three times over:

* **Clients batch**: one frame carries packed u64 columns for up to
  64Ki events (:mod:`repro.serve.protocol`).
* **The driver coalesces**: frames from *all* connections destined for
  the same shard are folded into one worker dispatch, so a pipe
  round-trip serves many streams at once.  At most one batch is in
  flight per shard; everything arriving meanwhile queues and rides the
  next dispatch.
* **Workers stay warm**: shard *i* is pinned to persistent pool worker
  *i* (``WorkerPool.shard_workers``), which hosts the shard's
  :class:`~repro.serve.streams.StreamManager` for its whole life.
  Stream affinity is ``crc32(stream_id) % shards`` — stable across
  connections and daemon restarts (unlike ``hash()``, which is salted
  per process).

Overload is answered, not absorbed: a shard whose queue is past
``high_water`` frames replies ``STATUS_BUSY`` immediately (the frame is
*not* applied; the client backs off and resends), so memory stays
bounded and latency stays measurable under any offered load.

A worker crash is contained: the dead process is replaced in its slot,
the frames it held get error replies, and the shard's streams restore
from their spool snapshots on next touch (``serve.shard_crash`` counts
casualties).

``backend="inproc"`` runs every shard's manager inside the driver
process — the fallback for sandboxes that forbid ``fork``, and the
baseline the bench suite compares pool dispatch against.
"""

from __future__ import annotations

import os
import selectors
import socket
import sys
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..harness.parallel import POOL_FAILURES, get_pool
from ..telemetry import MetricsRegistry, get_logger
from . import protocol, shard as shard_mod
from .protocol import (
    OP_STATS,
    STATUS_ERROR,
    STATUS_OK,
    FrameReader,
    ProtocolError,
    Request,
)

log = get_logger("repro.serve.engine")

DEFAULT_PORT = 9477
DEFAULT_SHARDS = 4
DEFAULT_HIGH_WATER = 256
DEFAULT_BATCH_EVENTS = 32768

#: RTT samples kept for the daemon-stats latency percentiles.
_LATENCY_RING = 8192


def shard_of(stream_id: str, shards: int) -> int:
    """Stable stream→shard affinity (crc32, not the salted ``hash()``)."""
    return zlib.crc32(stream_id.encode("utf-8")) % shards


def default_spool() -> str:
    base = os.environ.get("REPRO_SERVE_SPOOL")
    if base:
        return base
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(root, "repro-serve", f"spool-{os.getpid()}")


@dataclass
class ServeConfig:
    """Tuning knobs for one daemon instance (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: Optional[int] = DEFAULT_PORT          # None = no socket listener
    stdio: bool = False                          # serve stdin/stdout frames
    shards: int = DEFAULT_SHARDS
    max_streams: int = 0                         # 0 = StreamManager default
    high_water: int = DEFAULT_HIGH_WATER         # frames queued per shard
    batch_events: int = DEFAULT_BATCH_EVENTS     # events folded per dispatch
    backend: str = "pool"                        # "pool" | "inproc"
    spool: str = field(default_factory=default_spool)


class _Conn:
    """One client connection (socket or the stdio pipe pair)."""

    __slots__ = ("cid", "sock", "rfd", "wfd", "reader", "out", "closing")

    def __init__(self, cid: int, sock: Optional[socket.socket] = None,
                 rfd: Optional[int] = None, wfd: Optional[int] = None):
        self.cid = cid
        self.sock = sock
        self.rfd = rfd
        self.wfd = wfd
        self.reader = FrameReader()
        self.out = bytearray()
        self.closing = False  # flush pending output, then close


class _Shard:
    """Driver-side view of one shard: its queue and in-flight batch."""

    __slots__ = ("index", "queue", "inflight", "busy")

    def __init__(self, index: int):
        self.index = index
        #: Waiting frames: (conn_id, Request, arrival perf_counter).
        self.queue: Deque[Tuple[int, Request, float]] = deque()
        #: Frames inside the currently dispatched batch, tag-ordered.
        self.inflight: List[Tuple[int, Request, float]] = []
        self.busy = False


class ServeEngine:
    """The daemon event loop.  ``start()`` binds, ``serve_forever()``
    runs until :meth:`stop` (or stdio EOF), ``close()`` releases
    everything except the shared worker pool itself."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._sel = selectors.DefaultSelector()
        self._listener: Optional[socket.socket] = None
        self._conns: Dict[int, _Conn] = {}
        self._next_cid = 1
        self._next_tag = 1
        self._shards = [_Shard(i) for i in range(self.config.shards)]
        self._shard_streams = [0] * self.config.shards
        self._pool = None
        self._stopping = False
        self._latencies: Deque[float] = deque(maxlen=_LATENCY_RING)
        self._qps_mark = (time.monotonic(), 0)
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "ServeEngine":
        cfg = self.config
        if cfg.shards < 1:
            raise ValueError("at least one shard is required")
        # Shard workers read their manager config from the environment
        # (the pool's setup envelope mirrors REPRO_* into workers).
        os.environ["REPRO_SERVE_SPOOL"] = cfg.spool
        if cfg.max_streams:
            os.environ["REPRO_SERVE_STREAMS"] = str(cfg.max_streams)
        os.makedirs(cfg.spool, exist_ok=True)
        if cfg.backend == "pool":
            try:
                self._pool = get_pool(self.registry)
                self._pool.shard_workers(cfg.shards, self.registry)
                for i in range(cfg.shards):
                    self._sel.register(self._pool.shard_conn(i),
                                       selectors.EVENT_READ, ("shard", i))
                    self._sel.register(self._pool.shard_sentinel(i),
                                       selectors.EVENT_READ, ("sentinel", i))
            except POOL_FAILURES as exc:
                log.warning("worker pool unavailable (%s: %s); "
                            "serving in-process", type(exc).__name__, exc)
                self.registry.counter("serve.inproc_fallback").inc()
                self._pool = None
        if cfg.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.host, cfg.port))
            listener.listen(128)
            listener.setblocking(False)
            self._listener = listener
            self.address = listener.getsockname()[:2]
            self._sel.register(listener, selectors.EVENT_READ, ("listener",))
        if cfg.stdio:
            conn = _Conn(self._next_cid, rfd=sys.stdin.fileno(),
                         wfd=sys.stdout.fileno())
            self._next_cid += 1
            self._conns[conn.cid] = conn
            self._sel.register(conn.rfd, selectors.EVENT_READ,
                               ("conn", conn.cid))
        return self

    def stop(self) -> None:
        self._stopping = True

    def close(self) -> None:
        for conn in list(self._conns.values()):
            self._drop_conn(conn)
        if self._listener is not None:
            try:
                self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        if self._pool is not None:
            for i in range(self.config.shards):
                for obj in (self._pool.shard_conn(i),
                            self._pool.shard_sentinel(i)):
                    try:
                        self._sel.unregister(obj)
                    except (KeyError, ValueError):
                        pass
            self._pool.shard_unpin()
            self._pool = None
        else:
            shard_mod.reset_shards()
        self._sel.close()

    # -- the loop ---------------------------------------------------------
    def serve_forever(self, poll_s: float = 0.2) -> None:
        try:
            while not self._stopping:
                for key, _mask in self._sel.select(poll_s):
                    self._dispatch_ready(key)
                self._pump()
                self._flush_all()
                self._tick()
                if self.config.stdio and not self._conns:
                    break  # stdio peer closed: a clean shutdown request
        finally:
            self.close()

    def _dispatch_ready(self, key) -> None:
        kind = key.data[0]
        if kind == "listener":
            self._accept()
        elif kind == "conn":
            conn = self._conns.get(key.data[1])
            if conn is not None:
                if key.events & selectors.EVENT_READ:
                    self._read_conn(conn)
        elif kind == "shard":
            self._drain_shard(key.data[1])
        elif kind == "sentinel":
            self._shard_died(key.data[1])

    # -- client side ------------------------------------------------------
    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(self._next_cid, sock=sock)
            self._next_cid += 1
            self._conns[conn.cid] = conn
            self._sel.register(sock, selectors.EVENT_READ,
                               ("conn", conn.cid))
            self.registry.counter("serve.connections").inc()
            self.registry.gauge("serve.open_connections").set(
                len(self._conns))

    def _read_conn(self, conn: _Conn) -> None:
        try:
            if conn.sock is not None:
                data = conn.sock.recv(1 << 18)
            else:
                data = os.read(conn.rfd, 1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_conn(conn)
            return
        if not data:
            self._drop_conn(conn)
            return
        try:
            frames = conn.reader.feed(data)
        except ProtocolError as exc:
            # The byte stream itself is broken (hostile length prefix):
            # one error reply, then close — resynchronising is hopeless.
            self.registry.counter("serve.protocol_error").inc()
            conn.out += protocol.encode_error(0, 0, str(exc))
            conn.closing = True
            return
        for payload in frames:
            self._on_frame(conn, payload)

    def _drop_conn(self, conn: _Conn) -> None:
        self._conns.pop(conn.cid, None)
        if conn.sock is not None:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        elif conn.rfd is not None:
            try:
                self._sel.unregister(conn.rfd)
            except (KeyError, ValueError):
                pass
        self.registry.gauge("serve.open_connections").set(len(self._conns))
        # In-flight frames from this connection complete in the workers
        # (state must advance deterministically); their replies are
        # simply dropped at delivery.

    def _on_frame(self, conn: _Conn, payload: bytes) -> None:
        self.registry.counter("serve.frames").inc()
        try:
            req = protocol.decode_request(payload)
        except ProtocolError as exc:
            self.registry.counter("serve.protocol_error").inc()
            conn.out += protocol.encode_error(0, 0, str(exc))
            return
        if req.op == OP_STATS and not req.stream_id:
            conn.out += protocol.encode_daemon_stats(
                req.op, req.req_id, self.daemon_stats())
            return
        if not req.stream_id:
            conn.out += protocol.encode_error(
                req.op, req.req_id, "a stream id is required for this op")
            return
        shard = self._shards[shard_of(req.stream_id, self.config.shards)]
        if len(shard.queue) >= self.config.high_water:
            self.registry.counter("serve.busy").inc()
            conn.out += protocol.encode_busy(req.op, req.req_id)
            return
        shard.queue.append((conn.cid, req, time.perf_counter()))

    # -- shard dispatch ---------------------------------------------------
    def _pump(self) -> None:
        for shard in self._shards:
            if shard.busy or not shard.queue:
                continue
            events = []
            frames: List[Tuple[int, Request, float]] = []
            nevents = 0
            while shard.queue and nevents < self.config.batch_events:
                cid, req, t0 = shard.queue.popleft()
                events.append((len(events), req.op, req.gated,
                               req.want_values, req.stream_id,
                               req.predictor, req.pcs, req.values))
                frames.append((cid, req, t0))
                nevents += len(req.pcs) or 1
            payload = {"shard": shard.index, "events": events}
            self.registry.histogram("serve.batch_frames").observe(
                len(events))
            self.registry.histogram("serve.batch_events").observe(nevents)
            if self._pool is None:
                self._apply_replies(shard, frames,
                                    shard_mod.apply_batch(payload))
                continue
            shard.inflight = frames
            shard.busy = True
            tag = self._next_tag
            self._next_tag += 1
            try:
                self._pool.shard_send(shard.index, shard_mod.apply_batch,
                                      tag, payload, self.registry)
            except OSError:
                self._shard_died(shard.index)

    def _drain_shard(self, index: int) -> None:
        if self._pool is None:
            return
        shard = self._shards[index]
        while True:
            try:
                if not self._pool.shard_conn(index).poll(0):
                    return
                kind, _tag, result = self._pool.shard_recv(index)
            except (EOFError, OSError):
                self._shard_died(index)
                return
            frames, shard.inflight, shard.busy = shard.inflight, [], False
            if kind == "ok":
                self._apply_replies(shard, frames, result)
            else:  # a bug escaped apply_batch; fail the batch, keep serving
                message = f"shard batch failed: {result}"
                log.warning("%s", message)
                for cid, req, _t0 in frames:
                    self._reply_error(cid, req, message)

    def _shard_died(self, index: int) -> None:
        """Replace a dead worker in place and fail what it held."""
        if self._pool is None:
            return
        shard = self._shards[index]
        self.registry.counter("serve.shard_crash").inc()
        for obj in (self._pool.shard_conn(index),
                    self._pool.shard_sentinel(index)):
            try:
                self._sel.unregister(obj)
            except (KeyError, ValueError):
                pass
        try:
            self._pool.shard_replace(index, self.registry)
        except POOL_FAILURES as exc:
            log.warning("cannot replace shard %d worker (%s); "
                        "falling back to in-process serving", index, exc)
            self._pool.shard_unpin()
            self._pool = None
            self.registry.counter("serve.inproc_fallback").inc()
        else:
            self._sel.register(self._pool.shard_conn(index),
                               selectors.EVENT_READ, ("shard", index))
            self._sel.register(self._pool.shard_sentinel(index),
                               selectors.EVENT_READ, ("sentinel", index))
        frames, shard.inflight, shard.busy = shard.inflight, [], False
        for cid, req, _t0 in frames:
            self._reply_error(
                cid, req,
                "shard worker died mid-batch; resident stream state was "
                "reset (snapshots restore on next touch)")

    # -- replies ----------------------------------------------------------
    def _apply_replies(self, shard: _Shard,
                       frames: List[Tuple[int, Request, float]],
                       result: Dict[str, Any]) -> None:
        now = time.perf_counter()
        replies = result["replies"]
        for (cid, req, t0), (tag, status, body) in zip(frames, replies):
            self._latencies.append((now - t0) * 1000.0)
            conn = self._conns.get(cid)
            if conn is None:
                continue  # client went away; state already advanced
            if status == STATUS_ERROR:
                self.registry.counter("serve.errors").inc()
                conn.out += protocol.encode_error(req.op, req.req_id, body)
                continue
            conn.out += self._encode_ok(req, body)
        self._merge_counters(shard.index, result.get("counters") or {})

    def _reply_error(self, cid: int, req: Request, message: str) -> None:
        self.registry.counter("serve.errors").inc()
        conn = self._conns.get(cid)
        if conn is not None:
            conn.out += protocol.encode_error(req.op, req.req_id, message)

    @staticmethod
    def _encode_ok(req: Request, body: Tuple) -> bytes:
        kind = body[0]
        if kind == "outcome":
            return protocol.encode_outcome(req.op, req.req_id,
                                           body[1], body[2])
        if kind == "predictions":
            return protocol.encode_predictions(req.op, req.req_id, body[1])
        if kind == "trained":
            return protocol.encode_trained(req.op, req.req_id, body[1])
        if kind == "snapshot":
            return protocol.encode_snapshot(req.op, req.req_id,
                                            body[2], body[1])
        if kind == "stats":
            return protocol.encode_stats(req.op, req.req_id,
                                         body[1], body[2])
        return protocol.encode_error(req.op, req.req_id,
                                     f"unknown reply kind {kind!r}")

    def _merge_counters(self, index: int, counters: Dict[str, int]) -> None:
        for name, amount in counters.items():
            if name == "streams":
                self._shard_streams[index] = amount
            elif amount:
                self.registry.counter(f"serve.{name}").inc(amount)
        self.registry.gauge("serve.streams").set(sum(self._shard_streams))

    # -- output flushing --------------------------------------------------
    def _flush_all(self) -> None:
        for conn in list(self._conns.values()):
            if conn.out:
                self._flush(conn)
            if conn.closing and not conn.out:
                self._drop_conn(conn)

    def _flush(self, conn: _Conn) -> None:
        try:
            if conn.sock is not None:
                while conn.out:
                    sent = conn.sock.send(conn.out)
                    if sent <= 0:
                        break
                    del conn.out[:sent]
            else:
                while conn.out:
                    written = os.write(conn.wfd, conn.out)
                    del conn.out[:written]
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_conn(conn)

    # -- observability ----------------------------------------------------
    def _tick(self) -> None:
        mark_t, mark_events = self._qps_mark
        now = time.monotonic()
        if now - mark_t < 1.0:
            return
        events = self.registry.counter("serve.events").value
        self.registry.gauge("serve.qps").set(
            round((events - mark_events) / (now - mark_t), 1))
        self._qps_mark = (now, events)

    def latency_percentiles(self) -> Dict[str, float]:
        sample = sorted(self._latencies)
        if not sample:
            return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0}
        def pct(q: float) -> float:
            return sample[min(len(sample) - 1, int(q * len(sample)))]
        return {"p50_ms": round(pct(0.50), 4),
                "p90_ms": round(pct(0.90), 4),
                "p99_ms": round(pct(0.99), 4)}

    def daemon_stats(self) -> Dict[str, Any]:
        counters = {name: c.value
                    for name, c in self.registry.counters.items()
                    if name.startswith("serve.")}
        return {
            "shards": self.config.shards,
            "backend": "pool" if self._pool is not None else "inproc",
            "streams": sum(self._shard_streams),
            "connections": len(self._conns),
            "qps": self.registry.gauge("serve.qps").value,
            "latency": self.latency_percentiles(),
            "counters": counters,
        }


def run_serve(config: ServeConfig,
              registry: Optional[MetricsRegistry] = None,
              announce=None) -> ServeEngine:
    """CLI entry: start the engine, install signal handlers, serve until
    stopped.  *announce* (fd-like ``write``) gets one ready line — the
    bound address — so scripts can wait for it before connecting."""
    import signal

    engine = ServeEngine(config, registry=registry).start()
    if announce is not None and engine.address is not None:
        announce.write(f"repro-serve listening on "
                       f"{engine.address[0]}:{engine.address[1]} "
                       f"({config.shards} shards, "
                       f"{'pool' if engine._pool else 'inproc'} backend)\n")
        announce.flush()

    def _stop(_signum, _frame):
        engine.stop()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    engine.serve_forever()
    return engine
