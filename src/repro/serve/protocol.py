"""The ``repro serve`` wire protocol: length-prefixed binary frames.

An online prediction service lives or dies by per-event overhead, so the
protocol is built around *batches*: one frame carries one operation for
one stream together with packed ``u64`` pc/value columns for up to
:data:`MAX_EVENTS` events, and one reply frame answers it.  A client
amortises its syscalls, framing, and parse cost over the whole batch —
exactly the packed-column playbook the batch harness uses, applied to a
socket.

Framing is a little-endian ``u32`` payload length followed by the
payload; payloads are capped at :data:`MAX_FRAME` bytes so a corrupt or
hostile length prefix can never balloon the daemon's memory.  Requests
and responses are versioned through :data:`PROTOCOL_VERSION`, carried in
every request header.

Request payload layout (little-endian)::

    u8   version        PROTOCOL_VERSION
    u8   op             OP_* code
    u8   flags          bit 0: confidence-gated stream
                        bit 1: reply carries per-event predicted values
    u8   pred_len       predictor-spec length (ascii, may be 0)
    u32  req_id         echoed verbatim in the reply
    u16  sid_len        stream-id length (utf-8; 0 = daemon-level op)
    u32  count          events in this frame
    ...  pred bytes, sid bytes
    u64 * count         pcs      (PREDICT / TRAIN / PREDICT_TRAIN)
    u64 * count         values   (TRAIN / PREDICT_TRAIN only)

Response payload layout::

    u8   status         STATUS_OK / STATUS_ERROR / STATUS_BUSY
    u8   op             echo of the request op
    u32  req_id         echo of the request id
    ...  status/op-specific body (see the decode_* helpers)

Every decoder validates lengths before touching bytes and raises
:class:`ProtocolError` on any malformed input — the daemon converts that
into an error reply or a clean connection close, never a crash
(``tests/test_serve_protocol.py`` fuzzes exactly this contract).
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Bump when the frame layout changes; requests carry it and the daemon
#: rejects mismatches with an error reply.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's payload (length prefix included separately).
MAX_FRAME = 16 * 1024 * 1024

#: Hard cap on events per frame (keeps worker batches bounded even when
#: a frame is otherwise well-formed).
MAX_EVENTS = 65536

# -- operations --------------------------------------------------------------
OP_PREDICT = 1        #: probe only: per-event predictions, no training
OP_TRAIN = 2          #: train only: update(pc, value) per event
OP_PREDICT_TRAIN = 3  #: the profile loop: predict, record stats, train
OP_SNAPSHOT = 4       #: persist the stream's state to the spool (stays hot)
OP_EVICT = 5          #: snapshot + drop resident state
OP_STATS = 6          #: stream PredictionStats; empty sid = daemon counters

OPS = (OP_PREDICT, OP_TRAIN, OP_PREDICT_TRAIN, OP_SNAPSHOT, OP_EVICT,
       OP_STATS)

#: Ops whose request carries a values column alongside the pcs column.
_VALUE_OPS = (OP_TRAIN, OP_PREDICT_TRAIN)

# -- status codes ------------------------------------------------------------
STATUS_OK = 0
STATUS_ERROR = 1
#: Backpressure: the stream's shard queue is past its high-water mark.
#: The frame was *not* applied; the client should back off and resend.
STATUS_BUSY = 2

# -- flags -------------------------------------------------------------------
FLAG_GATED = 0x1
FLAG_WANT_VALUES = 0x2

_LEN = struct.Struct("<I")
_REQ_HEAD = struct.Struct("<BBBBIHI")
_RESP_HEAD = struct.Struct("<BBI")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_STATS = struct.Struct("<5Q")


class ProtocolError(ValueError):
    """A frame is malformed, oversized, truncated, or of the wrong
    version."""


@dataclass
class Request:
    """One decoded request frame."""

    op: int
    req_id: int
    stream_id: str
    predictor: str
    flags: int
    pcs: array
    values: array

    @property
    def gated(self) -> bool:
        return bool(self.flags & FLAG_GATED)

    @property
    def want_values(self) -> bool:
        return bool(self.flags & FLAG_WANT_VALUES)


def _u64s(data: bytes) -> array:
    column = array("Q")
    column.frombytes(data)
    import sys

    if sys.byteorder != "little":  # pragma: no cover - BE hosts
        column.byteswap()
    return column


def _u64s_bytes(column) -> bytes:
    import sys

    if sys.byteorder != "little":  # pragma: no cover - BE hosts
        column = array("Q", column)
        column.byteswap()
    if isinstance(column, array):
        return column.tobytes()
    return array("Q", column).tobytes()


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------
def encode_request(op: int, req_id: int, stream_id: str = "",
                   predictor: str = "", flags: int = 0,
                   pcs=(), values=()) -> bytes:
    """Encode one request as a complete frame (length prefix included)."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op}")
    pred = predictor.encode("ascii")
    sid = stream_id.encode("utf-8")
    pcs_b = _u64s_bytes(pcs)
    values_b = _u64s_bytes(values) if op in _VALUE_OPS else b""
    count = len(pcs_b) // 8
    if count > MAX_EVENTS:
        raise ProtocolError(f"{count} events exceeds MAX_EVENTS")
    if op in _VALUE_OPS and len(values_b) != len(pcs_b):
        raise ProtocolError("pcs and values lengths differ")
    payload = b"".join((
        _REQ_HEAD.pack(PROTOCOL_VERSION, op, flags, len(pred),
                       req_id & 0xFFFFFFFF, len(sid), count),
        pred, sid, pcs_b, values_b,
    ))
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame payload {len(payload)} exceeds MAX_FRAME")
    return _LEN.pack(len(payload)) + payload


def decode_request(payload: bytes) -> Request:
    """Decode one request payload; raises :class:`ProtocolError` on any
    structural damage (wrong version, bad op, short columns, trailing
    garbage, oversize counts)."""
    if len(payload) < _REQ_HEAD.size:
        raise ProtocolError(
            f"request header truncated ({len(payload)} bytes)")
    version, op, flags, pred_len, req_id, sid_len, count = \
        _REQ_HEAD.unpack_from(payload)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version} unsupported "
                            f"(daemon speaks {PROTOCOL_VERSION})")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op}")
    if count > MAX_EVENTS:
        raise ProtocolError(f"{count} events exceeds MAX_EVENTS")
    offset = _REQ_HEAD.size
    columns = 2 if op in _VALUE_OPS else 1
    expected = offset + pred_len + sid_len + columns * 8 * count
    if len(payload) != expected:
        raise ProtocolError(f"request payload is {len(payload)} bytes, "
                            f"layout requires {expected}")
    pred_raw = payload[offset:offset + pred_len]
    offset += pred_len
    sid_raw = payload[offset:offset + sid_len]
    offset += sid_len
    try:
        predictor = pred_raw.decode("ascii")
        stream_id = sid_raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable identifier: {exc}") from None
    pcs = _u64s(payload[offset:offset + 8 * count])
    offset += 8 * count
    values = (_u64s(payload[offset:offset + 8 * count])
              if op in _VALUE_OPS else array("Q"))
    return Request(op=op, req_id=req_id, stream_id=stream_id,
                   predictor=predictor, flags=flags, pcs=pcs, values=values)


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------
def _frame(payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame payload {len(payload)} exceeds MAX_FRAME")
    return _LEN.pack(len(payload)) + payload


def _bitmap(present: List[bool]) -> bytes:
    out = bytearray((len(present) + 7) // 8)
    for i, bit in enumerate(present):
        if bit:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def _unbitmap(data: bytes, count: int) -> List[bool]:
    return [bool(data[i >> 3] >> (i & 7) & 1) for i in range(count)]


def encode_error(op: int, req_id: int, message: str) -> bytes:
    body = message.encode("utf-8")[:4096]
    return _frame(_RESP_HEAD.pack(STATUS_ERROR, op & 0xFF,
                                  req_id & 0xFFFFFFFF)
                  + _U16.pack(len(body)) + body)


def encode_busy(op: int, req_id: int) -> bytes:
    return _frame(_RESP_HEAD.pack(STATUS_BUSY, op & 0xFF,
                                  req_id & 0xFFFFFFFF))


def encode_predictions(op: int, req_id: int,
                       values: List[Optional[int]]) -> bytes:
    """OK reply carrying per-event predictions (``None`` = no prediction)."""
    present = [v is not None for v in values]
    column = array("Q", [0 if v is None else v for v in values])
    return _frame(_RESP_HEAD.pack(STATUS_OK, op, req_id & 0xFFFFFFFF)
                  + _U32.pack(len(values)) + _bitmap(present)
                  + _u64s_bytes(column))


def encode_outcome(op: int, req_id: int, stats_delta: Tuple[int, ...],
                   values: Optional[List[Optional[int]]] = None) -> bytes:
    """OK reply for PREDICT_TRAIN: the frame's 5-counter stats delta,
    optionally followed by the per-event predictions."""
    body = _RESP_HEAD.pack(STATUS_OK, op, req_id & 0xFFFFFFFF)
    body += bytes([1 if values is not None else 0])
    body += _STATS.pack(*stats_delta)
    if values is not None:
        present = [v is not None for v in values]
        column = array("Q", [0 if v is None else v for v in values])
        body += (_U32.pack(len(values)) + _bitmap(present)
                 + _u64s_bytes(column))
    return _frame(body)


def encode_trained(op: int, req_id: int, count: int) -> bytes:
    return _frame(_RESP_HEAD.pack(STATUS_OK, op, req_id & 0xFFFFFFFF)
                  + _U32.pack(count))


def encode_snapshot(op: int, req_id: int, nbytes: int,
                    existed: bool = True) -> bytes:
    return _frame(_RESP_HEAD.pack(STATUS_OK, op, req_id & 0xFFFFFFFF)
                  + bytes([1 if existed else 0]) + _U64.pack(nbytes))


def encode_stats(op: int, req_id: int, resident: bool,
                 stats: Tuple[int, ...]) -> bytes:
    return _frame(_RESP_HEAD.pack(STATUS_OK, op, req_id & 0xFFFFFFFF)
                  + bytes([1 if resident else 0]) + _STATS.pack(*stats))


def encode_daemon_stats(op: int, req_id: int, payload: Dict) -> bytes:
    import json

    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _frame(_RESP_HEAD.pack(STATUS_OK, op, req_id & 0xFFFFFFFF)
                  + _U32.pack(len(body)) + body)


@dataclass
class Response:
    """One decoded response frame (client side)."""

    status: int
    op: int
    req_id: int
    #: OP_PREDICT / want-values PREDICT_TRAIN: per-event predictions.
    values: Optional[List[Optional[int]]] = None
    #: PREDICT_TRAIN: (attempts, predictions, correct, confident,
    #: confident_correct) delta for this frame; OP_STATS: the totals.
    stats: Optional[Tuple[int, ...]] = None
    #: OP_TRAIN: events trained.
    count: Optional[int] = None
    #: OP_SNAPSHOT / OP_EVICT: snapshot bytes written.
    nbytes: Optional[int] = None
    #: OP_STATS / OP_EVICT: stream residency before the op.
    resident: Optional[bool] = None
    #: Daemon-level OP_STATS: decoded JSON counters.
    daemon: Optional[Dict] = None
    #: STATUS_ERROR: the message.
    error: Optional[str] = None


def _need(payload: bytes, offset: int, nbytes: int, what: str) -> int:
    if len(payload) < offset + nbytes:
        raise ProtocolError(f"response truncated in {what}")
    return offset + nbytes


def _decode_values(payload: bytes, offset: int
                   ) -> Tuple[List[Optional[int]], int]:
    _need(payload, offset, _U32.size, "value count")
    (count,) = _U32.unpack_from(payload, offset)
    if count > MAX_EVENTS:
        raise ProtocolError(f"{count} events exceeds MAX_EVENTS")
    offset += _U32.size
    bitmap_len = (count + 7) // 8
    _need(payload, offset, bitmap_len + 8 * count, "value columns")
    present = _unbitmap(payload[offset:offset + bitmap_len], count)
    offset += bitmap_len
    column = _u64s(payload[offset:offset + 8 * count])
    offset += 8 * count
    return [column[i] if present[i] else None for i in range(count)], offset


def decode_response(payload: bytes) -> Response:
    """Decode one response payload (client side)."""
    if len(payload) < _RESP_HEAD.size:
        raise ProtocolError(
            f"response header truncated ({len(payload)} bytes)")
    status, op, req_id = _RESP_HEAD.unpack_from(payload)
    offset = _RESP_HEAD.size
    resp = Response(status=status, op=op, req_id=req_id)
    if status == STATUS_BUSY:
        return resp
    if status == STATUS_ERROR:
        offset = _need(payload, offset, _U16.size, "error length") - _U16.size
        (msg_len,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        _need(payload, offset, msg_len, "error message")
        resp.error = payload[offset:offset + msg_len].decode(
            "utf-8", "replace")
        return resp
    if status != STATUS_OK:
        raise ProtocolError(f"unknown status {status}")
    if op == OP_PREDICT:
        resp.values, offset = _decode_values(payload, offset)
    elif op == OP_PREDICT_TRAIN:
        _need(payload, offset, 1 + _STATS.size, "outcome body")
        has_values = payload[offset]
        offset += 1
        resp.stats = _STATS.unpack_from(payload, offset)
        offset += _STATS.size
        if has_values:
            resp.values, offset = _decode_values(payload, offset)
    elif op == OP_TRAIN:
        _need(payload, offset, _U32.size, "trained count")
        (resp.count,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
    elif op in (OP_SNAPSHOT, OP_EVICT):
        _need(payload, offset, 1 + _U64.size, "snapshot body")
        resp.resident = bool(payload[offset])
        (resp.nbytes,) = _U64.unpack_from(payload, offset + 1)
        offset += 1 + _U64.size
    elif op == OP_STATS:
        _need(payload, offset, 1, "stats body")
        first = payload[offset]
        # Stream stats lead with a residency byte (0/1); daemon stats
        # lead with a u32 JSON length, whose low byte is >= 2 for any
        # real counter document.  Disambiguate by trying the stream
        # shape first.
        if len(payload) == offset + 1 + _STATS.size and first in (0, 1):
            resp.resident = bool(first)
            resp.stats = _STATS.unpack_from(payload, offset + 1)
            offset += 1 + _STATS.size
        else:
            import json

            _need(payload, offset, _U32.size, "stats JSON length")
            (body_len,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            _need(payload, offset, body_len, "stats JSON")
            try:
                resp.daemon = json.loads(
                    payload[offset:offset + body_len].decode("utf-8"))
            except ValueError as exc:
                raise ProtocolError(f"bad stats JSON: {exc}") from None
            offset += body_len
    else:
        raise ProtocolError(f"unknown response op {op}")
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing bytes in response")
    return resp


# ---------------------------------------------------------------------------
# Stream framing
# ---------------------------------------------------------------------------
class FrameReader:
    """Incremental length-prefixed frame parser over a byte stream.

    Feed it whatever ``recv`` returned; it yields complete payloads and
    raises :class:`ProtocolError` the moment a length prefix is
    impossible, so the connection can be closed before a hostile frame
    allocates anything.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buf.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds MAX_FRAME")
            if len(self._buf) < _LEN.size + length:
                return frames
            frames.append(bytes(self._buf[_LEN.size:_LEN.size + length]))
            del self._buf[:_LEN.size + length]

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buf)


def read_frame(fh) -> Optional[bytes]:
    """Blocking read of one frame payload from a binary file object.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a torn prefix or truncated payload.
    """
    prefix = fh.read(_LEN.size)
    if not prefix:
        return None
    if len(prefix) < _LEN.size:
        raise ProtocolError("torn frame length prefix")
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    payload = fh.read(length)
    if len(payload) < length:
        raise ProtocolError("truncated frame payload")
    return payload
