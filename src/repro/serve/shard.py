"""The worker-side shard servant.

One serve shard = one persistent pool worker hosting a
:class:`~repro.serve.streams.StreamManager`.  The driver pins shard *i*
to pool worker *i* and routes every frame for a stream to
``crc32(stream_id) % n_shards``, so a stream's predictor state lives on
exactly one warm worker and is touched strictly in arrival order.

:func:`apply_batch` is the function the driver ships through
``WorkerPool.shard_send``: it applies a whole coalesced batch of frames
(possibly from many connections and many streams) in one pipe
round-trip and returns per-frame replies plus the manager's telemetry
deltas.  Managers are keyed by shard index in a module global — worker
processes are single-threaded, and the in-process fallback backend can
host several shards' managers side by side the same way.

Per-frame errors (unknown predictor spec, spec mismatch, a predictor
raising) are *data*, not crashes: they come back as error replies while
the rest of the batch completes, so one bad frame can never wedge a
shard.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .protocol import (
    OP_EVICT,
    OP_PREDICT,
    OP_PREDICT_TRAIN,
    OP_SNAPSHOT,
    OP_STATS,
    OP_TRAIN,
    STATUS_ERROR,
    STATUS_OK,
)
from .streams import StreamError, StreamManager

#: ``{shard index: manager}`` — survives between batches on a persistent
#: worker, which is the whole point: stream state stays warm.
_MANAGERS: Dict[int, StreamManager] = {}


def _manager(shard: int) -> StreamManager:
    manager = _MANAGERS.get(shard)
    if manager is None:
        manager = _MANAGERS[shard] = StreamManager()
    return manager


def reset_shards() -> None:
    """Drop every resident manager (tests / in-proc engine teardown)."""
    _MANAGERS.clear()


def apply_batch(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Apply one coalesced batch of frames to one shard's streams.

    *payload* is ``{"shard": int, "events": [(tag, op, flags_gated,
    flags_want_values, stream_id, predictor_spec, pcs, values), ...]}``
    with ``pcs``/``values`` as packed ``array('Q')`` columns.

    Returns ``{"replies": [(tag, status, body)], "counters": {...}}``
    where *body* is the op-specific tuple the engine encodes into the
    wire reply, or the error message string when ``status`` is
    :data:`~repro.serve.protocol.STATUS_ERROR`.
    """
    manager = _manager(payload["shard"])
    replies: List[Tuple[int, int, Any]] = []
    for event in payload["events"]:
        tag = event[0]
        try:
            replies.append((tag, STATUS_OK, _apply_event(manager, event)))
        except StreamError as exc:
            manager._count("stream_errors")
            replies.append((tag, STATUS_ERROR, str(exc)))
        except Exception as exc:  # a predictor bug must not kill the shard
            manager._count("stream_errors")
            replies.append(
                (tag, STATUS_ERROR, f"{type(exc).__name__}: {exc}"))
    return {"replies": replies, "counters": manager.drain_counters()}


def _apply_event(manager: StreamManager, event: Tuple) -> Tuple:
    _tag, op, gated, want_values, sid, spec, pcs, values = event
    if op == OP_PREDICT_TRAIN:
        record = manager.touch(sid, spec, gated)
        delta, predictions = record.predict_train(pcs, values,
                                                  want_values)
        manager._count("events", len(pcs))
        return ("outcome", delta, predictions)
    if op == OP_PREDICT:
        record = manager.touch(sid, spec, None)
        return ("predictions", record.probe(pcs))
    if op == OP_TRAIN:
        record = manager.touch(sid, spec, None)
        manager._count("events", len(pcs))
        return ("trained", record.train(pcs, values))
    if op == OP_SNAPSHOT:
        return ("snapshot",) + manager.snapshot(sid)
    if op == OP_EVICT:
        return ("snapshot",) + manager.evict(sid)
    if op == OP_STATS:
        # A stats probe never *creates* a stream: resident state answers
        # directly, a spooled snapshot restores (it is about to be read
        # anyway), anything else reports absent with zeroed counters.
        if manager.resident(sid):
            return ("stats", True, manager.touch(sid).stats_tuple())
        record = manager._restore(sid)
        if record is None:
            return ("stats", False, (0, 0, 0, 0, 0))
        return ("stats", True, record.stats_tuple())
    raise StreamError(f"unsupported op {op}")
