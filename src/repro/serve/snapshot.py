"""Predictor-state snapshots for evicted streams.

The LRU stream manager bounds resident predictor state; an evicted
stream's predictor must come back *bit-identical* on its next touch so a
serve run equals one uninterrupted batch run (the acceptance criterion
``tests/test_serve.py`` asserts across an evict→restore cycle).

Snapshots reuse the binary-io discipline of the packed trace format
(:mod:`repro.trace.io`): a magic/version header, an explicit body
length, and a CRC-32 over the body, so corruption or truncation is
detected *before* any state is handed to a shard — a damaged snapshot
raises :class:`SnapshotError` and the stream restarts fresh rather than
serving from torn state.  The body is the pickled
``(predictor_spec, gated, predictor, confidence, stats)`` tuple: the
flat-array predictors (ring-buffer queues, ``array('Q')`` tables)
pickle to a handful of contiguous buffers, which is what makes eviction
cheap enough to run inline on the serve path.

Writes are atomic (tempfile + rename), matching the trace cache: a
concurrent snapshot of the same stream can never tear the file.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

SNAPSHOT_MAGIC = b"RPSNAP\x00\x00"
SNAPSHOT_VERSION = 1
SNAPSHOT_SUFFIX = ".rps"

_HEADER = struct.Struct("<8sHHLQ")


class SnapshotError(ValueError):
    """A snapshot file is corrupt, truncated, or of the wrong version."""


def snapshot_path(root: Union[str, Path], stream_id: str) -> Path:
    """Spool location for one stream's snapshot.

    The filename is a digest of the stream id — ids are arbitrary
    client-supplied strings and must never reach the filesystem as path
    components.
    """
    digest = hashlib.sha256(stream_id.encode("utf-8")).hexdigest()[:24]
    return Path(root) / f"{digest}{SNAPSHOT_SUFFIX}"


def dump_stream(path: Union[str, Path], predictor_spec: str, gated: bool,
                predictor, confidence, stats) -> int:
    """Atomically write one stream's state; returns bytes written."""
    body = pickle.dumps(
        (predictor_spec, bool(gated), predictor, confidence, stats),
        protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0,
                          zlib.crc32(body) & 0xFFFFFFFF, len(body))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            fh.write(body)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(header) + len(body)


def load_stream(path: Union[str, Path]
                ) -> Tuple[str, bool, object, Optional[object], object]:
    """Load and validate one stream snapshot.

    Returns ``(predictor_spec, gated, predictor, confidence, stats)``;
    raises :class:`SnapshotError` on any structural damage.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"{path}: unreadable ({exc})") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError(f"{path}: truncated header "
                            f"({len(raw)} bytes)")
    magic, version, _flags, crc, body_len = _HEADER.unpack_from(raw)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path}: not a stream snapshot")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"{path}: snapshot version {version} "
                            f"unsupported (expected {SNAPSHOT_VERSION})")
    body = raw[_HEADER.size:]
    if len(body) != body_len:
        raise SnapshotError(f"{path}: body is {len(body)} bytes, header "
                            f"promised {body_len}")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise SnapshotError(f"{path}: body CRC mismatch")
    try:
        spec, gated, predictor, confidence, stats = pickle.loads(body)
    except Exception as exc:
        raise SnapshotError(f"{path}: undecodable body ({exc})") from exc
    return spec, bool(gated), predictor, confidence, stats


def discard(path: Union[str, Path]) -> None:
    """Best-effort removal of a (consumed or damaged) snapshot."""
    try:
        Path(path).unlink()
    except OSError:
        pass
