"""Hierarchical spans: where wall-clock goes, across process boundaries.

A *span* is one timed region of a run — a CLI command, an experiment body,
a campaign cell — with identity (``trace_id``/``span_id``/``parent_id``),
wall and CPU time, and the pid that executed it.  Spans layer on the
existing phase-timer API: enabling a :class:`SpanTracker` on a
:class:`~repro.telemetry.metrics.MetricsRegistry` makes every
``registry.timer(...)`` block record a span in addition to its
:class:`~repro.telemetry.metrics.PhaseTiming`, so instrumented code does
not change at all.  Phases aggregate ("total wall in ``predict``");
spans individuate ("this one ``predict`` call, in worker 1234, under
that campaign cell").

Cross-process story: a driver captures :meth:`SpanTracker.context` —
``(trace_id, parent span_id)`` — and ships it to pool workers, which
build their own tracker from it.  Span start times are *absolute* wall
clock (``time.time_ns()``), so spans recorded by separate processes on
one machine land on one timeline; the driver's
:class:`~repro.telemetry.manifest.RunManifest` records the epoch
(``clock_epoch_ns``) every exported timestamp is anchored to.  Worker
span lists ride back to the driver inside the registry snapshot and fold
in via ``MetricsRegistry.merge``.

The exporter writes the Chrome trace-event format (``traceEvents`` with
complete ``"X"`` events, one ``pid`` per worker process), viewable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional

#: Snapshot schema version for span lists shipped between processes.
SPAN_SCHEMA_VERSION = 1


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace identity."""
    return uuid.uuid4().hex[:16]


class Span:
    """One finished (or in-flight) timed region."""

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "dur_ns",
                 "cpu_ns", "pid", "args", "_perf0", "_cpu0")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str],
                 pid: int):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = pid
        self.start_ns = time.time_ns()
        self.dur_ns = 0
        self.cpu_ns = 0
        self.args: Optional[Dict[str, Any]] = None
        self._perf0 = time.perf_counter_ns()
        self._cpu0 = time.process_time_ns()

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "cpu_ns": self.cpu_ns,
        }
        if self.args:
            doc["args"] = self.args
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls.__new__(cls)
        span.name = data["name"]
        span.span_id = data["span_id"]
        span.parent_id = data.get("parent_id")
        span.pid = data.get("pid", 0)
        span.start_ns = data.get("start_ns", 0)
        span.dur_ns = data.get("dur_ns", 0)
        span.cpu_ns = data.get("cpu_ns", 0)
        span.args = data.get("args")
        span._perf0 = 0
        span._cpu0 = 0
        return span


class SpanTracker:
    """Records a tree (or forest) of spans for one process's share of a run.

    Span ids are ``<token>.<n>`` where *token* is a per-tracker random
    prefix — ids stay unique when a driver and an in-process serial
    "worker" both record under the same pid, and across genuinely
    separate worker processes.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None,
                 pid: Optional[int] = None):
        self.trace_id = trace_id or new_trace_id()
        #: Parent for root-level spans: the driver-side span this
        #: process's work nests under (None for the driver itself).
        self.root_parent_id = parent_id
        self.pid = os.getpid() if pid is None else pid
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._token = uuid.uuid4().hex[:8]
        self._next = 0

    # -- recording --------------------------------------------------------
    def begin(self, name: str) -> Span:
        """Open a span under the current one (or the root parent)."""
        self._next += 1
        parent = (self._stack[-1].span_id if self._stack
                  else self.root_parent_id)
        span = Span(name, f"{self._token}.{self._next}", parent, self.pid)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close *span* (and anything left open beneath it) and keep it."""
        span.dur_ns = time.perf_counter_ns() - span._perf0
        span.cpu_ns = time.process_time_ns() - span._cpu0
        while self._stack:
            if self._stack.pop() is span:
                break
        self.spans.append(span)
        return span

    class _SpanCtx:
        __slots__ = ("_tracker", "_name", "span")

        def __init__(self, tracker: "SpanTracker", name: str):
            self._tracker = tracker
            self._name = name
            self.span: Optional[Span] = None

        def __enter__(self) -> Span:
            self.span = self._tracker.begin(self._name)
            return self.span

        def __exit__(self, exc_type, exc, tb) -> None:
            self._tracker.end(self.span)

    def span(self, name: str) -> "SpanTracker._SpanCtx":
        """``with tracker.span("cell"): ...`` — begin/end as a context."""
        return self._SpanCtx(self, name)

    def current_id(self) -> Optional[str]:
        """The open span new children would nest under."""
        return self._stack[-1].span_id if self._stack else self.root_parent_id

    # -- cross-process plumbing -------------------------------------------
    def context(self) -> Dict[str, Any]:
        """The picklable context a worker rebuilds its tracker from."""
        return {"trace_id": self.trace_id, "parent_id": self.current_id()}

    @classmethod
    def from_context(cls, ctx: Optional[Dict[str, Any]]) -> "SpanTracker":
        if not ctx:
            return cls()
        return cls(trace_id=ctx.get("trace_id"),
                   parent_id=ctx.get("parent_id"))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (finished spans only — in-flight spans
        belong to the process that will finish them)."""
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "spans": [span.as_dict() for span in self.spans],
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a shipped snapshot's spans into this tracker."""
        for item in data.get("spans", []):
            self.spans.append(Span.from_dict(item))

    def merge(self, other: "SpanTracker") -> None:
        self.spans.extend(other.spans)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def chrome_trace_events(spans: Iterable[Span],
                        epoch_ns: Optional[int] = None,
                        driver_pid: Optional[int] = None,
                        trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Render *spans* as a Chrome trace-event document.

    Each span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur`` relative to *epoch_ns* (default: the
    earliest span start, so a trace always begins near t=0).  Every
    distinct pid also gets a ``process_name`` metadata event, labelled
    ``driver`` or ``worker`` relative to *driver_pid*.
    """
    spans = list(spans)
    if epoch_ns is None:
        epoch_ns = min((s.start_ns for s in spans), default=0)
    events: List[Dict[str, Any]] = []
    pids = sorted({s.pid for s in spans})
    for pid in pids:
        role = "driver" if driver_pid is None or pid == driver_pid \
            else "worker"
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{role} (pid {pid})"},
        })
    for span in spans:
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "cpu_ms": round(span.cpu_ns / 1e6, 3),
        }
        if span.args:
            args.update(span.args)
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start_ns - epoch_ns) / 1000.0,
            "dur": span.dur_ns / 1000.0,
            "pid": span.pid,
            "tid": 0,
            "args": args,
        })
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    meta: Dict[str, Any] = {"clock_epoch_ns": epoch_ns}
    if trace_id:
        meta["trace_id"] = trace_id
    doc["metadata"] = meta
    return doc


def write_chrome_trace(path: str, spans: Iterable[Span],
                       epoch_ns: Optional[int] = None,
                       driver_pid: Optional[int] = None,
                       trace_id: Optional[str] = None,
                       stream=None) -> int:
    """Write the Chrome trace document; returns the span count.

    ``path == "-"`` writes to *stream* (default stdout).
    """
    spans = list(spans)
    doc = chrome_trace_events(spans, epoch_ns=epoch_ns,
                              driver_pid=driver_pid, trace_id=trace_id)
    text = json.dumps(doc, indent=1) + "\n"
    if path == "-":
        if stream is None:
            import sys
            stream = sys.stdout
        stream.write(text)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(spans)
