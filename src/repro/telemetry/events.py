"""Sampled event tracing: a bounded ring buffer of structured events.

Per-prediction events are far too numerous to keep unconditionally, so the
recorder samples: each offered event is kept with probability
``sample_rate`` drawn from a private seeded RNG, which makes any given
(seed, stream) pair fully deterministic — two runs over the same trace
record exactly the same events.  The buffer is a fixed-capacity ring, so a
long run keeps the *most recent* ``capacity`` sampled events.

Events are plain dicts (the recorder imposes no schema beyond JSON
serialisability); the prediction-event fields emitted by the harness are
documented in ``docs/TELEMETRY.md``.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, Iterator, List, Optional


class EventRecorder:
    """Bounded, sampling recorder of structured events.

    Args:
        capacity: ring-buffer size; older sampled events are overwritten.
        sample_rate: probability in [0, 1] that an offered event is kept.
            1.0 keeps everything (no RNG draw on the hot path); 0.0 keeps
            nothing but still counts offers.
        seed: seed for the private RNG, making sampling reproducible.
        epoch_ns: wall-clock anchor (``time.time_ns()`` units).  When set,
            every pushed event is stamped with ``ts_us`` microseconds
            since the anchor — the same epoch the run manifest records
            and span exports align to — so sampled events from separate
            worker processes sort onto one timeline.  ``None`` (the
            default) leaves events unstamped and byte-reproducible.
    """

    def __init__(self, capacity: int = 65536, sample_rate: float = 1.0,
                 seed: int = 0, epoch_ns: Optional[int] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.seed = seed
        self.epoch_ns = epoch_ns
        self._rng = random.Random(seed)
        self._buf: List[Dict[str, Any]] = []
        self._next = 0          # ring write position once the buffer is full
        self.offered = 0        # events presented to the recorder
        self.recorded = 0       # events that passed sampling

    def want(self) -> bool:
        """Decide (and count) whether the next offered event is sampled.

        Callers use this *before* building the event dict so an unsampled
        event costs one RNG draw and nothing else::

            if recorder.want():
                recorder.push({"pc": pc, ...})
        """
        self.offered += 1
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def push(self, event: Dict[str, Any]) -> None:
        """Store one already-sampled event in the ring."""
        if self.epoch_ns is not None and "ts_us" not in event:
            event["ts_us"] = (time.time_ns() - self.epoch_ns) // 1000
        self.recorded += 1
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._next] = event
            self._next = (self._next + 1) % self.capacity

    def record(self, event: Dict[str, Any]) -> bool:
        """Offer one event; samples, stores, and reports whether it kept."""
        if not self.want():
            return False
        self.push(event)
        return True

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> List[Dict[str, Any]]:
        """Return the retained events, oldest first."""
        if len(self._buf) < self.capacity:
            return list(self._buf)
        return self._buf[self._next:] + self._buf[:self._next]

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.events())

    def summary(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "recorded": self.recorded,
            "retained": len(self._buf),
            "capacity": self.capacity,
            "sample_rate": self.sample_rate,
            "seed": self.seed,
        }

    def write(self, path: str, stream=None) -> int:
        """Write retained events as JSON lines (ndjson); returns the count.

        ``path == "-"`` writes to *stream* (default: ``sys.stdout``).
        """
        events = self.events()
        if path == "-":
            if stream is None:
                import sys
                stream = sys.stdout
            for event in events:
                stream.write(json.dumps(event) + "\n")
        else:
            with open(path, "w", encoding="utf-8") as fh:
                for event in events:
                    fh.write(json.dumps(event) + "\n")
        return len(events)
