"""Structured metrics: counters, gauges, histograms, series, phase timers.

The registry is deliberately lock-free and allocation-light: every metric
is a tiny ``__slots__`` object whose hot method touches one attribute or
one plain dict, so instrumentation is cheap enough to leave compiled in.
Code that *may* run without telemetry takes ``metrics=None`` and guards
with a single ``is not None`` test — the disabled path costs one branch.

Naming convention (the full contract lives in ``docs/TELEMETRY.md``):
dotted lowercase paths, ``<subsystem>.<metric>``, e.g.
``ooo.stall.rob_full`` or ``gdiff.hgvq.distance_match``.  Phase timers use
``/``-separated paths to express nesting (``simulate/trace_gen``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from .spans import SpanTracker


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; ``set`` overwrites."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """A bucketed frequency count over observed values.

    The bucket key is the observed value itself for integer metrics
    (distances, delays, occupancies — the common case here), or the value
    quantised to ``bucket_width`` when one is given.  The hot path is one
    dict get/set; no sorting or preallocated bucket arrays.
    """

    __slots__ = ("name", "bucket_width", "buckets", "count", "total")

    def __init__(self, name: str, bucket_width: Optional[float] = None):
        self.name = name
        self.bucket_width = bucket_width
        self.buckets: Dict[Any, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value, n: int = 1) -> None:
        key = value if self.bucket_width is None else \
            int(value / self.bucket_width) * self.bucket_width
        buckets = self.buckets
        buckets[key] = buckets.get(key, 0) + n
        self.count += n
        self.total += value * n

    def merge_counts(self, counts: Dict[Any, int]) -> None:
        """Bulk-merge a plain ``{value: count}`` dict (bucket_width rules
        still apply per key)."""
        for value, n in counts.items():
            self.observe(value, n)

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        return self.total / self.count


class Series:
    """An append-only sequence of sampled values (e.g. windowed accuracy)."""

    __slots__ = ("name", "points")

    def __init__(self, name: str):
        self.name = name
        self.points: List[Any] = []

    def append(self, value: Any) -> None:
        self.points.append(value)


class PhaseTiming:
    """Accumulated wall time (and optional item throughput) for one phase."""

    __slots__ = ("name", "wall_s", "calls", "items")

    def __init__(self, name: str):
        self.name = name
        self.wall_s = 0.0
        self.calls = 0
        self.items = 0

    @property
    def items_per_s(self) -> Optional[float]:
        if not self.items or not self.wall_s:
            return None
        return self.items / self.wall_s


class _TimerSpan:
    """Context manager returned by :meth:`MetricsRegistry.timer`.

    Setting :attr:`items` (e.g. instructions processed) before exit makes
    the phase report a throughput (items/second).
    """

    __slots__ = ("_registry", "_name", "_qualified", "_start", "_span",
                 "items")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._qualified = ""
        self._start = 0.0
        self._span = None
        self.items = 0

    def __enter__(self) -> "_TimerSpan":
        stack = self._registry._timer_stack
        self._qualified = "/".join(stack + [self._name]) if stack else self._name
        stack.append(self._name)
        tracker = self._registry.span_tracker
        if tracker is not None:
            self._span = tracker.begin(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry._timer_stack.pop()
        phase = self._registry.phase(self._qualified)
        phase.wall_s += elapsed
        phase.calls += 1
        phase.items += self.items
        if self._span is not None:
            if self.items:
                self._span.args = {"items": self.items}
            self._registry.span_tracker.end(self._span)
            self._registry.counter("span.recorded").inc()


class MetricsRegistry:
    """The per-run home of every metric.

    ``counter``/``gauge``/``histogram``/``series`` are get-or-create by
    name, so instrumentation sites can be written without a registration
    step.  ``add_collector`` registers a callable invoked at export time
    for state that is cheaper to read once at the end (table occupancy,
    aliasing totals) than to count on the hot path.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, Series] = {}
        self.phases: Dict[str, PhaseTiming] = {}
        #: When set (see :meth:`enable_spans`), every ``timer(...)`` block
        #: also records a hierarchical span; ``None`` keeps the timer hot
        #: path span-free (one attribute test per enter/exit).
        self.span_tracker: Optional[SpanTracker] = None
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._timer_stack: List[str] = []

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            metric = self.counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            metric = self.gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str,
                  bucket_width: Optional[float] = None) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            metric = self.histograms[name] = Histogram(name, bucket_width)
            return metric

    def series_of(self, name: str) -> Series:
        try:
            return self.series[name]
        except KeyError:
            metric = self.series[name] = Series(name)
            return metric

    def phase(self, name: str) -> PhaseTiming:
        try:
            return self.phases[name]
        except KeyError:
            timing = self.phases[name] = PhaseTiming(name)
            return timing

    # -- timing ---------------------------------------------------------
    def timer(self, name: str) -> _TimerSpan:
        """Time a phase: ``with registry.timer("trace_gen") as span: ...``.

        Nested timers record under ``outer/inner`` qualified names, so the
        exported phase table shows the hierarchy without double counting
        ambiguity (the outer phase's wall time includes its children).
        """
        return _TimerSpan(self, name)

    # -- spans ------------------------------------------------------------
    def enable_spans(self, tracker: Optional[SpanTracker] = None,
                     context: Optional[Dict[str, Any]] = None) -> SpanTracker:
        """Attach a span tracker so phase timers also record spans.

        *tracker* wins when given; otherwise one is built from *context*
        (a driver's shipped :meth:`SpanTracker.context`) or fresh.  The
        tracker's trace id is exported as the ``span.trace_id`` gauge so
        manifests and trace files correlate.
        """
        if tracker is None:
            tracker = SpanTracker.from_context(context)
        self.span_tracker = tracker
        self.gauge("span.trace_id").set(tracker.trace_id)
        return tracker

    # -- merging ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's contents into this one (and return self).

        Counters, histograms and phase timings accumulate; series are
        concatenated; gauges take the other registry's value (last writer
        wins).  This is how the parallel experiment runner folds each
        worker's registry snapshot into the driver's manifest.
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other.histograms.items():
            mine = self.histogram(name, hist.bucket_width)
            buckets = mine.buckets
            for key, count in hist.buckets.items():
                buckets[key] = buckets.get(key, 0) + count
            mine.count += hist.count
            mine.total += hist.total
        for name, series in other.series.items():
            self.series_of(name).points.extend(series.points)
        for name, phase in other.phases.items():
            mine = self.phase(name)
            mine.wall_s += phase.wall_s
            mine.calls += phase.calls
            mine.items += phase.items
        if other.span_tracker is not None and other.span_tracker.spans:
            if self.span_tracker is None:
                self.enable_spans(
                    SpanTracker(trace_id=other.span_tracker.trace_id))
            self.span_tracker.merge(other.span_tracker)
        return self

    def merge_dict(self, data: Dict[str, Any]) -> "MetricsRegistry":
        """Merge an :meth:`as_dict` snapshot (e.g. shipped from a worker
        process) into this registry."""
        return self.merge(MetricsRegistry.from_dict(data))

    # -- deferred collection --------------------------------------------
    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run registered collectors (idempotent: collectors overwrite)."""
        for fn in self._collectors:
            fn(self)

    # -- export ----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of everything in the registry."""
        self.collect()
        doc = {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "buckets": {str(k): v
                                for k, v in sorted(h.buckets.items())},
                    "count": h.count,
                    "mean": h.mean,
                }
                for n, h in sorted(self.histograms.items())
            },
            "series": {n: list(s.points) for n, s in sorted(self.series.items())},
            "phases": {
                n: {
                    "wall_s": p.wall_s,
                    "calls": p.calls,
                    "items": p.items,
                    "items_per_s": p.items_per_s,
                }
                for n, p in sorted(self.phases.items())
            },
        }
        if self.span_tracker is not None:
            doc["spans"] = self.span_tracker.as_dict()
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output (JSON round-trip).

        Histogram bucket keys come back as strings (JSON object keys);
        integer-looking keys are restored to ints so a round-tripped
        registry exports identically.
        """
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, spec in data.get("histograms", {}).items():
            hist = registry.histogram(name)
            for key, count in spec.get("buckets", {}).items():
                try:
                    key = int(key)
                except ValueError:
                    try:
                        key = float(key)
                    except ValueError:
                        pass
                hist.buckets[key] = count
            hist.count = spec.get("count", sum(hist.buckets.values()))
            hist.total = spec.get("mean", 0.0) * hist.count
        for name, points in data.get("series", {}).items():
            registry.series_of(name).points = list(points)
        for name, spec in data.get("phases", {}).items():
            phase = registry.phase(name)
            phase.wall_s = spec.get("wall_s", 0.0)
            phase.calls = spec.get("calls", 0)
            phase.items = spec.get("items", 0)
        spans = data.get("spans")
        if spans:
            tracker = SpanTracker(trace_id=spans.get("trace_id"))
            tracker.merge_dict(spans)
            registry.span_tracker = tracker
        return registry
