"""The run manifest: one JSON document describing a whole run.

A manifest records what was run (command, arguments, git revision,
interpreter), when (start/finish timestamps), how fast (per-phase wall
times and throughput from the registry's timers), and what was measured
(the registry's counters/gauges/histograms/series plus any
command-specific ``extra`` sections such as per-predictor statistics).
``repro ... --metrics-out FILE`` writes one; ``FILE = -`` streams it to
stdout so pipelines can consume it directly.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Any, Dict, Optional

from .metrics import MetricsRegistry

SCHEMA_VERSION = 1


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort ``git rev-parse HEAD``; None outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _isoformat(epoch: float) -> str:
    return datetime.fromtimestamp(epoch, tz=timezone.utc).isoformat()


class RunManifest:
    """Collects run provenance and renders the final JSON document."""

    def __init__(self, command: str, args: Optional[Dict[str, Any]] = None):
        self.command = command
        self.args = dict(args or {})
        self.started_at = time.time()
        #: Wall-clock anchor (ns since the Unix epoch) every span and
        #: event timestamp of this run is aligned to — recorded here so
        #: traces exported by separate worker processes land on one
        #: Perfetto timeline.
        self.clock_epoch_ns = time.time_ns()
        self.finished_at: Optional[float] = None
        self.git_sha = git_revision()
        self.extra: Dict[str, Any] = {}

    @property
    def run_id(self) -> str:
        """Deterministic run identity: a content hash of the resolved
        configuration (command + arguments), not of when it ran.

        Two runs of the same command with the same arguments share one
        run id, which is what lets the campaign store deduplicate
        manifests across resumes instead of accreting a new document per
        attempt.
        """
        ident = json.dumps({"command": self.command, "args": self.args},
                           sort_keys=True, separators=(",", ":"),
                           default=str)
        return hashlib.sha256(ident.encode("utf-8")).hexdigest()[:16]

    def add(self, section: str, payload: Any) -> None:
        """Attach a command-specific section (e.g. ``predictors``)."""
        self.extra[section] = payload

    def finish(self) -> None:
        self.finished_at = time.time()

    def as_dict(self, registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
        if self.finished_at is None:
            self.finish()
        doc: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "args": {k: v for k, v in sorted(self.args.items())},
            "git_sha": self.git_sha,
            "python": platform.python_version(),
            "started_at": _isoformat(self.started_at),
            "finished_at": _isoformat(self.finished_at),
            "duration_s": self.finished_at - self.started_at,
            "clock_epoch_ns": self.clock_epoch_ns,
        }
        if registry is not None:
            metrics = registry.as_dict()
            doc["phases"] = metrics.pop("phases")
            doc["metrics"] = metrics
        doc.update(self.extra)
        return doc

    def to_json(self, registry: Optional[MetricsRegistry] = None,
                indent: int = 2) -> str:
        return json.dumps(self.as_dict(registry), indent=indent,
                          sort_keys=False, default=str)

    def write(self, path: str, registry: Optional[MetricsRegistry] = None,
              stream=None) -> None:
        """Write the manifest to *path* (``-`` → *stream* / stdout)."""
        text = self.to_json(registry) + "\n"
        if path == "-":
            (stream or sys.stdout).write(text)
        else:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
