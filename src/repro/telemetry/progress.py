"""Single-line progress display for long runs.

A :class:`ProgressPrinter` is an ``on_progress(done, total)`` callable the
harness and pipeline accept.  It repaints one carriage-return line on a
TTY and stays completely silent when the stream is piped (or when
explicitly disabled), so redirected output never fills with control
characters.  Updates are throttled by wall time, not call count, so
callers may invoke it as often as they like.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


class ProgressPrinter:
    """Carriage-return progress line; silent off-TTY.

    Args:
        label: prefix shown before the counts.
        stream: output stream (default ``sys.stderr`` — progress must
            never pollute a piped stdout).
        enabled: force on/off; default auto-detects ``stream.isatty()``.
        min_interval: minimum seconds between repaints.
    """

    def __init__(self, label: str = "", stream=None,
                 enabled: Optional[bool] = None,
                 min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.label = label
        self.min_interval = min_interval
        self._last_paint = 0.0
        self._last_width = 0
        self._painted = False

    def __call__(self, done: int, total: Optional[int]) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        if self._painted and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        if total:
            pct = 100.0 * done / total
            text = f"{self.label}{done:,}/{total:,} ({pct:.0f}%)"
        else:
            text = f"{self.label}{done:,}"
        pad = max(0, self._last_width - len(text))
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()
        self._last_width = len(text)
        self._painted = True

    def close(self) -> None:
        """Erase the progress line so ordinary output starts clean."""
        if self._painted:
            self.stream.write("\r" + " " * self._last_width + "\r")
            self.stream.flush()
            self._painted = False

    def __enter__(self) -> "ProgressPrinter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
