"""Telemetry: structured metrics, phase timing, event tracing, manifests.

Design rules, enforced across the package:

* **Leave-on cheap.** Hot-path instrumentation is a single ``is not
  None`` guard when disabled and plain dict/attribute work when enabled —
  no locks, no string formatting, no allocation per event unless an event
  recorder is attached and sampling keeps the event.
* **One registry per run.** The CLI (or a test) creates a
  :class:`MetricsRegistry`, threads it through the layers it cares about,
  and exports everything at once via a :class:`RunManifest`.
* **Names are a contract.** Every emitted metric name is listed in
  ``docs/TELEMETRY.md``; tests assert the table and the code agree.
"""

from .events import EventRecorder
from .log import configure as configure_logging
from .log import get_logger, verbosity_to_level
from .manifest import RunManifest, git_revision
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTiming,
    Series,
)
from .progress import ProgressPrinter
from .spans import (
    Span,
    SpanTracker,
    chrome_trace_events,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "PhaseTiming",
    "MetricsRegistry",
    "EventRecorder",
    "Span",
    "SpanTracker",
    "chrome_trace_events",
    "write_chrome_trace",
    "RunManifest",
    "git_revision",
    "ProgressPrinter",
    "get_logger",
    "configure_logging",
    "verbosity_to_level",
]
