"""Logging conventions for the ``repro`` package.

Library code never configures handlers; it asks :func:`get_logger` for a
namespaced logger (everything lives under ``repro.*``) and logs away —
silent by default thanks to the root ``repro`` logger's NullHandler.  The
CLI (or a test) calls :func:`configure` once to attach a stderr handler:
``-v`` maps to INFO, ``-vv`` to DEBUG.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_NAME = "repro"

#: verbosity count (argparse ``-v`` occurrences) -> logging level.
_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}

# Library default: quiet unless the application wires a handler.
logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = ROOT_NAME) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("harness")`` and ``get_logger("repro.harness")`` are the
    same logger; bare names are qualified automatically.
    """
    if name != ROOT_NAME and not name.startswith(ROOT_NAME + "."):
        name = f"{ROOT_NAME}.{name}"
    return logging.getLogger(name)


def verbosity_to_level(verbosity: int) -> int:
    """Map an ``-v`` count to a logging level (clamped at DEBUG)."""
    return _LEVELS.get(max(0, verbosity), logging.DEBUG)


def configure(verbosity: int = 0, stream=None,
              fmt: Optional[str] = None) -> logging.Logger:
    """Attach (or retune) the single stderr handler on the root logger.

    Idempotent: calling again adjusts the level of the existing handler
    instead of stacking duplicates, so tests and repeated CLI entry are
    safe.
    """
    root = logging.getLogger(ROOT_NAME)
    level = verbosity_to_level(verbosity)
    root.setLevel(level)
    handler = next(
        (h for h in root.handlers
         if getattr(h, "_repro_cli_handler", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_cli_handler = True
        handler.setFormatter(logging.Formatter(
            fmt or "%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return root
