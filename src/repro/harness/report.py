"""ASCII reporting for experiment results.

Every experiment in :mod:`repro.harness.experiments` returns an
:class:`ExperimentResult`: a named table of rows whose string rendering
prints the same rows/series the paper's figure or table reports, plus the
paper's anchor values where the text states them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


#: Column-name fragments whose values are plain numbers, not rates.
_PLAIN_COLUMNS = ("ipc", "delay", "count", "cycles")


def fmt(value: Any, column: str = "") -> str:
    """Format one cell: rates as percentages, plain metrics as numbers."""
    if isinstance(value, float):
        name = column.lower()
        if any(frag in name for frag in _PLAIN_COLUMNS):
            return f"{value:.2f}"
        if -0.5 <= value <= 1.5:
            return f"{value:.1%}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentResult:
    """A reproduced table/figure: header, rows, and provenance notes."""

    #: Experiment id, e.g. "fig8" or "table2".
    name: str
    #: One-line description of what the paper's figure/table shows.
    title: str
    #: Column names; the first column is the row label.
    columns: List[str]
    #: Data rows (first element is the label).
    rows: List[List[Any]] = field(default_factory=list)
    #: Paper anchor values / caveats, printed under the table.
    notes: List[str] = field(default_factory=list)

    def add_row(self, label: str, *values: Any) -> None:
        self.rows.append([label, *values])

    def row(self, label: str) -> List[Any]:
        """Return the row with the given label (KeyError if absent)."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(label)

    def column(self, name: str) -> List[Any]:
        """Return all values of one named column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, label: str, column: str) -> Any:
        """Return a single cell by row label and column name."""
        return self.row(label)[self.columns.index(column)]

    def render(self) -> str:
        """Render the table as aligned ASCII."""
        table = [self.columns] + [
            [fmt(cell, self.columns[i]) for i, cell in enumerate(row)]
            for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in table)
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.name}: {self.title} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in table[1:]:
            lines.append(
                "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                          for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
