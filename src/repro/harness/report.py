"""ASCII reporting for experiment results.

Every experiment in :mod:`repro.harness.experiments` returns an
:class:`ExperimentResult`: a named table of rows whose string rendering
prints the same rows/series the paper's figure or table reports, plus the
paper's anchor values where the text states them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


#: Column-name fragments whose values are plain numbers, not rates.
#: Only consulted by the legacy heuristic fallback; experiments should
#: declare each column's kind explicitly via ``ExperimentResult.kinds``.
_PLAIN_COLUMNS = ("ipc", "delay", "count", "cycles")

#: Recognised column kinds: a rate renders as a percentage, a plain
#: metric as a fixed-point number, and a label is passed through.
COLUMN_KINDS = ("rate", "plain", "label")


def fmt(value: Any, column: str = "", kind: str = "") -> str:
    """Format one cell: rates as percentages, plain metrics as numbers.

    *kind* (``"rate"`` / ``"plain"``) decides explicitly; without it the
    legacy magnitude heuristic applies — a float in [-0.5, 1.5] outside a
    known plain column is assumed to be a rate, which mis-renders genuine
    small numbers (a 1.2-cycle delay becomes "120.0%").  Declare kinds on
    the result instead of relying on the fallback.
    """
    if isinstance(value, float):
        if kind == "rate":
            return f"{value:.1%}"
        if kind == "plain":
            return f"{value:.2f}"
        name = column.lower()
        if any(frag in name for frag in _PLAIN_COLUMNS):
            return f"{value:.2f}"
        if -0.5 <= value <= 1.5:
            return f"{value:.1%}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentResult:
    """A reproduced table/figure: header, rows, and provenance notes."""

    #: Experiment id, e.g. "fig8" or "table2".
    name: str
    #: One-line description of what the paper's figure/table shows.
    title: str
    #: Column names; the first column is the row label.
    columns: List[str]
    #: Data rows (first element is the label).
    rows: List[List[Any]] = field(default_factory=list)
    #: Paper anchor values / caveats, printed under the table.
    notes: List[str] = field(default_factory=list)
    #: Explicit per-column formatting: {column name: "rate" | "plain"}.
    #: Columns not listed fall back to the legacy magnitude heuristic.
    kinds: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [k for k in self.kinds.values() if k not in COLUMN_KINDS]
        if unknown:
            raise ValueError(f"unknown column kind(s) {unknown}; "
                             f"choose from {COLUMN_KINDS}")

    def add_row(self, label: str, *values: Any) -> None:
        self.rows.append([label, *values])

    def set_kind(self, kind: str, *columns: str) -> None:
        """Declare *columns* to format as *kind* ("rate" or "plain")."""
        if kind not in COLUMN_KINDS:
            raise ValueError(f"unknown column kind {kind!r}; "
                             f"choose from {COLUMN_KINDS}")
        for column in columns:
            self.kinds[column] = kind

    def row(self, label: str) -> List[Any]:
        """Return the row with the given label (KeyError if absent)."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(label)

    def column(self, name: str) -> List[Any]:
        """Return all values of one named column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, label: str, column: str) -> Any:
        """Return a single cell by row label and column name."""
        return self.row(label)[self.columns.index(column)]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (embedded in run manifests by the CLI)."""
        return {
            "name": self.name,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "kinds": dict(self.kinds),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`as_dict`: rebuild a result from stored JSON
        (used by the campaign store to re-render tables without
        recomputing anything)."""
        return cls(
            name=data["name"],
            title=data.get("title", ""),
            columns=list(data.get("columns", [])),
            rows=[list(row) for row in data.get("rows", [])],
            notes=list(data.get("notes", [])),
            kinds=dict(data.get("kinds", {})),
        )

    def render(self) -> str:
        """Render the table as aligned ASCII."""
        kinds = self.kinds
        table = [self.columns] + [
            [fmt(cell, self.columns[i], kinds.get(self.columns[i], ""))
             for i, cell in enumerate(row)]
            for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in table)
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.name}: {self.title} =="]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in table[1:]:
            lines.append(
                "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                          for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
