"""The experiment registry: one function per table/figure in the paper.

Each function regenerates the rows/series of one evaluation artefact and
returns an :class:`~repro.harness.report.ExperimentResult`.  Trace lengths
default to values that run in seconds per benchmark; the paper's absolute
numbers came from 500M-1B instruction SimpleScalar runs, so magnitudes are
compared by *shape* (see EXPERIMENTS.md).

Registry:

=========  ==================================================================
fig8       Profile prediction accuracy: local stride vs DFCM vs gDiff(q=8)
fig9       Prediction-table aliasing vs table size
fig10      gDiff accuracy vs value delay T
fig12      Value-delay distribution in the OOO pipeline (vortex)
fig13      gDiff + SGVQ vs local stride (pipeline, confidence-gated)
fig16      gDiff + HGVQ vs local stride vs local context (pipeline)
fig18      Load-address predictability (all loads, and missing loads only)
table2     Baseline IPC of the 4-wide, 64-entry-window machine
fig19      Speedup from value speculation with selective reissue
=========  ==================================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..analysis.stats import harmonic_mean_speedup, mean
from ..core.gdiff import GDiffPredictor
from ..pipeline.config import ProcessorConfig
from ..pipeline.cache import Cache
from ..pipeline.ooo import OutOfOrderCore
from ..pipeline.vp import (
    HGVQAdapter,
    LocalPredictorAdapter,
    PipelinePredictor,
    SGVQAdapter,
)
from ..predictors.dfcm import DFCMPredictor
from ..predictors.markov import MarkovPredictor
from ..predictors.stride import StridePredictor
from ..trace.cache import cached_trace
from ..trace.workloads import BENCHMARKS
from .report import ExperimentResult
from .runner import run_address_prediction, run_value_prediction

#: Default trace length (instructions) per benchmark for profile studies.
PROFILE_LENGTH = 100_000
#: Default trace length for pipeline (cycle-level) studies.
PIPELINE_LENGTH = 50_000
#: Static-code scale for pipeline studies: each kernel's PCs rotate over
#: this many copies, approximating paper-scale code bodies.  Matters for
#: predictor warm-up and table pressure (DFCM's two-level structure warms
#: slowest, which is why its coverage trails — Section 7's observation).
PIPELINE_COPIES = 4

#: The Section 7 machine: the paper evaluates value speculation on "an
#: aggressive machine model ... similar to the great latency model
#: described in [24]" (Sazeides, HPCA-8), which lengthens operation
#: latencies so data dependencies — the thing value prediction breaks —
#: dominate the baseline.  We lengthen ALU and cache-hit latencies
#: accordingly for the speedup study (Figure 19) and its baseline
#: (Table 2).
def great_latency_config() -> ProcessorConfig:
    return ProcessorConfig(
        ialu_latency=2,
        dcache_hit_latency=4,
        pipe_overhead=2,
    )


# ---------------------------------------------------------------------------
# Figure 8 — profile prediction accuracy
# ---------------------------------------------------------------------------
def fig8(length: int = PROFILE_LENGTH,
         benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    """Value prediction accuracy, unlimited tables, retire-order history.

    Paper: local stride 57%, DFCM 64%, gDiff(q=8) 73% on average; mcf is
    gDiff's best (86%); gap is hard for everyone (~40%).
    """
    result = ExperimentResult(
        name="fig8",
        title="profile prediction accuracy (unlimited tables)",
        columns=["bench", "stride", "dfcm", "gdiff8"],
        kinds={"stride": "rate", "dfcm": "rate", "gdiff8": "rate"},
        notes=["paper averages: stride 57%, DFCM 64%, gdiff(q=8) 73%"],
    )
    for bench in benchmarks or BENCHMARKS:
        trace = cached_trace(bench, length)
        predictors = {
            "stride": StridePredictor(entries=None),
            "dfcm": DFCMPredictor(order=4, l1_entries=None),
            "gdiff8": GDiffPredictor(order=8, entries=None),
        }
        stats = run_value_prediction(trace, predictors)
        result.add_row(bench, *(stats[k].raw_accuracy
                                for k in ("stride", "dfcm", "gdiff8")))
    result.add_row("average",
                   *(mean(result.column(c))
                     for c in ("stride", "dfcm", "gdiff8")))
    return result


# ---------------------------------------------------------------------------
# Figure 9 — aliasing vs prediction-table size
# ---------------------------------------------------------------------------
FIG9_TABLE_SIZES = [None, 65536, 32768, 16384, 8192, 4096, 2048]


def fig9(length: int = PROFILE_LENGTH,
         benchmarks: Optional[List[str]] = None,
         code_copies: int = 8) -> ExperimentResult:
    """Conflict (aliasing) rate of the gDiff table across sizes.

    Paper: an 8K-entry tagless table loses <1% accuracy vs infinite; 2K
    shows conflict rates up to ~25%.  Synthetic code bodies are small, so
    ``code_copies`` replicates static PCs to paper-scale code sizes.
    """
    labels = ["inf" if s is None else f"{s // 1024}K" for s in FIG9_TABLE_SIZES]
    result = ExperimentResult(
        name="fig9",
        title="gDiff table aliasing (conflict rate) vs table size",
        columns=["bench"] + labels,
        kinds={label: "rate" for label in labels},
        notes=["paper: 8K entries within ~1% of infinite; conflicts grow "
               "sharply below 8K"],
    )
    for bench in benchmarks or BENCHMARKS:
        trace = cached_trace(bench, length, code_copies=code_copies)
        row = []
        for size in FIG9_TABLE_SIZES:
            predictor = GDiffPredictor(order=8, entries=size,
                                       track_conflicts=True)
            run_value_prediction(trace, {"gdiff": predictor})
            row.append(predictor.conflict_rate)
        result.add_row(bench, *row)
    result.add_row(
        "average",
        *(mean(result.column(label)) for label in labels),
    )
    return result


# ---------------------------------------------------------------------------
# Figure 10 — value delay sensitivity
# ---------------------------------------------------------------------------
FIG10_DELAYS = [0, 2, 4, 8, 16]


def fig10(length: int = PROFILE_LENGTH,
          benchmarks: Optional[List[str]] = None,
          order: int = 8) -> ExperimentResult:
    """gDiff profile accuracy as the value delay T grows.

    Paper: average accuracy falls from 73% (T=0) to 52% (T=16); gap is the
    noted exception (its best accuracy is not at T=0).
    """
    labels = [f"T={t}" for t in FIG10_DELAYS]
    result = ExperimentResult(
        name="fig10",
        title=f"gDiff(q={order}) accuracy vs value delay",
        columns=["bench"] + labels,
        kinds={label: "rate" for label in labels},
        notes=["paper: average 73% at T=0 falling to 52% at T=16"],
    )
    for bench in benchmarks or BENCHMARKS:
        trace = cached_trace(bench, length)
        row = []
        for delay in FIG10_DELAYS:
            predictor = GDiffPredictor(order=order, entries=None, delay=delay)
            stats = run_value_prediction(trace, {"gdiff": predictor})
            row.append(stats["gdiff"].raw_accuracy)
        result.add_row(bench, *row)
    result.add_row("average", *(mean(result.column(c)) for c in labels))
    return result


# ---------------------------------------------------------------------------
# Figure 12 — pipeline value-delay distribution
# ---------------------------------------------------------------------------
def fig12(length: int = PIPELINE_LENGTH,
          bench: str = "vortex",
          max_delay: int = 20) -> ExperimentResult:
    """Distribution of value delays measured in the OOO pipeline.

    Paper (vortex): most delays are small, average ~5 — the observation
    motivating speculative (pre-retire) GVQ updates.
    """
    core = OutOfOrderCore(track_value_delay=True)
    sim = core.run(cached_trace(bench, length, code_copies=PIPELINE_COPIES))
    histogram = sim.value_delay_histogram
    total = sum(histogram.values()) or 1
    result = ExperimentResult(
        name="fig12",
        title=f"value delay distribution ({bench})",
        columns=["delay", "fraction"],
        kinds={"fraction": "rate"},
        notes=[f"mean value delay = {sim.mean_value_delay():.2f} "
               "(paper: ~5 for vortex)"],
    )
    for delay in range(max_delay + 1):
        result.add_row(str(delay), histogram.get(delay, 0) / total)
    tail = sum(n for d, n in histogram.items() if d > max_delay)
    result.add_row(f">{max_delay}", tail / total)
    return result


# ---------------------------------------------------------------------------
# Figures 13 and 16 — pipeline prediction capability
# ---------------------------------------------------------------------------
def _pipeline_capability(
    name: str,
    title: str,
    adapters: Dict[str, Callable[[], PipelinePredictor]],
    length: int,
    benchmarks: Optional[List[str]],
    notes: List[str],
) -> ExperimentResult:
    """Shared driver: run each adapter passively through the OOO core."""
    columns = ["bench"]
    for adapter_name in adapters:
        columns += [f"{adapter_name}_acc", f"{adapter_name}_cov"]
    result = ExperimentResult(name=name, title=title, columns=columns,
                              kinds={c: "rate" for c in columns[1:]},
                              notes=notes)
    for bench in benchmarks or BENCHMARKS:
        trace = cached_trace(bench, length, code_copies=PIPELINE_COPIES)
        row: List[float] = []
        for factory in adapters.values():
            adapter = factory()
            core = OutOfOrderCore(value_predictor=adapter, speculate=False)
            core.run(trace)
            row += [adapter.stats.accuracy, adapter.stats.coverage]
        result.add_row(bench, *row)
    result.add_row(
        "average",
        *(mean(result.column(c)) for c in columns[1:]),
    )
    return result


def fig13(length: int = PIPELINE_LENGTH,
          benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    """gDiff over the speculative GVQ vs the local stride predictor.

    Paper: execution variation hurts the SGVQ badly — gDiff 74% accuracy /
    49% coverage vs local stride 89% / 55%.
    """
    return _pipeline_capability(
        "fig13",
        "gDiff + SGVQ vs local stride (OOO pipeline, 3-bit confidence)",
        {
            "gdiff_sgvq": lambda: SGVQAdapter(order=32, entries=8192),
            "l_stride": lambda: LocalPredictorAdapter(
                StridePredictor(entries=8192)),
        },
        length,
        benchmarks,
        ["paper: sgvq 74%/49% vs local stride 89%/55% — the SGVQ loses to "
         "the local predictor, motivating the hybrid queue"],
    )


def fig16(length: int = PIPELINE_LENGTH,
          benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    """The headline result: gDiff + HGVQ vs local stride vs local context.

    Paper: gDiff(HGVQ, q=32) reaches 91% accuracy / 64% coverage vs local
    stride 89% / 55%; the local context predictor (DFCM) has comparable
    accuracy but the smallest coverage.
    """
    return _pipeline_capability(
        "fig16",
        "gDiff + HGVQ vs local stride vs local context (OOO pipeline)",
        {
            "gdiff_hgvq": lambda: HGVQAdapter(order=32, entries=8192),
            "l_stride": lambda: LocalPredictorAdapter(
                StridePredictor(entries=8192)),
            "l_context": lambda: LocalPredictorAdapter(
                DFCMPredictor(order=4, l1_entries=8192)),
        },
        length,
        benchmarks,
        ["paper: hgvq 91%/64%, local stride 89%/55%, local context lowest "
         "coverage"],
    )


# ---------------------------------------------------------------------------
# Figure 18 — load-address prediction
# ---------------------------------------------------------------------------
def fig18(length: int = PROFILE_LENGTH,
          benchmarks: Optional[List[str]] = None,
          missing_only: bool = False,
          markov_entries: int = 262144) -> ExperimentResult:
    """Load-address predictability (Section 6).

    gDiff and local stride use 4K-entry tagless tables; the first-order
    Markov predictor uses a 4-way 256K-entry tagged table (gated by tag
    match).  With ``missing_only`` the evaluation is restricted to loads
    that miss a Table 1 D-cache (Figure 18b).

    Paper (all loads): gdiff 86%/63%, local stride 86%/55%, Markov
    33%/87%.  Missing loads: gdiff 53%/33%, local stride 55%/25%, Markov
    20%/69%.
    """
    suffix = "b (missing loads)" if missing_only else "a (all loads)"
    result = ExperimentResult(
        name="fig18" + ("b" if missing_only else "a"),
        title=f"load-address predictability, Figure 18{suffix}",
        columns=["bench", "ls_acc", "ls_cov", "gs_acc", "gs_cov",
                 "markov_acc", "markov_cov"],
        kinds={c: "rate" for c in ("ls_acc", "ls_cov", "gs_acc", "gs_cov",
                                   "markov_acc", "markov_cov")},
        notes=["paper (all loads): gs 86%/63% vs ls 86%/55% vs markov "
               "33%/87%",
               "paper (missing): gs 53%/33% vs ls 55%/25% vs markov "
               "20%/69%"],
    )
    for bench in benchmarks or BENCHMARKS:
        trace = cached_trace(bench, length)
        predictors = {
            "ls": StridePredictor(entries=4096),
            "gs": GDiffPredictor(order=32, entries=4096),
            "markov": MarkovPredictor(entries=markov_entries, ways=4),
        }
        miss_filter = None
        if missing_only:
            dcache = Cache(ProcessorConfig().dcache)
            miss_filter = lambda insn: not dcache.access(insn.addr)
        stats = run_address_prediction(trace, predictors,
                                       miss_filter=miss_filter)
        result.add_row(
            bench,
            stats["ls"].accuracy, stats["ls"].coverage,
            stats["gs"].accuracy, stats["gs"].coverage,
            stats["markov"].accuracy, stats["markov"].coverage,
        )
    result.add_row(
        "average",
        *(mean(result.column(c)) for c in result.columns[1:]),
    )
    return result


# ---------------------------------------------------------------------------
# Table 2 — baseline IPC
# ---------------------------------------------------------------------------
def table2(length: int = PIPELINE_LENGTH,
           benchmarks: Optional[List[str]] = None,
           config: Optional[ProcessorConfig] = None) -> ExperimentResult:
    """Baseline IPC of the Table 1 machine, no value speculation."""
    result = ExperimentResult(
        name="table2",
        title="baseline IPC (4-way, 64-entry window, no value speculation)",
        columns=["bench", "ipc", "dmiss", "bmiss"],
        kinds={"ipc": "plain", "dmiss": "rate", "bmiss": "rate"},
        notes=["paper reports baseline IPC per benchmark; the source text "
               "does not preserve the numbers, so ours stand alone — mcf "
               "should be the most memory-bound"],
    )
    for bench in benchmarks or BENCHMARKS:
        core = OutOfOrderCore(
            config=config if config is not None else great_latency_config())
        sim = core.run(cached_trace(bench, length,
                                    code_copies=PIPELINE_COPIES))
        result.add_row(bench, sim.ipc, sim.dcache_miss_rate,
                       sim.branch_mispredict_rate)
    ipcs = result.column("ipc")
    result.add_row("average", mean(ipcs), mean(result.column("dmiss")),
                   mean(result.column("bmiss")))
    return result


# ---------------------------------------------------------------------------
# Figure 19 — value-speculation speedups
# ---------------------------------------------------------------------------
def fig19(length: int = PIPELINE_LENGTH,
          benchmarks: Optional[List[str]] = None,
          order: int = 32) -> ExperimentResult:
    """Speedup from breaking data dependencies with each predictor.

    Paper: gDiff(HGVQ) 19.2% average speedup (53% on mcf) vs local stride
    ~15%; local context trails on its low coverage.  The machine issues
    dependents on confident predictions and selectively reissues on
    misprediction.  ``order`` sets the hybrid queue size so campaigns can
    sweep it; the local predictors are queue-free and unaffected.
    """
    adapters: Dict[str, Callable[[], Optional[PipelinePredictor]]] = {
        "local_stride": lambda: LocalPredictorAdapter(
            StridePredictor(entries=8192)),
        "local_context": lambda: LocalPredictorAdapter(
            DFCMPredictor(order=4, l1_entries=8192)),
        "gdiff_hgvq": lambda: HGVQAdapter(order=order, entries=8192),
    }
    result = ExperimentResult(
        name="fig19",
        title="speedup of value speculation over the baseline",
        columns=["bench", "baseline_ipc"] + list(adapters),
        kinds={"baseline_ipc": "plain",
               **{name: "rate" for name in adapters}},
        notes=["paper: gdiff(HGVQ) 19.2% average (53% on mcf); local "
               "stride ~15%; local context lowest"],
    )
    speedups: Dict[str, List[float]] = {name: [] for name in adapters}
    for bench in benchmarks or BENCHMARKS:
        trace = cached_trace(bench, length, code_copies=PIPELINE_COPIES)
        baseline = OutOfOrderCore(config=great_latency_config()).run(trace)
        row: List[float] = [baseline.ipc]
        for name, factory in adapters.items():
            core = OutOfOrderCore(config=great_latency_config(),
                                  value_predictor=factory(), speculate=True)
            sim = core.run(trace)
            speedup = sim.ipc / baseline.ipc - 1.0
            speedups[name].append(speedup)
            row.append(speedup)
        result.add_row(bench, *row)
    result.add_row(
        "H_mean", float("nan"),
        *(harmonic_mean_speedup(speedups[name]) for name in adapters),
    )
    return result


#: Registry mapping experiment ids to their functions.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig12": fig12,
    "fig13": fig13,
    "fig16": fig16,
    "fig18a": lambda **kw: fig18(missing_only=False, **kw),
    "fig18b": lambda **kw: fig18(missing_only=True, **kw),
    "table2": table2,
    "fig19": fig19,
}


def run_experiment(name: str, registry=None, **kwargs) -> ExperimentResult:
    """Run one experiment from the registry by id.

    With a :class:`~repro.telemetry.MetricsRegistry` the run is timed as
    phase ``experiment.<name>`` (wall time in the exported manifest).
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    if registry is None:
        return fn(**kwargs)
    with registry.timer(f"experiment.{name}"):
        return fn(**kwargs)
