"""Experiment harness: runners, the per-figure experiment registry, and
ASCII reporting that prints the same rows/series the paper's tables and
figures report."""

from .experiments import EXPERIMENTS, run_experiment
from .parallel import default_workers, parallel_map, run_experiments
from .report import ExperimentResult
from .runner import (
    run_address_prediction,
    run_value_prediction,
    warm_then_measure,
)
from .workbank import (
    BANK_GROUPS,
    DEFAULT_BANK_PREDICTORS,
    render_bank,
    run_bank,
)

__all__ = [
    "run_value_prediction",
    "run_bank",
    "render_bank",
    "BANK_GROUPS",
    "DEFAULT_BANK_PREDICTORS",
    "run_address_prediction",
    "warm_then_measure",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
    "parallel_map",
    "default_workers",
    "ExperimentResult",
]
