"""Unified workload-bank runner behind ``repro workloads``.

The *bank* is every workload the repo knows how to produce, in three
groups (docs/WORKLOADS.md):

* ``suite`` — the synthetic SPECint2000-like benchmarks,
* ``adversarial`` — the stress scenarios in
  :mod:`repro.trace.workloads.adversarial`, and
* ``imported`` — recorded traces registered through ``repro trace
  import`` (:mod:`repro.trace.ingest`).

:func:`run_bank` sweeps a selection of the bank through a predictor zoo
subset and returns one row per workload plus, for the adversarial bank,
the outcome of its accuracy expectations — the bank's fidelity gate
(`repro workloads --check`, wired into CI as the ``ingest`` job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import GDiffPredictor
from ..predictors import (
    DFCMPredictor,
    LastValuePredictor,
    StridePredictor,
)
from .runner import run_value_prediction

#: Group sweep order (also the rendering order).
BANK_GROUPS = ("suite", "adversarial", "imported")

#: The zoo subset swept by default: the paper's main comparison set.
DEFAULT_BANK_PREDICTORS = ("stride", "dfcm", "gdiff8", "gdiff32")

#: Factories for every predictor ``repro workloads`` can sweep.
BANK_ZOO: Dict[str, Callable[[], object]] = {
    "last-value": lambda: LastValuePredictor(entries=None),
    "stride": lambda: StridePredictor(entries=None),
    "dfcm": lambda: DFCMPredictor(l1_entries=None),
    "gdiff8": lambda: GDiffPredictor(order=8, entries=None),
    "gdiff32": lambda: GDiffPredictor(order=32, entries=None),
}


@dataclass
class BankCheck:
    """One adversarial expectation: raw accuracy within ``[lo, hi]``."""

    workload: str
    predictor: str
    lo: float
    hi: float
    actual: float

    @property
    def ok(self) -> bool:
        return self.lo <= self.actual <= self.hi

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return (f"  {mark}  {self.workload}/{self.predictor}: "
                f"raw accuracy {self.actual:.4f} expected "
                f"[{self.lo:.2f}, {self.hi:.2f}]")


@dataclass
class BankRow:
    """One swept workload: its group and per-predictor raw accuracy."""

    workload: str
    group: str
    length: int
    value_events: int
    accuracy: Dict[str, float] = field(default_factory=dict)


def bank_predictors(names: Optional[Sequence[str]] = None,
                    ) -> Dict[str, Callable[[], object]]:
    """Validate *names* against the zoo; default to the comparison set."""
    chosen = list(names) if names else list(DEFAULT_BANK_PREDICTORS)
    unknown = [n for n in chosen if n not in BANK_ZOO]
    if unknown:
        raise ValueError(f"unknown predictor(s): {unknown}; "
                         f"choose from {sorted(BANK_ZOO)}")
    return {name: BANK_ZOO[name] for name in chosen}


def bank_members(groups: Sequence[str] = BANK_GROUPS,
                 only: Optional[Sequence[str]] = None,
                 ) -> List[Tuple[str, str]]:
    """Resolve the sweep list as ``(workload, group)`` pairs, in order."""
    from ..trace.ingest.store import imported_names
    from ..trace.workloads import BENCHMARKS
    from ..trace.workloads.adversarial import SCENARIOS

    unknown = [g for g in groups if g not in BANK_GROUPS]
    if unknown:
        raise ValueError(f"unknown group(s): {unknown}; "
                         f"choose from {list(BANK_GROUPS)}")
    pool: List[Tuple[str, str]] = []
    if "suite" in groups:
        pool += [(name, "suite") for name in BENCHMARKS]
    if "adversarial" in groups:
        pool += [(name, "adversarial") for name in SCENARIOS]
    if "imported" in groups:
        pool += [(name, "imported") for name in imported_names()]
    if only:
        known = {name for name, _ in pool}
        missing = [name for name in only if name not in known]
        if missing:
            raise ValueError(f"workload(s) not in the selected groups: "
                             f"{missing}")
        pool = [(name, group) for name, group in pool if name in only]
    return pool


def run_bank(*, groups: Sequence[str] = BANK_GROUPS,
             only: Optional[Sequence[str]] = None,
             predictors: Optional[Sequence[str]] = None,
             length: Optional[int] = None,
             check: bool = False,
             metrics=None,
             on_progress: Optional[Callable[[int, int], None]] = None,
             ) -> Tuple[List[BankRow], List[BankCheck]]:
    """Sweep the selected bank through the predictor zoo subset.

    With *check*, every adversarial workload's declared accuracy bands
    (:data:`repro.trace.workloads.adversarial.EXPECTATIONS`) are
    evaluated; the bands are calibrated at
    :data:`~repro.trace.workloads.adversarial.EXPECT_LENGTH`, so *length*
    must be left at its default (or set to exactly that) for the gate to
    be meaningful — anything else is rejected.

    Returns ``(rows, checks)``; ``checks`` is empty unless *check*.
    """
    from ..trace.cache import cached_trace
    from ..trace.workloads.adversarial import EXPECTATIONS, EXPECT_LENGTH

    sweep_length = EXPECT_LENGTH if length is None else length
    if check and sweep_length != EXPECT_LENGTH:
        raise ValueError(
            f"--check gates bands calibrated at length {EXPECT_LENGTH}; "
            f"drop --length {sweep_length} or match it")
    members = bank_members(groups, only)
    zoo = bank_predictors(predictors)
    rows: List[BankRow] = []
    checks: List[BankCheck] = []
    for index, (name, group) in enumerate(members):
        trace = cached_trace(name, sweep_length)
        stats = run_value_prediction(
            trace, {pname: make() for pname, make in zoo.items()},
            metrics=metrics)
        row = BankRow(workload=name, group=group, length=len(trace),
                      value_events=next(iter(stats.values())).attempts
                      if stats else 0,
                      accuracy={pname: s.raw_accuracy
                                for pname, s in stats.items()})
        rows.append(row)
        if check and group == "adversarial":
            for pname, (lo, hi) in EXPECTATIONS.get(name, {}).items():
                if pname in row.accuracy:
                    checks.append(BankCheck(name, pname, lo, hi,
                                            row.accuracy[pname]))
        if on_progress is not None:
            on_progress(index + 1, len(members))
    return rows, checks


def render_bank(rows: Sequence[BankRow], checks: Sequence[BankCheck],
                predictors: Sequence[str]) -> List[str]:
    """ASCII table over the swept rows plus the expectation verdicts."""
    width = max([len("workload")] + [len(r.workload) for r in rows])
    header = (f"{'workload':{width}s} {'group':11s} {'values':>8s}  "
              + " ".join(f"{p:>10s}" for p in predictors))
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(
            f"{row.accuracy[p]:10.1%}" if p in row.accuracy
            else f"{'-':>10s}" for p in predictors)
        lines.append(f"{row.workload:{width}s} {row.group:11s} "
                     f"{row.value_events:>8,d}  {cells}")
    if checks:
        failed = [c for c in checks if not c.ok]
        lines.append("")
        lines.append(f"expectations: {len(checks) - len(failed)}/"
                     f"{len(checks)} within band")
        lines += [c.render() for c in checks]
    return lines
