"""Parallel experiment execution: fan the registry out across cores.

The figure suite is embarrassingly parallel — every experiment (and every
per-workload body inside one) is an independent pure function of its
arguments — so the driver here fans work across processes, ships each
worker's :class:`~repro.telemetry.MetricsRegistry` snapshot back as a
plain dict, and merges the snapshots into the caller's registry for one
consolidated manifest.

Two worker planes exist, selected by ``REPRO_POOL``:

* ``persistent`` (the default): a module-singleton :class:`WorkerPool` of
  long-lived forked workers, reused across ``run_tasks``/``parallel_map``
  calls and across scheduler rounds.  Warm per-worker state — the
  in-process :class:`PackedTrace` memo, the pipeline timing memos, the
  validated shared-memory attachments — survives between calls, so a
  campaign pays interpreter spawn and trace materialisation once per
  worker, not once per round.  A dead worker is replaced without
  restarting the pool.
* ``fresh``: the legacy one-:class:`ProcessPoolExecutor`-per-call path,
  kept as the benchmark baseline and as a safety valve.

Determinism is a hard requirement: a worker computes *exactly* what the
serial path computes (same experiment function, same arguments, fresh
predictor state), so parallel runs reproduce the serial tables bit for bit
(asserted by ``tests/test_parallel.py``).  Degradation is graceful: one
worker, one experiment, or any pool-level failure (a crashed worker, a
sandbox that forbids subprocesses) falls back to in-process serial
execution with the same results — partial parallel metrics are discarded
first so nothing is double-counted.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..telemetry import MetricsRegistry, get_logger
from ..trace import shm
from .experiments import run_experiment
from .report import ExperimentResult

log = get_logger("repro.harness.parallel")

#: Exceptions that mean "the pool is unusable", not "the experiment is
#: broken" — these trigger the serial fallback instead of propagating.
#: AttributeError/TypeError are what pickle raises for local or otherwise
#: unpicklable callables; a genuine experiment bug of the same type still
#: surfaces, because the fallback re-runs the real body in-process.
POOL_FAILURES = (BrokenProcessPool, OSError, PermissionError,
                 pickle.PicklingError, AttributeError, TypeError)

#: Environment keys with this prefix are mirrored into persistent workers
#: before every dispatch: a forked worker outlives the environment it was
#: born under (tests monkeypatch ``REPRO_CACHE_DIR``; the CLI flips
#: ``REPRO_SHM``), so each call re-synchronises.
_ENV_PREFIX = "REPRO_"


def pool_mode() -> str:
    """``persistent`` (default) or ``fresh`` (legacy pool-per-call)."""
    mode = os.environ.get("REPRO_POOL", "persistent").strip().lower()
    return mode if mode in ("persistent", "fresh") else "persistent"


def pool_idle_timeout() -> Optional[float]:
    """Idle-worker reap threshold in seconds (``REPRO_POOL_IDLE_S``).

    ``None`` (unset, unparsable, or non-positive) disables reaping — the
    historical behaviour, where a pool that served a burst pins its
    workers until process exit.
    """
    raw = os.environ.get("REPRO_POOL_IDLE_S", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _count(registry: Optional[MetricsRegistry], name: str,
           amount: int = 1) -> None:
    if registry is not None and amount:
        registry.counter(name).inc(amount)


def _record_fallback(registry: Optional[MetricsRegistry],
                     exc: BaseException) -> None:
    """Count a pool failure so degraded runs are visible in manifests.

    ``parallel.fallback`` totals every silent serial degradation;
    ``parallel.fallback.<ExceptionType>`` records why, so a campaign
    manifest can distinguish a sandbox that forbids subprocesses from a
    worker that segfaulted.
    """
    if registry is not None:
        registry.counter("parallel.fallback").inc()
        registry.counter(f"parallel.fallback.{type(exc).__name__}").inc()


def default_workers() -> int:
    """Worker count: every core the scheduler lets this process use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_one(name: str, kwargs: Dict,
             span_ctx: Optional[Dict] = None) -> Tuple[ExperimentResult, Dict]:
    """Worker body: one experiment, one fresh registry, shipped as dicts.

    *span_ctx* is the driver's :meth:`SpanTracker.context`; when given,
    the worker records spans (under its own pid) parented to the
    driver-side span that submitted it, and they ride home inside the
    registry snapshot.
    """
    registry = MetricsRegistry()
    if span_ctx is not None:
        registry.enable_spans(context=span_ctx)
    result = run_experiment(name, registry=registry, **kwargs)
    return result, registry.as_dict()


def _crashing_worker(name: str, kwargs: Dict,
                     span_ctx=None):  # pragma: no cover - subprocess
    """Fault-injection worker for the crash-fallback tests: dies hard,
    taking its pool with it (the serial fallback never runs it)."""
    os._exit(13)


def _apply(task: Tuple[Callable, Tuple]) -> Any:
    """Pool trampoline: ``(fn, args)`` → ``fn(*args)``.

    Lets :func:`run_experiments` ship multi-argument experiment bodies
    through the single-argument :meth:`WorkerPool.map_outcomes`.
    """
    fn, args = task
    return fn(*args)


def span_context(registry: Optional[MetricsRegistry]) -> Optional[Dict]:
    """The picklable span context workers should record under, or None
    when the driver is not tracing."""
    if registry is None or registry.span_tracker is None:
        return None
    return registry.span_tracker.context()


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------
def _sync_environ(env: Dict[str, str]) -> None:
    """Make the worker's ``REPRO_*`` environment match the driver's."""
    for key in [k for k in os.environ if k.startswith(_ENV_PREFIX)]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


def _pool_worker_main(conn) -> None:  # pragma: no cover - subprocess body
    """Persistent worker loop: apply setup envelopes, run task batches.

    Everything module-level survives between batches — that is the point:
    the trace memo, pipeline timing memos, and shared-memory attachments
    stay warm for the worker's whole life.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "setup":
            env, handles = msg[1], msg[2]
            _sync_environ(env)
            if handles is not None:
                shm.install_table(handles)
            continue
        _kind, fn, tagged = msg  # ("batch", fn, [(tid, item), ...])
        for tid, item in tagged:
            try:
                result = fn(item)
            except BaseException as exc:
                try:
                    conn.send(("raise", tid, exc))
                except Exception:
                    conn.send(("raise", tid, RuntimeError(
                        f"{type(exc).__name__}: {exc}")))
            else:
                try:
                    conn.send(("ok", tid, result))
                except Exception as exc:
                    conn.send(("raise", tid, RuntimeError(
                        f"task {tid} result failed to pickle: {exc}")))
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """One persistent worker process plus its driver-side pipe end."""

    __slots__ = ("proc", "conn", "inflight", "shm_version", "last_used",
                 "pinned", "setup_sig")

    def __init__(self, ctx) -> None:
        driver_end, worker_end = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_pool_worker_main, args=(worker_end,),
                                daemon=True, name="repro-pool-worker")
        self.proc.start()
        worker_end.close()  # the child holds it now; keep EOF detectable
        self.conn = driver_end
        self.inflight: List[int] = []
        self.shm_version = -1
        self.last_used = time.monotonic()
        #: Pinned workers host shard-affine state (the serve plane) and
        #: are exempt from idle reaping — their residency is bounded by
        #: the shard's own LRU stream manager, not by pool pressure.
        self.pinned = False
        #: Signature of the last ("setup", ...) envelope shipped, so the
        #: sharded dispatch path can skip redundant env re-syncs.
        self.setup_sig: Optional[Tuple] = None


class WorkerPool:
    """Long-lived worker processes reused across dispatch calls.

    Crash semantics: a worker dying mid-batch resolves only *its* in-flight
    tasks as crashes — siblings keep running, queued tasks still dispatch,
    and the dead worker is replaced (while work remains) without
    restarting the pool.  Compare the legacy per-call executor, where one
    hard-exiting task breaks every sibling future in the round.
    """

    def __init__(self, size: Optional[int] = None) -> None:
        self.size = max(1, size or default_workers())
        self._ctx = multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._closed = False
        # Guards worker-list mutation against the reap timer and against
        # concurrent shutdown_pool callers (atexit + signal handler).
        self._lock = threading.RLock()
        self._reap_timer: Optional[threading.Timer] = None

    # -- lifecycle --------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> List[int]:
        return [w.proc.pid for w in self._workers]

    def _spawn(self, registry: Optional[MetricsRegistry]) -> _Worker:
        worker = _Worker(self._ctx)
        self._workers.append(worker)
        _count(registry, "pool.spawn")
        return worker

    def _setup(self, worker: _Worker,
               version: int, handles, env: Dict[str, str]) -> None:
        """Ship the dispatch envelope: env sync + shm handle table."""
        payload = handles if worker.shm_version != version else None
        worker.conn.send(("setup", env, payload))
        worker.shm_version = version
        worker.setup_sig = (version, tuple(sorted(env.items())))

    @staticmethod
    def _stop_worker(worker: _Worker) -> None:
        """Stop one worker (graceful, then terminate a straggler)."""
        try:
            worker.conn.send(("stop",))
        except Exception:
            pass
        worker.proc.join(timeout=2)
        if worker.proc.is_alive():  # pragma: no cover - stuck worker
            worker.proc.terminate()
            worker.proc.join(timeout=2)
        try:
            worker.conn.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop every worker; safe to call repeatedly or concurrently."""
        with self._lock:
            if self._closed and not self._workers:
                return
            self._closed = True
            if self._reap_timer is not None:
                self._reap_timer.cancel()
                self._reap_timer = None
            workers, self._workers = list(self._workers), []
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except Exception:
                pass
        for worker in workers:
            worker.proc.join(timeout=2)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(timeout=2)
            try:
                worker.conn.close()
            except Exception:
                pass

    # -- idle reaping -----------------------------------------------------
    def reap_idle(self, registry: Optional[MetricsRegistry] = None,
                  timeout: Optional[float] = None) -> int:
        """Stop workers idle past the ``REPRO_POOL_IDLE_S`` threshold.

        Workers with in-flight tasks and pinned (shard-hosting) workers
        are never reaped.  Returns the number of workers stopped
        (``pool.reaped`` on *registry*).
        """
        if timeout is None:
            timeout = pool_idle_timeout()
        if timeout is None:
            return 0
        now = time.monotonic()
        victims: List[_Worker] = []
        with self._lock:
            if self._closed:
                return 0
            for worker in list(self._workers):
                if worker.inflight or worker.pinned:
                    continue
                if now - worker.last_used < timeout:
                    continue
                self._workers.remove(worker)
                victims.append(worker)
        for worker in victims:
            self._stop_worker(worker)
        _count(registry, "pool.reaped", len(victims))
        return len(victims)

    def _schedule_reap(self) -> None:
        """Arm a daemonic timer to shrink the pool after the idle window
        (no-op when reaping is disabled or a timer is already armed)."""
        timeout = pool_idle_timeout()
        if timeout is None:
            return
        with self._lock:
            if self._closed or self._reap_timer is not None:
                return
            timer = threading.Timer(timeout + 0.05, self._reap_tick)
            timer.daemon = True
            self._reap_timer = timer
            timer.start()

    def _reap_tick(self) -> None:
        with self._lock:
            self._reap_timer = None
        self.reap_idle()
        with self._lock:
            rearm = bool(self._workers) and not self._closed
        if rearm:
            self._schedule_reap()

    # -- dispatch ---------------------------------------------------------
    def map_outcomes(
        self,
        fn: Callable[[Any], Any],
        items: Sequence,
        workers: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        batch: int = 1,
        on_outcome: Optional[Callable[[int, Tuple[str, Any]], None]] = None,
    ) -> List[Tuple[str, Any]]:
        """Run ``fn`` over *items* on persistent workers.

        Returns ``[(status, value)]`` aligned with *items*: ``("ok",
        result)``, ``("raise", exception)`` for an exception *fn* raised in
        a worker, or ``("crash", reason)`` for a worker that died before
        replying.  A driver-side dispatch failure (unpicklable *fn* or
        item) raises — after every in-flight task has drained, so a retry
        or fallback never races stale replies.
        """
        if self._closed:
            raise BrokenProcessPool("worker pool is shut down")
        items = list(items)
        if not items:
            return []
        outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(items)
        # An explicit worker request wins over the core-count default —
        # exactly like an explicit ``max_workers`` on the legacy executor.
        want = max(1, min(len(items), workers if workers else self.size))
        pending: List[int] = list(range(len(items) - 1, -1, -1))
        send_error: Optional[BaseException] = None
        batch = max(1, batch)

        _count(registry, "pool.reuse", min(len(self._workers), want))
        while len(self._workers) < want:
            self._spawn(registry)
        active = list(self._workers[:want])
        env = {k: v for k, v in os.environ.items()
               if k.startswith(_ENV_PREFIX)}
        version, handles = shm.current_table()

        def resolve(tid: int, outcome: Tuple[str, Any]) -> None:
            outcomes[tid] = outcome
            if on_outcome is not None:
                on_outcome(tid, outcome)

        def handle(worker: _Worker, msg: Tuple) -> None:
            kind, tid, payload = msg
            worker.inflight.remove(tid)
            worker.last_used = time.monotonic()
            resolve(tid, ("ok" if kind == "ok" else "raise", payload))

        def reap(worker: _Worker) -> None:
            """A worker died: drain what it sent, crash the rest, replace."""
            nonlocal send_error
            while True:
                try:
                    if not worker.conn.poll(0):
                        break
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    break
                handle(worker, msg)
            worker.proc.join(timeout=5)
            reason = (f"BrokenProcessPool: worker pid {worker.proc.pid} "
                      f"died (exit {worker.proc.exitcode})")
            log.warning("%s with %d task(s) in flight",
                        reason, len(worker.inflight))
            for tid in list(worker.inflight):
                resolve(tid, ("crash", reason))
            worker.inflight.clear()
            try:
                worker.conn.close()
            except Exception:
                pass
            if worker in self._workers:
                self._workers.remove(worker)
            if worker in active:
                active.remove(worker)
            if pending and send_error is None:
                try:
                    replacement = self._spawn(registry)
                    self._setup(replacement, version, handles, env)
                except OSError as exc:  # pragma: no cover - fork refused
                    send_error = exc
                else:
                    active.append(replacement)
                    _count(registry, "pool.replace")

        def give(worker: _Worker) -> None:
            """Hand the next batch of pending tasks to an idle worker."""
            nonlocal send_error
            take = [pending.pop() for _ in range(min(batch, len(pending)))]
            tagged = [(tid, items[tid]) for tid in take]
            try:
                worker.conn.send(("batch", fn, tagged))
            except (pickle.PicklingError, AttributeError,
                    TypeError) as exc:
                pending.extend(reversed(take))
                send_error = exc
            except OSError:
                pending.extend(reversed(take))
                reap(worker)
            else:
                worker.inflight.extend(take)
                worker.last_used = time.monotonic()
                _count(registry, "pool.batches")
                _count(registry, "pool.tasks", len(take))

        try:
            for worker in active:
                self._setup(worker, version, handles, env)
        except OSError as exc:
            # A fresh worker refusing its envelope means the pool cannot
            # run here at all (e.g. a sandbox killed the fork) — surface
            # as a pool failure so callers fall back serially.
            raise BrokenProcessPool(
                f"worker setup failed: {exc}") from exc

        while True:
            if send_error is None and pending:
                for worker in list(active):
                    if not pending:
                        break
                    if not worker.inflight:
                        give(worker)
            busy = [w for w in active if w.inflight]
            if not busy:
                break
            conn_of = {w.conn: w for w in busy}
            sentinel_of = {w.proc.sentinel: w for w in busy}
            ready = _connection_wait(list(conn_of) + list(sentinel_of))
            reaped: set = set()
            for obj in ready:
                worker = conn_of.get(obj)
                if worker is not None:
                    if id(worker) in reaped:
                        continue
                    try:
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        reaped.add(id(worker))
                        reap(worker)
                    else:
                        handle(worker, msg)
                    continue
                worker = sentinel_of[obj]
                if id(worker) in reaped or not worker.inflight:
                    continue
                reaped.add(id(worker))
                reap(worker)

        if registry is not None:
            registry.gauge("pool.workers").set(len(self._workers))
        self._schedule_reap()
        if send_error is not None:
            raise send_error
        return [outcome or ("crash", "task never completed")
                for outcome in outcomes]

    # -- sharded dispatch (the serve plane) -------------------------------
    def shard_workers(self, count: int,
                      registry: Optional[MetricsRegistry] = None) -> int:
        """Ensure *count* workers exist and pin the first *count*.

        Pinned workers host shard-affine stream state for
        :mod:`repro.serve`: shard *i* always dispatches to worker *i*, so
        those workers must neither be idle-reaped nor have their list
        positions shift underneath the shard map.  Returns *count*.
        """
        with self._lock:
            if self._closed:
                raise BrokenProcessPool("worker pool is shut down")
            while len(self._workers) < count:
                self._spawn(registry)
            for worker in self._workers[:count]:
                worker.pinned = True
        return count

    def shard_unpin(self) -> None:
        """Release every pin (a serve engine shutting down)."""
        with self._lock:
            for worker in self._workers:
                worker.pinned = False
        self._schedule_reap()

    def _shard_worker(self, index: int) -> _Worker:
        worker = self._workers[index]
        if not worker.pinned:
            raise BrokenProcessPool(
                f"shard {index} is not pinned (call shard_workers first)")
        return worker

    def shard_send(self, index: int, fn: Callable[[Any], Any],
                   tag: int, item: Any,
                   registry: Optional[MetricsRegistry] = None) -> None:
        """Send one tagged batch to the pinned worker *index*.

        Re-ships the ("setup", env, handles) envelope only when the
        driver's ``REPRO_*`` environment or the shm handle table changed
        since this worker's last dispatch — the steady-state serve path
        pays one pipe write per batch.  Raises ``OSError`` when the
        worker's pipe is gone (caller reaps via :meth:`shard_replace`).
        """
        worker = self._shard_worker(index)
        env = {k: v for k, v in os.environ.items()
               if k.startswith(_ENV_PREFIX)}
        version, handles = shm.current_table()
        sig = (version, tuple(sorted(env.items())))
        if worker.setup_sig != sig:
            self._setup(worker, version, handles, env)
        worker.conn.send(("batch", fn, [(tag, item)]))
        worker.inflight.append(tag)
        worker.last_used = time.monotonic()
        _count(registry, "pool.batches")

    def shard_recv(self, index: int) -> Tuple[str, int, Any]:
        """Receive one ``(kind, tag, payload)`` reply from worker *index*.

        Blocks until a reply is available (callers multiplex readiness
        over :meth:`shard_conn` / :meth:`shard_sentinel` first).  Raises
        ``EOFError``/``OSError`` when the worker died.
        """
        worker = self._shard_worker(index)
        kind, tag, payload = worker.conn.recv()
        if tag in worker.inflight:
            worker.inflight.remove(tag)
        worker.last_used = time.monotonic()
        return kind, tag, payload

    def shard_conn(self, index: int):
        """Driver-side pipe end for shard *index* (for selectors)."""
        return self._shard_worker(index).conn

    def shard_sentinel(self, index: int):
        """Process sentinel fd for shard *index* (readable on death)."""
        return self._shard_worker(index).proc.sentinel

    def shard_replace(self, index: int,
                      registry: Optional[MetricsRegistry] = None
                      ) -> List[int]:
        """Replace a dead shard worker in place.

        Returns the tags that were in flight on the casualty (their
        frames must be failed by the caller — the replacement worker
        starts with no stream state and restores from snapshots on
        demand).
        """
        with self._lock:
            worker = self._workers[index]
            lost = list(worker.inflight)
            worker.inflight.clear()
        self._stop_worker(worker)
        with self._lock:
            if self._closed:
                raise BrokenProcessPool("worker pool is shut down")
            replacement = _Worker(self._ctx)
            replacement.pinned = True
            self._workers[index] = replacement
        _count(registry, "pool.spawn")
        _count(registry, "pool.replace")
        return lost


_POOL: Optional[WorkerPool] = None
_POOL_PID: Optional[int] = None
_ATEXIT_REGISTERED = False
_POOL_LOCK = threading.Lock()


def get_pool(registry: Optional[MetricsRegistry] = None) -> WorkerPool:
    """The process-wide persistent pool (created on first use).

    ``pool.created`` counts constructions: a whole campaign — every round,
    every retry, a stop/resume pair in one process — should see exactly
    one.  Forked children never inherit a usable pool (pid guard).
    """
    global _POOL, _POOL_PID, _ATEXIT_REGISTERED
    with _POOL_LOCK:
        if _POOL is None or _POOL.closed or _POOL_PID != os.getpid():
            _POOL = WorkerPool()
            _POOL_PID = os.getpid()
            _count(registry, "pool.created")
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_pool)
                _ATEXIT_REGISTERED = True
        return _POOL


def shutdown_pool() -> None:
    """Stop the persistent pool's workers (driver exit / test teardown).

    Idempotent and safe under concurrent callers: atexit, a signal
    handler, and test teardown can all race it — exactly one caller wins
    the pool and closes it (``WorkerPool.close`` is itself re-entrant),
    the rest are no-ops.
    """
    global _POOL
    with _POOL_LOCK:
        pool, pid = _POOL, _POOL_PID
        _POOL = None
    if pool is not None and pid == os.getpid():
        pool.close()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------
def run_experiments(
    names: Sequence[str],
    max_workers: Optional[int] = None,
    *,
    kwargs_for: Optional[Dict[str, Dict]] = None,
    common_kwargs: Optional[Dict] = None,
    registry: Optional[MetricsRegistry] = None,
    on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
    pool_worker: Callable[..., Tuple[ExperimentResult, Dict]] = _run_one,
) -> Dict[str, ExperimentResult]:
    """Run experiments from the registry, fanned out across processes.

    Args:
        names: experiment ids, in the order results should be returned.
        max_workers: pool size; ``None`` uses every available core, ``1``
            (or a single experiment) runs serially in-process.
        kwargs_for: per-experiment keyword overrides ``{name: {...}}``.
        common_kwargs: keywords passed to every experiment (e.g.
            ``{"length": 20000}``).
        registry: optional driver-side registry; each worker's metrics
            snapshot is merged into it (only after the whole run commits,
            so a fallback never double-counts).
        on_progress: ``(completed, total)`` callback as experiments finish.
        pool_worker: the function executed in pool workers (overridable
            for fault-injection tests); the serial path always runs the
            real experiment body.

    Returns:
        ``{name: ExperimentResult}`` in *names* order.
    """
    names = list(names)
    kwargs_for = kwargs_for or {}
    common = common_kwargs or {}

    def kw(name: str) -> Dict:
        merged = dict(common)
        merged.update(kwargs_for.get(name, {}))
        return merged

    if max_workers is None:
        max_workers = default_workers()
    total = len(names)
    span_ctx = span_context(registry)

    if max_workers > 1 and total > 1:
        fanned = _run_experiments_pooled(
            names, kw, span_ctx, max_workers, registry=registry,
            on_progress=on_progress, pool_worker=pool_worker)
        if fanned is not None:
            return fanned

    results: Dict[str, ExperimentResult] = {}
    snapshots: List[Dict] = []
    done = 0
    for name in names:
        result, snapshot = _run_one(name, kw(name), span_ctx)
        results[name] = result
        snapshots.append(snapshot)
        done += 1
        if on_progress is not None:
            on_progress(done, total)
    if registry is not None:
        for snapshot in snapshots:
            registry.merge_dict(snapshot)
    return results


def _run_experiments_pooled(
    names: List[str],
    kw: Callable[[str], Dict],
    span_ctx: Optional[Dict],
    max_workers: int,
    registry: Optional[MetricsRegistry],
    on_progress: Optional[Callable[[int, Optional[int]], None]],
    pool_worker: Callable[..., Tuple[ExperimentResult, Dict]],
) -> Optional[Dict[str, ExperimentResult]]:
    """The fan-out half of :func:`run_experiments`.

    Returns the committed results, or ``None`` when the pool failed and
    the caller should run the serial fallback (already counted).
    """
    total = len(names)
    if pool_mode() == "persistent":
        tasks = [(pool_worker, (name, kw(name), span_ctx)) for name in names]
        done = 0

        def on_outcome(tid: int, outcome: Tuple[str, Any]) -> None:
            nonlocal done
            if outcome[0] == "ok" and on_progress is not None:
                done += 1
                on_progress(done, total)

        try:
            raw = get_pool(registry).map_outcomes(
                _apply, tasks, workers=min(max_workers, total),
                registry=registry, on_outcome=on_outcome)
        except POOL_FAILURES as exc:
            log.warning("experiment pool failed (%s: %s); "
                        "falling back to serial execution",
                        type(exc).__name__, exc)
            _record_fallback(registry, exc)
            return None
        failure: Optional[BaseException] = None
        for status, value in raw:
            if status == "crash":
                failure = BrokenProcessPool(value)
                break
            if status == "raise":
                if isinstance(value, POOL_FAILURES):
                    failure = value
                    break
                raise value
        if failure is not None:
            # One casualty discards the whole parallel attempt: the
            # serial fallback recomputes everything, so committing any
            # partial snapshot would double-count its metrics.
            log.warning("experiment pool failed (%s: %s); "
                        "falling back to serial execution",
                        type(failure).__name__, failure)
            _record_fallback(registry, failure)
            return None
        results = {name: raw[i][1][0] for i, name in enumerate(names)}
        if registry is not None:
            for _status, (_result, snapshot) in raw:
                registry.merge_dict(snapshot)
        return results

    results = {}
    snapshots: List[Dict] = []
    try:
        with ProcessPoolExecutor(
                max_workers=min(max_workers, total)) as pool:
            futures = {name: pool.submit(pool_worker, name, kw(name),
                                         span_ctx)
                       for name in names}
            done = 0
            for name in names:
                result, snapshot = futures[name].result()
                results[name] = result
                snapshots.append(snapshot)
                done += 1
                if on_progress is not None:
                    on_progress(done, total)
    except POOL_FAILURES as exc:
        log.warning("experiment pool failed (%s: %s); "
                    "falling back to serial execution",
                    type(exc).__name__, exc)
        _record_fallback(registry, exc)
        return None
    if registry is not None:
        for snapshot in snapshots:
            registry.merge_dict(snapshot)
    return {name: results[name] for name in names}


def parallel_map(
    fn: Callable,
    items: Iterable,
    max_workers: Optional[int] = None,
    on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List:
    """``[fn(item) for item in items]`` across processes, order preserved.

    The workhorse for fanning per-workload benchmark bodies out: *fn* must
    be a picklable module-level callable.  Falls back to an in-process
    loop on one worker, one item, or any pool failure (counted as
    ``parallel.fallback`` on *registry*) — and a mid-batch failure keeps
    every already-finished result, re-running only the casualties
    (``parallel.salvaged`` counts the reused results).
    """
    items = list(items)
    if max_workers is None:
        max_workers = default_workers()
    total = len(items)
    if max_workers > 1 and total > 1:
        if pool_mode() == "persistent":
            done = 0

            def on_outcome(tid: int, outcome: Tuple[str, Any]) -> None:
                nonlocal done
                if outcome[0] == "ok" and on_progress is not None:
                    done += 1
                    on_progress(done, total)

            try:
                raw = get_pool(registry).map_outcomes(
                    fn, items, workers=min(max_workers, total),
                    registry=registry, batch=_auto_batch(total, max_workers),
                    on_outcome=on_outcome)
            except POOL_FAILURES as exc:
                log.warning("parallel_map pool failed (%s: %s); "
                            "falling back to serial execution",
                            type(exc).__name__, exc)
                _record_fallback(registry, exc)
            else:
                results: List = [None] * total
                failed: List[int] = []
                failure: Optional[BaseException] = None
                for i, (status, value) in enumerate(raw):
                    if status == "ok":
                        results[i] = value
                    elif (status == "raise"
                          and not isinstance(value, POOL_FAILURES)):
                        raise value
                    else:
                        failed.append(i)
                        if failure is None:
                            failure = (value if isinstance(value,
                                                           BaseException)
                                       else BrokenProcessPool(value))
                if failed:
                    log.warning(
                        "parallel_map lost %d/%d item(s) (%s); re-running "
                        "them serially, keeping the rest",
                        len(failed), total, failure)
                    _record_fallback(registry, failure)
                    _count(registry, "parallel.salvaged",
                           total - len(failed))
                    for i in failed:
                        results[i] = fn(items[i])
                        if on_progress is not None:
                            done += 1
                            on_progress(done, total)
                return results
        else:
            futures: List = []
            try:
                with ProcessPoolExecutor(
                        max_workers=min(max_workers, total)) as pool:
                    futures = [pool.submit(fn, item) for item in items]
                    results = []
                    for i, future in enumerate(futures):
                        results.append(future.result())
                        if on_progress is not None:
                            on_progress(i + 1, total)
                    return results
            except POOL_FAILURES as exc:
                log.warning("parallel_map pool failed (%s: %s); "
                            "falling back to serial execution",
                            type(exc).__name__, exc)
                _record_fallback(registry, exc)
                salvaged: Dict[int, Any] = {}
                for i, future in enumerate(futures):
                    if (future.done() and not future.cancelled()
                            and future.exception() is None):
                        salvaged[i] = future.result()
                if salvaged:
                    _count(registry, "parallel.salvaged", len(salvaged))
                    results = []
                    for i, item in enumerate(items):
                        results.append(salvaged[i] if i in salvaged
                                       else fn(item))
                        if on_progress is not None:
                            on_progress(i + 1, total)
                    return results
    results = []
    for i, item in enumerate(items):
        results.append(fn(item))
        if on_progress is not None:
            on_progress(i + 1, total)
    return results


def _auto_batch(total: int, workers: int) -> int:
    """Batch size amortising IPC for many-small-item maps: aim for ~4
    dispatches per worker so load stays balanced while framing shrinks."""
    return max(1, total // (workers * 4))


#: Outcome statuses yielded by :func:`run_tasks`.
TASK_OK = "ok"
TASK_CRASH = "crash"


def run_tasks(
    fn: Callable[[Any], Any],
    items: Sequence,
    max_workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    on_result: Optional[Callable[[int, Tuple[str, Any]], None]] = None,
) -> List[Tuple[str, Any]]:
    """Run *fn* over *items*, reporting per-item outcomes instead of
    failing the whole batch.

    Unlike :func:`parallel_map` — which re-runs the casualties serially
    when the pool dies — this keeps whatever finished and marks only the
    casualties, which is what a resumable scheduler needs: one poisoned
    task must not discard its siblings' completed work.

    Returns ``[(status, value)]`` aligned with *items*, where status is
    :data:`TASK_OK` (value = ``fn(item)``) or :data:`TASK_CRASH` (value =
    a short reason string; the worker died or the pool broke before the
    item ran).  *fn* is expected to catch its own application-level
    exceptions and encode them in its return value; an exception escaping
    *fn* in a worker is indistinguishable from a crash and reported as
    one.  Even a single item goes through the pool (unlike
    :func:`parallel_map`): a retried task that kills its worker must not
    take the driver down with it.  Only ``max_workers=1`` — or a pool
    that cannot be created at all (counted via ``parallel.fallback``) —
    runs items in-process, where an escaping exception propagates to the
    caller.

    Under the persistent pool a crash is contained to the worker that ran
    the item: siblings finish normally and the dead worker is replaced
    in-place, so a crash round no longer breaks innocent futures.
    """
    items = list(items)
    outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(items)
    if max_workers is None:
        max_workers = default_workers()
    if max_workers > 1 and items:
        if pool_mode() == "persistent":
            raised: List[BaseException] = []

            def on_outcome(tid: int, outcome: Tuple[str, Any]) -> None:
                status, value = outcome
                if status == "ok":
                    mapped = (TASK_OK, value)
                elif status == "crash":
                    mapped = (TASK_CRASH, value)
                elif isinstance(value, POOL_FAILURES):
                    mapped = (TASK_CRASH,
                              f"{type(value).__name__}: {value}")
                    log.warning("task %d crashed its worker (%s)",
                                tid, mapped[1])
                else:
                    raised.append(value)
                    return
                outcomes[tid] = mapped
                if on_result is not None:
                    on_result(tid, mapped)

            try:
                get_pool(registry).map_outcomes(
                    fn, items, workers=min(max_workers, len(items)),
                    registry=registry, on_outcome=on_outcome)
            except POOL_FAILURES as exc:
                log.warning("task pool could not run (%s: %s); "
                            "running tasks in-process",
                            type(exc).__name__, exc)
                _record_fallback(registry, exc)
            else:
                if raised:
                    raise raised[0]
                return [outcome or (TASK_CRASH, "task never completed")
                        for outcome in outcomes]
        else:
            try:
                pool = ProcessPoolExecutor(max_workers=min(max_workers,
                                                           len(items)))
            except POOL_FAILURES as exc:
                log.warning("task pool could not start (%s: %s); "
                            "running tasks in-process",
                            type(exc).__name__, exc)
                _record_fallback(registry, exc)
            else:
                with pool:
                    futures = {pool.submit(fn, item): i
                               for i, item in enumerate(items)}
                    for future in as_completed(futures):
                        i = futures[future]
                        try:
                            outcomes[i] = (TASK_OK, future.result())
                        except POOL_FAILURES as exc:
                            outcomes[i] = (
                                TASK_CRASH, f"{type(exc).__name__}: {exc}")
                            log.warning("task %d crashed its worker (%s)",
                                        i, outcomes[i][1])
                        if on_result is not None:
                            on_result(i, outcomes[i])
                # Every future resolves through as_completed (a broken pool
                # resolves the stragglers exceptionally), so no slot is
                # None.
                return [outcome or (TASK_CRASH, "task never completed")
                        for outcome in outcomes]
    for i, item in enumerate(items):
        outcomes[i] = (TASK_OK, fn(item))
        if on_result is not None:
            on_result(i, outcomes[i])
    return [outcome or (TASK_CRASH, "task never completed")
            for outcome in outcomes]
