"""Parallel experiment execution: fan the registry out across cores.

The figure suite is embarrassingly parallel — every experiment (and every
per-workload body inside one) is an independent pure function of its
arguments — so the driver here runs them through a
:class:`~concurrent.futures.ProcessPoolExecutor`, ships each worker's
:class:`~repro.telemetry.MetricsRegistry` snapshot back as a plain dict,
and merges the snapshots into the caller's registry for one consolidated
manifest.

Determinism is a hard requirement: a worker computes *exactly* what the
serial path computes (same experiment function, same arguments, fresh
predictor state), so parallel runs reproduce the serial tables bit for bit
(asserted by ``tests/test_parallel.py``).  Degradation is graceful: one
worker, one experiment, or any pool-level failure (a crashed worker, a
sandbox that forbids subprocesses) falls back to in-process serial
execution with the same results — partial parallel metrics are discarded
first so nothing is double-counted.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..telemetry import MetricsRegistry, get_logger
from .experiments import run_experiment
from .report import ExperimentResult

log = get_logger("repro.harness.parallel")

#: Exceptions that mean "the pool is unusable", not "the experiment is
#: broken" — these trigger the serial fallback instead of propagating.
#: AttributeError/TypeError are what pickle raises for local or otherwise
#: unpicklable callables; a genuine experiment bug of the same type still
#: surfaces, because the fallback re-runs the real body in-process.
POOL_FAILURES = (BrokenProcessPool, OSError, PermissionError,
                 pickle.PicklingError, AttributeError, TypeError)


def _record_fallback(registry: Optional[MetricsRegistry],
                     exc: BaseException) -> None:
    """Count a pool failure so degraded runs are visible in manifests.

    ``parallel.fallback`` totals every silent serial degradation;
    ``parallel.fallback.<ExceptionType>`` records why, so a campaign
    manifest can distinguish a sandbox that forbids subprocesses from a
    worker that segfaulted.
    """
    if registry is not None:
        registry.counter("parallel.fallback").inc()
        registry.counter(f"parallel.fallback.{type(exc).__name__}").inc()


def default_workers() -> int:
    """Worker count: every core the scheduler lets this process use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_one(name: str, kwargs: Dict,
             span_ctx: Optional[Dict] = None) -> Tuple[ExperimentResult, Dict]:
    """Worker body: one experiment, one fresh registry, shipped as dicts.

    *span_ctx* is the driver's :meth:`SpanTracker.context`; when given,
    the worker records spans (under its own pid) parented to the
    driver-side span that submitted it, and they ride home inside the
    registry snapshot.
    """
    registry = MetricsRegistry()
    if span_ctx is not None:
        registry.enable_spans(context=span_ctx)
    result = run_experiment(name, registry=registry, **kwargs)
    return result, registry.as_dict()


def _crashing_worker(name: str, kwargs: Dict,
                     span_ctx=None):  # pragma: no cover - subprocess
    """Fault-injection worker for the crash-fallback tests: dies hard,
    taking its pool with it (the serial fallback never runs it)."""
    os._exit(13)


def span_context(registry: Optional[MetricsRegistry]) -> Optional[Dict]:
    """The picklable span context workers should record under, or None
    when the driver is not tracing."""
    if registry is None or registry.span_tracker is None:
        return None
    return registry.span_tracker.context()


def run_experiments(
    names: Sequence[str],
    max_workers: Optional[int] = None,
    *,
    kwargs_for: Optional[Dict[str, Dict]] = None,
    common_kwargs: Optional[Dict] = None,
    registry: Optional[MetricsRegistry] = None,
    on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
    pool_worker: Callable[..., Tuple[ExperimentResult, Dict]] = _run_one,
) -> Dict[str, ExperimentResult]:
    """Run experiments from the registry, fanned out across processes.

    Args:
        names: experiment ids, in the order results should be returned.
        max_workers: pool size; ``None`` uses every available core, ``1``
            (or a single experiment) runs serially in-process.
        kwargs_for: per-experiment keyword overrides ``{name: {...}}``.
        common_kwargs: keywords passed to every experiment (e.g.
            ``{"length": 20000}``).
        registry: optional driver-side registry; each worker's metrics
            snapshot is merged into it (only after the whole run commits,
            so a fallback never double-counts).
        on_progress: ``(completed, total)`` callback as experiments finish.
        pool_worker: the function executed in pool workers (overridable
            for fault-injection tests); the serial path always runs the
            real experiment body.

    Returns:
        ``{name: ExperimentResult}`` in *names* order.
    """
    names = list(names)
    kwargs_for = kwargs_for or {}
    common = common_kwargs or {}

    def kw(name: str) -> Dict:
        merged = dict(common)
        merged.update(kwargs_for.get(name, {}))
        return merged

    if max_workers is None:
        max_workers = default_workers()
    total = len(names)
    span_ctx = span_context(registry)

    if max_workers > 1 and total > 1:
        results: Dict[str, ExperimentResult] = {}
        snapshots: List[Dict] = []
        try:
            with ProcessPoolExecutor(
                    max_workers=min(max_workers, total)) as pool:
                futures = {name: pool.submit(pool_worker, name, kw(name),
                                             span_ctx)
                           for name in names}
                done = 0
                for name in names:
                    result, snapshot = futures[name].result()
                    results[name] = result
                    snapshots.append(snapshot)
                    done += 1
                    if on_progress is not None:
                        on_progress(done, total)
        except POOL_FAILURES as exc:
            log.warning("experiment pool failed (%s: %s); "
                        "falling back to serial execution",
                        type(exc).__name__, exc)
            _record_fallback(registry, exc)
        else:
            if registry is not None:
                for snapshot in snapshots:
                    registry.merge_dict(snapshot)
            return {name: results[name] for name in names}

    results = {}
    snapshots = []
    done = 0
    for name in names:
        result, snapshot = _run_one(name, kw(name), span_ctx)
        results[name] = result
        snapshots.append(snapshot)
        done += 1
        if on_progress is not None:
            on_progress(done, total)
    if registry is not None:
        for snapshot in snapshots:
            registry.merge_dict(snapshot)
    return results


def parallel_map(
    fn: Callable,
    items: Iterable,
    max_workers: Optional[int] = None,
    on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List:
    """``[fn(item) for item in items]`` across processes, order preserved.

    The workhorse for fanning per-workload benchmark bodies out: *fn* must
    be a picklable module-level callable.  Falls back to an in-process
    loop on one worker, one item, or any pool failure (counted as
    ``parallel.fallback`` on *registry*).
    """
    items = list(items)
    if max_workers is None:
        max_workers = default_workers()
    total = len(items)
    if max_workers > 1 and total > 1:
        try:
            with ProcessPoolExecutor(
                    max_workers=min(max_workers, total)) as pool:
                futures = [pool.submit(fn, item) for item in items]
                results = []
                for i, future in enumerate(futures):
                    results.append(future.result())
                    if on_progress is not None:
                        on_progress(i + 1, total)
                return results
        except POOL_FAILURES as exc:
            log.warning("parallel_map pool failed (%s: %s); "
                        "falling back to serial execution",
                        type(exc).__name__, exc)
            _record_fallback(registry, exc)
    results = []
    for i, item in enumerate(items):
        results.append(fn(item))
        if on_progress is not None:
            on_progress(i + 1, total)
    return results


#: Outcome statuses yielded by :func:`run_tasks`.
TASK_OK = "ok"
TASK_CRASH = "crash"


def run_tasks(
    fn: Callable[[Any], Any],
    items: Sequence,
    max_workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    on_result: Optional[Callable[[int, Tuple[str, Any]], None]] = None,
) -> List[Tuple[str, Any]]:
    """Run *fn* over *items*, reporting per-item outcomes instead of
    failing the whole batch.

    Unlike :func:`parallel_map` — which re-runs *everything* serially when
    the pool dies — this keeps whatever finished and marks only the
    casualties, which is what a resumable scheduler needs: one poisoned
    task must not discard its siblings' completed work.

    Returns ``[(status, value)]`` aligned with *items*, where status is
    :data:`TASK_OK` (value = ``fn(item)``) or :data:`TASK_CRASH` (value =
    a short reason string; the worker died or the pool broke before the
    item ran).  *fn* is expected to catch its own application-level
    exceptions and encode them in its return value; an exception escaping
    *fn* in a worker is indistinguishable from a crash and reported as
    one.  Even a single item goes through the pool (unlike
    :func:`parallel_map`): a retried task that kills its worker must not
    take the driver down with it.  Only ``max_workers=1`` — or a pool
    that cannot be created at all (counted via ``parallel.fallback``) —
    runs items in-process, where an escaping exception propagates to the
    caller.
    """
    items = list(items)
    outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(items)
    if max_workers is None:
        max_workers = default_workers()
    if max_workers > 1 and items:
        try:
            pool = ProcessPoolExecutor(max_workers=min(max_workers,
                                                       len(items)))
        except POOL_FAILURES as exc:
            log.warning("task pool could not start (%s: %s); "
                        "running tasks in-process",
                        type(exc).__name__, exc)
            _record_fallback(registry, exc)
        else:
            with pool:
                futures = {pool.submit(fn, item): i
                           for i, item in enumerate(items)}
                for future in as_completed(futures):
                    i = futures[future]
                    try:
                        outcomes[i] = (TASK_OK, future.result())
                    except POOL_FAILURES as exc:
                        outcomes[i] = (
                            TASK_CRASH, f"{type(exc).__name__}: {exc}")
                        log.warning("task %d crashed its worker (%s)",
                                    i, outcomes[i][1])
                    if on_result is not None:
                        on_result(i, outcomes[i])
            # Every future resolves through as_completed (a broken pool
            # resolves the stragglers exceptionally), so no slot is None.
            return [outcome or (TASK_CRASH, "task never completed")
                    for outcome in outcomes]
    for i, item in enumerate(items):
        outcomes[i] = (TASK_OK, fn(item))
        if on_result is not None:
            on_result(i, outcomes[i])
    return [outcome or (TASK_CRASH, "task never completed")
            for outcome in outcomes]
