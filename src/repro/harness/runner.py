"""Trace-driven predictor evaluation.

These runners implement the paper's *profile* methodology (Sections 2-3 and
6): walk the committed instruction stream in program order, offer each
relevant instruction to every predictor at its "dispatch", and train with
the actual outcome at its "write-back" — which, in a profile run, happens
immediately.  Pipeline-timed evaluation (value delay, SGVQ, HGVQ, IPC)
lives in :mod:`repro.pipeline`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..predictors.base import PredictionStats, ValuePredictor
from ..predictors.confidence import ConfidenceTable
from ..predictors.markov import MarkovPredictor
from ..trace.isa import Instruction, OpClass


def run_value_prediction(
    trace: Iterable[Instruction],
    predictors: Mapping[str, ValuePredictor],
    gated: bool = False,
) -> Dict[str, PredictionStats]:
    """Run predictors over the value stream of *trace*.

    Every value-producing instruction is offered to every predictor:
    ``predict(pc)`` first, then ``update(pc, value)``.  With ``gated`` a
    fresh 3-bit confidence table (the paper's +2/−1, threshold-4 policy)
    accompanies each predictor and the gated accuracy/coverage fields of
    the returned stats are populated.

    Returns:
        {predictor name: PredictionStats}.
    """
    stats = {name: PredictionStats() for name in predictors}
    confidence = {name: ConfidenceTable() if gated else None for name in predictors}
    items = list(predictors.items())
    for insn in trace:
        if not insn.produces_value:
            continue
        pc, actual = insn.pc, insn.value
        for name, predictor in items:
            predicted = predictor.predict(pc)
            conf = confidence[name]
            if conf is not None:
                is_confident = predicted is not None and conf.is_confident(pc)
                stats[name].record(predicted, actual, is_confident)
                if predicted is not None:
                    conf.train(pc, predicted == actual)
            else:
                stats[name].record(predicted, actual)
            predictor.update(pc, actual)
    return stats


def run_address_prediction(
    trace: Iterable[Instruction],
    predictors: Mapping[str, ValuePredictor],
    miss_filter=None,
) -> Dict[str, PredictionStats]:
    """Run predictors over the load-address stream (Section 6).

    Only load instructions participate; the predicted quantity is the
    effective address.  PC-indexed predictors are gated by the 3-bit
    confidence mechanism; a :class:`MarkovPredictor` gates by tag match
    (its ``predict_confident``), as the paper specifies.

    Args:
        trace: instruction stream.
        predictors: {name: predictor}.
        miss_filter: optional callable ``(insn) -> bool``; when given, the
            run is restricted to loads for which it returns True (used with
            a D-cache model to evaluate *missing* loads only — the
            predictors then see, learn from, and are scored on exactly the
            miss-address stream, the stream a prefetcher would act on).

    Returns:
        {predictor name: PredictionStats}.
    """
    stats = {name: PredictionStats() for name in predictors}
    confidence = {
        name: None if isinstance(p, MarkovPredictor) else ConfidenceTable()
        for name, p in predictors.items()
    }
    items = list(predictors.items())
    for insn in trace:
        if insn.op is not OpClass.LOAD:
            continue
        if miss_filter is not None and not miss_filter(insn):
            continue
        pc, actual = insn.pc, insn.addr
        for name, predictor in items:
            conf = confidence[name]
            if conf is None:
                predicted, is_confident = predictor.predict_confident(pc)
            else:
                predicted = predictor.predict(pc)
                is_confident = predicted is not None and conf.is_confident(pc)
            stats[name].record(predicted, actual, is_confident)
            if conf is not None and predicted is not None:
                conf.train(pc, predicted == actual)
            predictor.update(pc, actual)
    return stats


def warm_then_measure(
    trace_factory,
    predictors: Mapping[str, ValuePredictor],
    warmup: int,
    measure: int,
    gated: bool = False,
) -> Dict[str, PredictionStats]:
    """Skip-then-measure evaluation mirroring the paper's fast-forwarding.

    The paper skips 200M-500M instructions before measuring; we warm the
    predictors on the first *warmup* instructions (training but not
    scoring) and report statistics over the next *measure* instructions.

    Args:
        trace_factory: callable returning an instruction iterator.
    """
    stream = trace_factory()
    warm: List[Instruction] = []
    body: List[Instruction] = []
    for i, insn in enumerate(stream):
        if i < warmup:
            warm.append(insn)
        elif i < warmup + measure:
            body.append(insn)
        else:
            break
    run_value_prediction(warm, predictors, gated=False)
    return run_value_prediction(body, predictors, gated=gated)
