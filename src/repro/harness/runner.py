"""Trace-driven predictor evaluation.

These runners implement the paper's *profile* methodology (Sections 2-3 and
6): walk the committed instruction stream in program order, offer each
relevant instruction to every predictor at its "dispatch", and train with
the actual outcome at its "write-back" — which, in a profile run, happens
immediately.  Pipeline-timed evaluation (value delay, SGVQ, HGVQ, IPC)
lives in :mod:`repro.pipeline`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..predictors.base import PredictionStats, ValuePredictor
from ..predictors.confidence import ConfidenceTable
from ..predictors.markov import MarkovPredictor
from ..trace.isa import Instruction, OpClass

#: Value-producing instructions per windowed-accuracy sample
#: (``harness.window_accuracy.*`` series).
DEFAULT_WINDOW = 8192


def run_value_prediction(
    trace: Iterable[Instruction],
    predictors: Mapping[str, ValuePredictor],
    gated: bool = False,
    *,
    metrics=None,
    events=None,
    window: int = DEFAULT_WINDOW,
    on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
    progress_every: int = 8192,
    total: Optional[int] = None,
) -> Dict[str, PredictionStats]:
    """Run predictors over the value stream of *trace*.

    Every value-producing instruction is offered to every predictor:
    ``predict(pc)`` first, then ``update(pc, value)``.  With ``gated`` a
    fresh 3-bit confidence table (the paper's +2/−1, threshold-4 policy)
    accompanies each predictor and the gated accuracy/coverage fields of
    the returned stats are populated.

    Telemetry (all optional; the un-instrumented loop is unchanged beyond
    ``is not None`` guards):

    * *metrics*: a :class:`~repro.telemetry.MetricsRegistry`.  Publishes
      the ``harness.window_accuracy.<name>`` series (raw accuracy per
      *window* value instructions; plus ``harness.window_coverage.<name>``
      when gated) and, when gated, the confidence-gate transition counters
      ``harness.confidence_gained.<name>`` / ``harness.confidence_lost.<name>``.
    * *events*: an :class:`~repro.telemetry.EventRecorder`; each
      (instruction, predictor) outcome is offered as a structured event
      with pc / predicted / actual / confidence / matched GVQ distance.
    * *on_progress*: ``(instructions_processed, total)`` callback fired
      every *progress_every* instructions; *total* defaults to
      ``len(trace)`` when available.

    Returns:
        {predictor name: PredictionStats}.
    """
    stats = {name: PredictionStats() for name in predictors}
    confidence = {name: ConfidenceTable() if gated else None for name in predictors}
    items = list(predictors.items())
    if total is None and hasattr(trace, "__len__"):
        total = len(trace)
    track = metrics is not None
    if track:
        acc_series = {
            name: metrics.series_of(f"harness.window_accuracy.{name}")
            for name in predictors
        }
        cov_series = {
            name: metrics.series_of(f"harness.window_coverage.{name}")
            for name in predictors
        } if gated else {}
        gained = {
            name: metrics.counter(f"harness.confidence_gained.{name}")
            for name in predictors
        } if gated else {}
        lost = {
            name: metrics.counter(f"harness.confidence_lost.{name}")
            for name in predictors
        } if gated else {}
        win_correct = dict.fromkeys(predictors, 0)
        win_confident = dict.fromkeys(predictors, 0)
        win_attempts = 0
        value_instructions = metrics.counter("harness.value_instructions")
    processed = 0
    for insn in trace:
        processed += 1
        if on_progress is not None and processed % progress_every == 0:
            on_progress(processed, total)
        if not insn.produces_value:
            continue
        pc, actual = insn.pc, insn.value
        for name, predictor in items:
            predicted = predictor.predict(pc)
            conf = confidence[name]
            if conf is not None:
                is_confident = predicted is not None and conf.is_confident(pc)
                correct = stats[name].record(predicted, actual, is_confident)
                if predicted is not None:
                    conf.train(pc, predicted == actual)
                    if track and conf.is_confident(pc) != is_confident:
                        (gained if not is_confident else lost)[name].inc()
            else:
                is_confident = False
                correct = stats[name].record(predicted, actual)
            predictor.update(pc, actual)
            if events is not None and events.want():
                events.push({
                    "i": processed - 1,
                    "pc": pc,
                    "predictor": name,
                    "predicted": predicted,
                    "actual": actual,
                    "correct": correct,
                    "confident": is_confident if gated else None,
                    "distance": getattr(predictor, "last_distance", None),
                })
            if track:
                if correct:
                    win_correct[name] += 1
                if is_confident:
                    win_confident[name] += 1
        if track:
            win_attempts += 1
            if win_attempts >= window:
                for name in stats:
                    acc_series[name].append(win_correct[name] / win_attempts)
                    win_correct[name] = 0
                    if gated:
                        cov_series[name].append(
                            win_confident[name] / win_attempts)
                        win_confident[name] = 0
                win_attempts = 0
    if track and stats:
        value_instructions.inc(next(iter(stats.values())).attempts)
    if on_progress is not None:
        on_progress(processed, total)
    return stats


def run_address_prediction(
    trace: Iterable[Instruction],
    predictors: Mapping[str, ValuePredictor],
    miss_filter=None,
) -> Dict[str, PredictionStats]:
    """Run predictors over the load-address stream (Section 6).

    Only load instructions participate; the predicted quantity is the
    effective address.  PC-indexed predictors are gated by the 3-bit
    confidence mechanism; a :class:`MarkovPredictor` gates by tag match
    (its ``predict_confident``), as the paper specifies.

    Args:
        trace: instruction stream.
        predictors: {name: predictor}.
        miss_filter: optional callable ``(insn) -> bool``; when given, the
            run is restricted to loads for which it returns True (used with
            a D-cache model to evaluate *missing* loads only — the
            predictors then see, learn from, and are scored on exactly the
            miss-address stream, the stream a prefetcher would act on).

    Returns:
        {predictor name: PredictionStats}.
    """
    stats = {name: PredictionStats() for name in predictors}
    confidence = {
        name: None if isinstance(p, MarkovPredictor) else ConfidenceTable()
        for name, p in predictors.items()
    }
    items = list(predictors.items())
    for insn in trace:
        if insn.op is not OpClass.LOAD:
            continue
        if miss_filter is not None and not miss_filter(insn):
            continue
        pc, actual = insn.pc, insn.addr
        for name, predictor in items:
            conf = confidence[name]
            if conf is None:
                predicted, is_confident = predictor.predict_confident(pc)
            else:
                predicted = predictor.predict(pc)
                is_confident = predicted is not None and conf.is_confident(pc)
            stats[name].record(predicted, actual, is_confident)
            if conf is not None and predicted is not None:
                conf.train(pc, predicted == actual)
            predictor.update(pc, actual)
    return stats


def warm_then_measure(
    trace_factory,
    predictors: Mapping[str, ValuePredictor],
    warmup: int,
    measure: int,
    gated: bool = False,
) -> Dict[str, PredictionStats]:
    """Skip-then-measure evaluation mirroring the paper's fast-forwarding.

    The paper skips 200M-500M instructions before measuring; we warm the
    predictors on the first *warmup* instructions (training but not
    scoring) and report statistics over the next *measure* instructions.

    Args:
        trace_factory: callable returning an instruction iterator.
    """
    stream = trace_factory()
    warm: List[Instruction] = []
    body: List[Instruction] = []
    for i, insn in enumerate(stream):
        if i < warmup:
            warm.append(insn)
        elif i < warmup + measure:
            body.append(insn)
        else:
            break
    run_value_prediction(warm, predictors, gated=False)
    return run_value_prediction(body, predictors, gated=gated)
