"""Trace-driven predictor evaluation.

These runners implement the paper's *profile* methodology (Sections 2-3 and
6): walk the committed instruction stream in program order, offer each
relevant instruction to every predictor at its "dispatch", and train with
the actual outcome at its "write-back" — which, in a profile run, happens
immediately.  Pipeline-timed evaluation (value delay, SGVQ, HGVQ, IPC)
lives in :mod:`repro.pipeline`.

Fast path: a :class:`~repro.trace.packed.PackedTrace` exposes its
value-producing ``(pc, value)`` (and load ``(pc, addr)``) streams as
precomputed columns, so an un-instrumented profile run walks two flat
arrays per predictor instead of dereferencing one dataclass per dynamic
instruction.  Predictors with a fused kernel (see
:mod:`repro.core.kernels`) skip even the per-pair predict/update calls;
the rest use the tight per-predictor loops below.  All fast paths perform
*identical* accounting to the generic loop — same
:class:`PredictionStats` to the last counter (asserted by
``tests/test_packed.py`` and ``tests/test_kernel_equivalence.py``) — and
the generic loop remains the only path whenever telemetry, events or
progress callbacks need per-instruction interleaving.  ``REPRO_KERNELS=0``
forces the non-kernel loops.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.kernels import run_pairs as _kernel_pairs
from ..predictors.base import PredictionStats, ValuePredictor
from ..predictors.confidence import ConfidenceTable
from ..predictors.markov import MarkovPredictor
from ..trace.isa import Instruction, OpClass

#: Value-producing instructions per windowed-accuracy sample
#: (``harness.window_accuracy.*`` series).
DEFAULT_WINDOW = 8192


def _profile_pairs(predictor: ValuePredictor, pcs, values,
                   stats: PredictionStats) -> None:
    """Tight un-gated profile loop over packed ``(pc, value)`` columns.

    Runs one predictor over the whole stream with its methods bound once
    and the accounting held in locals; predictors are self-contained, so
    per-predictor passes see exactly the state they would interleaved.
    """
    predict = predictor.predict
    update = predictor.update
    predictions = 0
    correct = 0
    for pc, actual in zip(pcs, values):
        predicted = predict(pc)
        if predicted is not None:
            predictions += 1
            if predicted == actual:
                correct += 1
        update(pc, actual)
    stats.attempts += len(pcs)
    stats.predictions += predictions
    stats.correct += correct


def run_value_prediction(
    trace: Iterable[Instruction],
    predictors: Mapping[str, ValuePredictor],
    gated: bool = False,
    *,
    metrics=None,
    events=None,
    window: int = DEFAULT_WINDOW,
    on_progress: Optional[Callable[[int, Optional[int]], None]] = None,
    progress_every: int = 8192,
    total: Optional[int] = None,
) -> Dict[str, PredictionStats]:
    """Run predictors over the value stream of *trace*.

    Every value-producing instruction is offered to every predictor:
    ``predict(pc)`` first, then ``update(pc, value)``.  With ``gated`` a
    fresh 3-bit confidence table (the paper's +2/−1, threshold-4 policy)
    accompanies each predictor and the gated accuracy/coverage fields of
    the returned stats are populated.

    Telemetry (all optional; the un-instrumented loop is unchanged beyond
    ``is not None`` guards):

    * *metrics*: a :class:`~repro.telemetry.MetricsRegistry`.  Publishes
      the ``harness.window_accuracy.<name>`` series (raw accuracy per
      *window* value instructions; plus ``harness.window_coverage.<name>``
      when gated) and, when gated, the confidence-gate transition counters
      ``harness.confidence_gained.<name>`` / ``harness.confidence_lost.<name>``.
    * *events*: an :class:`~repro.telemetry.EventRecorder`; each
      (instruction, predictor) outcome is offered as a structured event
      with pc / predicted / actual / confidence / matched GVQ distance.
    * *on_progress*: ``(instructions_processed, total)`` callback fired
      every *progress_every* instructions; *total* defaults to
      ``len(trace)`` when available.

    Returns:
        {predictor name: PredictionStats}.
    """
    stats = {name: PredictionStats() for name in predictors}
    if (metrics is None and events is None and on_progress is None
            and hasattr(trace, "value_pairs")):
        pcs, values = trace.value_pairs()
        if not gated:
            for name, predictor in predictors.items():
                if not _kernel_pairs(predictor, pcs, values, stats[name]):
                    _profile_pairs(predictor, pcs, values, stats[name])
            return stats
        for name, predictor in predictors.items():
            conf = ConfidenceTable()
            if not _kernel_pairs(predictor, pcs, values, stats[name], conf):
                _gated_pairs(predictor, conf, pcs, values, stats[name])
        return stats
    confidence = {name: ConfidenceTable() if gated else None for name in predictors}
    # Per-predictor memo of each confidence slot's current gate state:
    # ConfidenceTable.train returns the post-train state, so the gate is
    # probed at most once per slot for its whole lifetime instead of twice
    # per (instruction, predictor).
    conf_state: Dict[str, Dict[int, bool]] = {name: {} for name in predictors}
    items = list(predictors.items())
    if total is None and hasattr(trace, "__len__"):
        total = len(trace)
    track = metrics is not None
    if track:
        acc_series = {
            name: metrics.series_of(f"harness.window_accuracy.{name}")
            for name in predictors
        }
        cov_series = {
            name: metrics.series_of(f"harness.window_coverage.{name}")
            for name in predictors
        } if gated else {}
        gained = {
            name: metrics.counter(f"harness.confidence_gained.{name}")
            for name in predictors
        } if gated else {}
        lost = {
            name: metrics.counter(f"harness.confidence_lost.{name}")
            for name in predictors
        } if gated else {}
        win_correct = dict.fromkeys(predictors, 0)
        win_confident = dict.fromkeys(predictors, 0)
        win_attempts = 0
        value_instructions = metrics.counter("harness.value_instructions")
    processed = 0
    for insn in trace:
        processed += 1
        if on_progress is not None and processed % progress_every == 0:
            on_progress(processed, total)
        if not insn.produces_value:
            continue
        pc, actual = insn.pc, insn.value
        for name, predictor in items:
            predicted = predictor.predict(pc)
            conf = confidence[name]
            if conf is not None:
                state = conf_state[name]
                slot = conf.index(pc)
                confident_now = state.get(slot)
                if confident_now is None:
                    confident_now = conf.is_confident(pc)
                    state[slot] = confident_now
                is_confident = predicted is not None and confident_now
                correct = stats[name].record(predicted, actual, is_confident)
                if predicted is not None:
                    confident_after = conf.train(pc, predicted == actual)
                    state[slot] = confident_after
                    if track and confident_after != confident_now:
                        (gained if not confident_now else lost)[name].inc()
            else:
                is_confident = False
                correct = stats[name].record(predicted, actual)
            predictor.update(pc, actual)
            if events is not None and events.want():
                events.push({
                    "i": processed - 1,
                    "pc": pc,
                    "predictor": name,
                    "predicted": predicted,
                    "actual": actual,
                    "correct": correct,
                    "confident": is_confident if gated else None,
                    "distance": getattr(predictor, "last_distance", None),
                })
            if track:
                if correct:
                    win_correct[name] += 1
                if is_confident:
                    win_confident[name] += 1
        if track:
            win_attempts += 1
            if win_attempts >= window:
                for name in stats:
                    acc_series[name].append(win_correct[name] / win_attempts)
                    win_correct[name] = 0
                    if gated:
                        cov_series[name].append(
                            win_confident[name] / win_attempts)
                        win_confident[name] = 0
                win_attempts = 0
    if track and stats:
        value_instructions.inc(next(iter(stats.values())).attempts)
    if on_progress is not None:
        on_progress(processed, total)
    return stats


def _gated_pairs(predictor: ValuePredictor, conf: ConfidenceTable,
                 pcs, values, stats: PredictionStats) -> None:
    """Tight confidence-gated loop over packed ``(pc, value)`` columns.

    The single-predictor form of the generic gated loop (same memoised
    gate state, same record/train interleaving); also the Section 6 loop
    for PC-indexed address predictors.
    """
    update = predictor.update
    record = stats.record
    predict = predictor.predict
    train = conf.train
    index = conf.index
    is_conf = conf.is_confident
    state: Dict[int, bool] = {}
    for pc, actual in zip(pcs, values):
        predicted = predict(pc)
        slot = index(pc)
        confident_now = state.get(slot)
        if confident_now is None:
            confident_now = is_conf(pc)
        record(predicted, actual, predicted is not None and confident_now)
        if predicted is not None:
            confident_now = train(pc, predicted == actual)
        state[slot] = confident_now
        update(pc, actual)


def _address_pairs(predictor: ValuePredictor, conf: Optional[ConfidenceTable],
                   pcs, addrs, stats: PredictionStats) -> None:
    """Tight Section 6 loop over packed load ``(pc, addr)`` columns."""
    if conf is not None:
        _gated_pairs(predictor, conf, pcs, addrs, stats)
        return
    update = predictor.update
    record = stats.record
    predict_confident = predictor.predict_confident
    for pc, actual in zip(pcs, addrs):
        predicted, is_confident = predict_confident(pc)
        record(predicted, actual, is_confident)
        update(pc, actual)


def run_address_prediction(
    trace: Iterable[Instruction],
    predictors: Mapping[str, ValuePredictor],
    miss_filter=None,
) -> Dict[str, PredictionStats]:
    """Run predictors over the load-address stream (Section 6).

    Only load instructions participate; the predicted quantity is the
    effective address.  PC-indexed predictors are gated by the 3-bit
    confidence mechanism; a :class:`MarkovPredictor` gates by tag match
    (its ``predict_confident``), as the paper specifies.

    Args:
        trace: instruction stream.
        predictors: {name: predictor}.
        miss_filter: optional callable ``(insn) -> bool``; when given, the
            run is restricted to loads for which it returns True (used with
            a D-cache model to evaluate *missing* loads only — the
            predictors then see, learn from, and are scored on exactly the
            miss-address stream, the stream a prefetcher would act on).
            A miss filter forces the generic instruction-object loop (the
            filter inspects instructions and is usually stateful).

    Returns:
        {predictor name: PredictionStats}.
    """
    stats = {name: PredictionStats() for name in predictors}
    confidence = {
        name: None if isinstance(p, MarkovPredictor) else ConfidenceTable()
        for name, p in predictors.items()
    }
    if miss_filter is None and hasattr(trace, "load_pairs"):
        pcs, addrs = trace.load_pairs()
        for name, predictor in predictors.items():
            conf = confidence[name]
            if conf is None or not _kernel_pairs(predictor, pcs, addrs,
                                                 stats[name], conf):
                _address_pairs(predictor, conf, pcs, addrs, stats[name])
        return stats
    items = list(predictors.items())
    for insn in trace:
        if insn.op is not OpClass.LOAD:
            continue
        if miss_filter is not None and not miss_filter(insn):
            continue
        pc, actual = insn.pc, insn.addr
        for name, predictor in items:
            conf = confidence[name]
            if conf is None:
                predicted, is_confident = predictor.predict_confident(pc)
            else:
                predicted = predictor.predict(pc)
                is_confident = predicted is not None and conf.is_confident(pc)
            stats[name].record(predicted, actual, is_confident)
            if conf is not None and predicted is not None:
                conf.train(pc, predicted == actual)
            predictor.update(pc, actual)
    return stats


def warm_then_measure(
    trace_factory,
    predictors: Mapping[str, ValuePredictor],
    warmup: int,
    measure: int,
    gated: bool = False,
) -> Dict[str, PredictionStats]:
    """Skip-then-measure evaluation mirroring the paper's fast-forwarding.

    The paper skips 200M-500M instructions before measuring; we warm the
    predictors on the first *warmup* instructions (training but not
    scoring) and report statistics over the next *measure* instructions.
    Both phases stream straight off the source iterator — nothing is
    buffered, so arbitrarily long (even endless) workload generators are
    fine.

    Args:
        trace_factory: callable returning an instruction iterator, or an
            already-materialised iterable (e.g. a :class:`Trace` /
            :class:`~repro.trace.packed.PackedTrace`), which is consumed
            in place without re-buffering.
    """
    stream = iter(trace_factory() if callable(trace_factory) else trace_factory)
    run_value_prediction(itertools.islice(stream, warmup), predictors,
                         gated=False)
    return run_value_prediction(itertools.islice(stream, measure), predictors,
                                gated=gated)
