"""Fixed-width machine-word arithmetic helpers.

The paper's predictors operate on 32-bit (or 64-bit) register values; all
difference and sum computations in prediction tables wrap around at the
machine word width.  Every predictor in this package performs its arithmetic
through these helpers so that value/stride semantics are consistent and
hardware-faithful (two's-complement wraparound, not Python bignums).
"""

from __future__ import annotations

#: Word width, in bits, used throughout the simulation.  The paper targets a
#: MIPS-like 32/64-bit machine; we standardise on 64-bit words.
WORD_BITS = 64

#: Bit mask selecting the low :data:`WORD_BITS` bits of an integer.
WORD_MASK = (1 << WORD_BITS) - 1

#: Half of the value space; used for interpreting words as signed numbers.
_SIGN_BIT = 1 << (WORD_BITS - 1)


def wrap(value: int) -> int:
    """Reduce *value* to an unsigned machine word (two's complement wrap)."""
    return value & WORD_MASK


def wadd(a: int, b: int) -> int:
    """Return ``a + b`` with machine-word wraparound."""
    return (a + b) & WORD_MASK


def wsub(a: int, b: int) -> int:
    """Return ``a - b`` with machine-word wraparound.

    This is the *difference* operator used by stride predictors and by the
    gDiff prediction table: the result is the unsigned word that, added back
    to ``b``, reproduces ``a``.
    """
    return (a - b) & WORD_MASK


def to_signed(word: int) -> int:
    """Interpret an unsigned machine word as a signed integer.

    Useful for reporting strides in a human-readable way (e.g. a stride of
    ``-8`` rather than ``2**64 - 8``).
    """
    word &= WORD_MASK
    if word & _SIGN_BIT:
        return word - (1 << WORD_BITS)
    return word


def from_signed(value: int) -> int:
    """Encode a (possibly negative) integer as an unsigned machine word."""
    return value & WORD_MASK
