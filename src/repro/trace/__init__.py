"""Trace model and synthetic workload infrastructure.

The reproduction is trace driven: :mod:`repro.trace.isa` defines the
dynamic-instruction record, :mod:`repro.trace.trace` the trace containers,
:mod:`repro.trace.kernels` the value-stream building blocks, and
:mod:`repro.trace.workloads` the ten SPECint2000-like benchmark generators.
"""

from .isa import NUM_REGS, Instruction, OpClass, branch, ialu, load, store
from .packed import PackedTrace, pack_trace
from .trace import Trace, TraceStats, load_address_stream, take, value_stream

__all__ = [
    "Instruction",
    "OpClass",
    "NUM_REGS",
    "ialu",
    "load",
    "store",
    "branch",
    "Trace",
    "TraceStats",
    "PackedTrace",
    "pack_trace",
    "take",
    "value_stream",
    "load_address_stream",
]
