"""Adapter interface of the workload ingestion plane.

An ingest *adapter* turns one external source — a trace dump on disk, a
running Python program — into a stream of
:class:`~repro.trace.isa.Instruction` events that pack straight into
:class:`~repro.trace.packed.PackedTrace` columns.  Adapters are
streaming by contract: they yield events one at a time and never
materialise the object :class:`~repro.trace.trace.Trace`, so importing a
multi-gigabyte dump needs memory proportional to the *packed* columns,
not to a list of instruction objects.

Every adapter reports malformed input as
:class:`~repro.trace.io.IngestError` carrying the offending byte offset
(binary sources) or line number (text sources) — never a bare
``struct.error`` / ``ValueError`` / ``UnicodeDecodeError``.

Telemetry contract (docs/TELEMETRY.md): the import driver counts
``ingest.events`` (instructions packed) and ``ingest.dropped`` (source
records skipped as unrepresentable), and times each conversion under the
``ingest.<adapter>`` phase.
"""

from __future__ import annotations

import gzip
from abc import ABC, abstractmethod
from pathlib import Path
from typing import IO, Dict, Iterator, Optional, Union

from ..io import IngestError
from ..isa import Instruction
from ..packed import PackedTrace

__all__ = ["IngestError", "TraceAdapter", "register", "get_adapter",
           "adapter_names", "open_source"]


def open_source(path: Union[str, Path], mode: str = "rb") -> IO:
    """Open an import source, transparently gunzipping ``*.gz`` files.

    Offsets reported in :class:`IngestError` are offsets into the
    *decompressed* stream for gzip sources.
    """
    path = Path(path)
    if path.suffix == ".gz":
        if "t" in mode:
            return gzip.open(path, mode, encoding="utf-8")
        return gzip.open(path, mode)
    if "t" in mode:
        return open(path, mode, encoding="utf-8")
    return open(path, mode)


class TraceAdapter(ABC):
    """One external stream format the ingestion plane understands.

    Subclasses set :attr:`name` (the ``--format`` CLI token and the
    manifest's ``adapter`` field) and implement :meth:`events`, a
    generator over :class:`Instruction` records.  Adapters that cannot
    stream (live capture has to run the program to completion) override
    :meth:`packed` instead and build the columns directly.
    """

    #: Registry key, CLI ``--format`` token, manifest ``adapter`` field.
    name: str = ""
    #: One-line description shown by ``repro trace import --help``.
    description: str = ""
    #: File suffixes this adapter claims for format auto-detection
    #: (matched against the source name with any ``.gz`` stripped).
    suffixes: tuple = ()

    @abstractmethod
    def events(self, source: Union[str, Path],
               options: Optional[Dict[str, object]] = None,
               ) -> Iterator[Instruction]:
        """Yield the source's instruction events in order.

        Must raise :class:`IngestError` (with ``offset`` or ``line``)
        on malformed, truncated, or empty input.  Records the adapter
        cannot represent are skipped and counted on ``self.dropped``.
        """

    def packed(self, source: Union[str, Path],
               options: Optional[Dict[str, object]] = None,
               limit: Optional[int] = None, name: str = "trace",
               ) -> PackedTrace:
        """Convert *source* into a packed trace (streaming by default)."""
        stream = self.events(source, options)
        if limit is not None:
            stream = _limited(stream, limit)
        return PackedTrace.from_instructions(stream, name=name)

    #: Source records dropped by the last :meth:`events`/:meth:`packed`
    #: run (reset at the start of each conversion).
    dropped: int = 0

    def _reset(self) -> None:
        self.dropped = 0


def _limited(stream: Iterator[Instruction], limit: int):
    for index, insn in enumerate(stream):
        if index >= limit:
            return
        yield insn


_ADAPTERS: Dict[str, TraceAdapter] = {}


def register(adapter: TraceAdapter) -> TraceAdapter:
    """Add *adapter* to the registry (keyed by ``adapter.name``)."""
    if not adapter.name:
        raise ValueError("adapter has no name")
    _ADAPTERS[adapter.name] = adapter
    return adapter


def adapter_names() -> list:
    """Registered adapter names, sorted."""
    _load_builtin()
    return sorted(_ADAPTERS)


def get_adapter(name_or_source: Union[str, Path, TraceAdapter],
                source: Optional[Union[str, Path]] = None) -> TraceAdapter:
    """Resolve an adapter by name, or auto-detect one from *source*.

    ``get_adapter("csv")`` looks up the registry; ``get_adapter(None,
    path)`` (or a name of ``"auto"``) matches the path's suffix against
    each adapter's :attr:`~TraceAdapter.suffixes`.
    """
    _load_builtin()
    if isinstance(name_or_source, TraceAdapter):
        return name_or_source
    name = name_or_source
    if name is not None and name != "auto":
        try:
            return _ADAPTERS[str(name)]
        except KeyError:
            raise IngestError(
                f"unknown ingest format {name!r}; "
                f"choose from {sorted(_ADAPTERS)}") from None
    if source is None:
        raise IngestError("cannot auto-detect a format without a source")
    stem = Path(source).name
    if stem.endswith(".gz"):
        stem = stem[:-3]
    for adapter in _ADAPTERS.values():
        if any(stem.endswith(suffix) for suffix in adapter.suffixes):
            return adapter
    raise IngestError(f"cannot auto-detect a format for {stem!r}; "
                      f"pass --format (one of {sorted(_ADAPTERS)})",
                      source=source)


def _load_builtin() -> None:
    """Import the built-in adapter modules (registration side effect)."""
    from . import capture, formats  # noqa: F401
