"""Workload ingestion plane: external streams in, packed workloads out.

Three adapter families behind one :class:`TraceAdapter` interface:

* file-format importers (:mod:`.formats`) — the CSV/ndjson interchange
  format plus CVP-style and ChampSim-style binary dumps;
* live capture (:mod:`.capture`) — record a value trace from a running
  Python program via ``sys.settrace`` bytecode hooks;
* the adversarial synthetic bank lives with the other generators under
  :mod:`repro.trace.workloads.adversarial` (it needs no import step).

:mod:`.store` lands conversions in the imported-workload store with a
provenance manifest and exposes them as first-class workload specs.
CLI: ``repro trace import | list | info`` and ``repro workloads``.
"""

from .base import (IngestError, TraceAdapter, adapter_names, get_adapter,
                   register)
from .capture import capture_script
from .store import (ImportedWorkloadSpec, get_spec, import_trace,
                    imported_names, imported_root, load_imported, manifest,
                    remove)

__all__ = [
    "IngestError",
    "TraceAdapter",
    "adapter_names",
    "get_adapter",
    "register",
    "capture_script",
    "ImportedWorkloadSpec",
    "get_spec",
    "import_trace",
    "imported_names",
    "imported_root",
    "load_imported",
    "manifest",
    "remove",
]
