"""Imported-workload store: provenance manifests + first-class specs.

``import_trace`` drives one adapter over one source and lands the result
in the *imported store*: a directory (default ``<cache root>/imported``,
override with ``REPRO_IMPORT_DIR``) holding, per imported workload,

* ``<name>.rpt`` — the canonical packed trace in the checksummed binary
  cache format (:mod:`repro.trace.io`), and
* ``<name>.json`` — a provenance manifest: source path, source sha256,
  adapter, conversion options, event counts, the content sha256 of the
  packed columns, and timing.

Imported workloads are then first class: ``workloads.get(name)``
resolves them to an :class:`ImportedWorkloadSpec`, so the trace cache,
shared-memory plane, campaign scheduler, serve plane, and every
experiment consume them exactly like synthetic benchmarks.  The one
semantic difference — an imported trace is *finite* — is carried by
:attr:`ImportedWorkloadSpec.fixed_length`; the cache clamps requested
lengths to it (see :func:`repro.trace.cache.effective_length`), and
``code_copies`` / seed overrides are rejected or ignored (the stream is
recorded, not generated).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..io import TraceFormatError, load_packed, save_packed
from ..io import PACKED_FORMAT_VERSION
from ..packed import COLUMNS, PackedTrace
from ..synthetic import WorkloadSpec
from .base import IngestError, TraceAdapter, get_adapter

MANIFEST_SCHEMA = 1

ENTRY_SUFFIX = ".rpt"
MANIFEST_SUFFIX = ".json"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")

#: Suffixes stripped when deriving a workload name from a source path.
_STRIP_SUFFIXES = (".gz", ".csv", ".ndjson", ".jsonl", ".cvp",
                   ".champsimtrace", ".champsim", ".trace", ".py")


def imported_root() -> Path:
    """The imported-workload directory (not created until first import)."""
    env = os.environ.get("REPRO_IMPORT_DIR")
    if env:
        return Path(env)
    from ..cache import cache_root

    return cache_root() / "imported"


def trace_path(name: str) -> Path:
    return imported_root() / f"{name}{ENTRY_SUFFIX}"


def manifest_path(name: str) -> Path:
    return imported_root() / f"{name}{MANIFEST_SUFFIX}"


def derive_name(source: Union[str, Path]) -> str:
    """A valid workload name from a source path's stem."""
    stem = Path(source).name.lower()
    changed = True
    while changed:
        changed = False
        for suffix in _STRIP_SUFFIXES:
            if stem.endswith(suffix) and len(stem) > len(suffix):
                stem = stem[:-len(suffix)]
                changed = True
    cleaned = re.sub(r"[^a-z0-9._-]+", "-", stem).strip("-.")
    return cleaned[:64] or "imported"


def _builtin_names() -> set:
    from .. import workloads
    from ..workloads import adversarial

    return set(workloads.BENCHMARKS) | set(adversarial.SCENARIOS)


def validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise IngestError(
            f"bad workload name {name!r}: must match {_NAME_RE.pattern}")
    if name in _builtin_names():
        raise IngestError(f"workload name {name!r} shadows a built-in "
                          "benchmark; pick another with --name")
    return name


def _sha256_file(path: Path) -> Tuple[str, int]:
    digest = hashlib.sha256()
    nbytes = 0
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
            nbytes += len(chunk)
    return digest.hexdigest(), nbytes


def content_sha256(packed: PackedTrace) -> str:
    """Digest of the packed columns (the content-address of the trace)."""
    digest = hashlib.sha256()
    columns = packed.materialized_columns()
    for col, _tc in COLUMNS:
        digest.update(columns[col].tobytes())
    return digest.hexdigest()


def _write_atomic(path: Path, writer) -> int:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem,
                               suffix=".tmp")
    os.close(fd)
    try:
        nbytes = writer(tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return nbytes


def import_trace(source: Union[str, Path], *,
                 adapter: Union[str, TraceAdapter, None] = None,
                 name: Optional[str] = None, limit: Optional[int] = None,
                 force: bool = False,
                 options: Optional[Dict[str, object]] = None,
                 metrics=None) -> Dict[str, object]:
    """Convert *source* and register it as an imported workload.

    Returns the provenance manifest (also written next to the trace).
    Raises :class:`IngestError` on malformed input, name collisions, or
    an existing import of the same name without ``force``.
    """
    source = Path(source)
    if not source.exists():
        raise IngestError("no such source", source=source)
    resolved = get_adapter(adapter, source)
    workload_name = validate_name(name if name is not None
                                  else derive_name(source))
    dest = trace_path(workload_name)
    if dest.exists() and not force:
        raise IngestError(f"workload {workload_name!r} already imported "
                          "(re-run with --force to replace it)")
    source_sha, source_bytes = _sha256_file(source)
    options = dict(options or {})

    def convert() -> PackedTrace:
        return resolved.packed(source, options or None, limit=limit,
                               name=workload_name)

    started = time.perf_counter()
    if metrics is not None:
        with metrics.timer(f"ingest.{resolved.name}"):
            packed = convert()
    else:
        packed = convert()
    elapsed = time.perf_counter() - started
    if len(packed) == 0:
        raise IngestError("conversion produced no events", source=source)

    value_events = len(packed.value_pairs()[0])
    trace_bytes = _write_atomic(dest, lambda tmp: save_packed(packed, tmp))
    doc = {
        "schema": MANIFEST_SCHEMA,
        "name": workload_name,
        "adapter": resolved.name,
        "source": str(source),
        "source_sha256": source_sha,
        "source_bytes": source_bytes,
        "options": {k: _json_safe(v) for k, v in options.items()},
        "events": len(packed),
        "value_events": value_events,
        "dropped": resolved.dropped,
        "limit": limit,
        "elapsed_s": round(elapsed, 6),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "format_version": PACKED_FORMAT_VERSION,
        "content_sha256": content_sha256(packed),
        "trace_bytes": trace_bytes,
    }
    _write_atomic(manifest_path(workload_name),
                  lambda tmp: Path(tmp).write_text(
                      json.dumps(doc, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8"))
    if metrics is not None:
        metrics.counter("ingest.imports").inc()
        metrics.counter("ingest.events").inc(len(packed))
        metrics.counter("ingest.dropped").inc(resolved.dropped)
    return doc


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def imported_names() -> List[str]:
    """Names of every registered imported workload, sorted."""
    root = imported_root()
    if not root.is_dir():
        return []
    names = []
    for path in root.glob(f"*{MANIFEST_SUFFIX}"):
        if path.with_suffix(ENTRY_SUFFIX).exists():
            names.append(path.stem)
    return sorted(names)


def manifest(name: str) -> Dict[str, object]:
    """The provenance manifest of imported workload *name*."""
    path = manifest_path(name)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise IngestError(f"no imported workload {name!r} "
                          f"(known: {imported_names() or 'none'})") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise IngestError(f"unreadable manifest: {exc}",
                          source=path) from None
    if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
        raise IngestError("unsupported manifest schema", source=path)
    return doc


def load_imported(name: str) -> PackedTrace:
    """The canonical packed trace of imported workload *name*."""
    path = trace_path(name)
    if not path.exists():
        raise IngestError(f"no imported workload {name!r} "
                          f"(known: {imported_names() or 'none'})")
    return load_packed(path)


def remove(name: str) -> bool:
    """Delete an imported workload (trace + manifest); True if it existed."""
    existed = False
    for path in (trace_path(name), manifest_path(name)):
        try:
            path.unlink()
            existed = True
        except OSError:
            pass
    return existed


class ImportedWorkloadSpec(WorkloadSpec):
    """A recorded (finite) workload wearing the ``WorkloadSpec`` interface.

    ``seed`` is fixed at 0 and ignored by generation — the stream is a
    recording, not a generator — and ``code_copies`` other than 1 is an
    error (there is no static code to replicate).  ``fixed_length``
    carries the recording's event count; the trace cache clamps longer
    requests down to it.
    """

    def __init__(self, name: str, fixed_length: int, description: str = ""):
        super().__init__(name=name, groups=[], seed=0,
                         description=description)
        self.fixed_length = fixed_length

    def _check_copies(self, code_copies: int) -> None:
        if code_copies != 1:
            raise ValueError(
                f"imported workload {self.name!r} has no static code to "
                f"replicate (code_copies={code_copies})")

    def load_full(self) -> PackedTrace:
        """The whole recording as a packed trace (cache fast path)."""
        return load_imported(self.name)

    def generate(self, seed: Optional[int] = None,
                 code_copies: int = 1) -> Iterator:
        self._check_copies(code_copies)
        return iter(self.load_full())

    def trace(self, length: int, seed: Optional[int] = None,
              code_copies: int = 1):
        self._check_copies(code_copies)
        packed = self.load_full()
        return packed[:min(length, len(packed))].to_trace()


def get_spec(name: str) -> ImportedWorkloadSpec:
    """Resolve an imported workload name to its spec (manifest-backed)."""
    doc = manifest(name)
    description = f"imported via {doc.get('adapter')} from {doc.get('source')}"
    return ImportedWorkloadSpec(name, int(doc["events"]),
                                description=description)
