"""File-format import adapters: CSV/ndjson interchange, CVP, ChampSim.

All four adapters stream — one record in, one :class:`Instruction` out —
and report malformed input as :class:`IngestError` with the offending
line (text formats) or byte offset (binary formats).  Sources ending in
``.gz`` are gunzipped transparently; offsets then refer to the
decompressed stream.

**CSV / ndjson interchange format** (documented in docs/WORKLOADS.md):
one value-producing event per row, ``pc, value[, addr[, is_load]]``.
Integers are decimal or ``0x``-prefixed hex; negative values are encoded
as their 64-bit two's complement.  A row with a truthy ``is_load``
becomes a ``LOAD`` (with ``addr`` as its effective address), otherwise
an ``IALU``.  CSV accepts an optional header row naming those columns;
ndjson uses one JSON object per line with the same keys.

**CVP-style records** (``.cvp``): a flat sequence of little-endian
binary records, each a one-byte kind tag plus fixed fields — see
``_CVP_BODIES``.  This mirrors the shape of the Championship Value
Prediction traces (pc + result value per value-producing instruction,
plus memory/branch records) without their instruction-cracking layer.

**ChampSim-style records** (``.champsimtrace``): the 64-byte
``input_instr`` layout (ip, branch flags, 2 destination + 4 source
registers, 2 destination + 4 source memory addresses).  ChampSim traces
carry *no result values*, so the import convention is: a load's "value"
is its effective address — turning the trace into an address-value
workload in the spirit of the paper's Section 6 load-address streams —
and register-writing ALU instructions become non-value-producing.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..isa import Instruction, OpClass
from .base import IngestError, TraceAdapter, open_source, register

_WORD_MASK = (1 << 64) - 1

#: Destination register assigned to interchange-format events (the
#: predictors key on PC, not on the register number).
_INTERCHANGE_DEST = 1

_CSV_HEADER_NAMES = {"pc", "value", "addr", "is_load"}
_TRUTHY = {"1", "true", "t", "yes", "y"}
_FALSY = {"0", "false", "f", "no", "n", ""}


def _parse_word(token: str, line: int, source, what: str) -> int:
    token = token.strip()
    try:
        value = int(token, 0)
    except ValueError:
        raise IngestError(f"bad {what} field {token!r}",
                          source=source, line=line) from None
    return value & _WORD_MASK


def _parse_flag(token: str, line: int, source) -> bool:
    token = token.strip().lower()
    if token in _TRUTHY:
        return True
    if token in _FALSY:
        return False
    raise IngestError(f"bad is_load field {token!r}", source=source,
                      line=line)


def _interchange_event(pc: int, value: int, addr: Optional[int],
                       is_load: bool) -> Instruction:
    if is_load:
        return Instruction(pc=pc, op=OpClass.LOAD, dest=_INTERCHANGE_DEST,
                           value=value, addr=addr)
    return Instruction(pc=pc, op=OpClass.IALU, dest=_INTERCHANGE_DEST,
                       value=value, addr=addr)


class CsvAdapter(TraceAdapter):
    """``pc,value[,addr[,is_load]]`` rows, optional header line."""

    name = "csv"
    description = "CSV interchange rows: pc,value[,addr[,is_load]]"
    suffixes = (".csv",)

    def events(self, source: Union[str, Path],
               options: Optional[Dict[str, object]] = None,
               ) -> Iterator[Instruction]:
        self._reset()
        rows = 0
        lineno = 0
        try:
            with open_source(source, "rt") as fh:
                for lineno, raw in enumerate(fh, start=1):
                    line = raw.strip()
                    if not line or line.startswith("#"):
                        continue
                    fields = line.split(",")
                    if rows == 0 and _is_header(fields):
                        continue
                    if not 2 <= len(fields) <= 4:
                        raise IngestError(
                            f"expected 2-4 fields, got {len(fields)}",
                            source=source, line=lineno)
                    pc = _parse_word(fields[0], lineno, source, "pc")
                    value = _parse_word(fields[1], lineno, source, "value")
                    addr = None
                    if len(fields) > 2 and fields[2].strip():
                        addr = _parse_word(fields[2], lineno, source, "addr")
                    is_load = (len(fields) > 3
                               and _parse_flag(fields[3], lineno, source))
                    rows += 1
                    yield _interchange_event(pc, value, addr, is_load)
        except UnicodeDecodeError as exc:
            raise IngestError(f"not a text file: {exc}", source=source,
                              line=lineno + 1) from None
        if rows == 0:
            raise IngestError("no events in source", source=source)


def _is_header(fields) -> bool:
    names = {f.strip().lower() for f in fields}
    return bool(names) and names <= _CSV_HEADER_NAMES


class NdjsonAdapter(TraceAdapter):
    """One ``{"pc":.., "value":..[, "addr":..][, "is_load":..]}`` per line."""

    name = "ndjson"
    description = "ndjson interchange objects: pc/value/addr/is_load keys"
    suffixes = (".ndjson", ".jsonl")

    def events(self, source: Union[str, Path],
               options: Optional[Dict[str, object]] = None,
               ) -> Iterator[Instruction]:
        self._reset()
        rows = 0
        lineno = 0
        try:
            with open_source(source, "rt") as fh:
                for lineno, raw in enumerate(fh, start=1):
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise IngestError(f"bad JSON: {exc.msg}",
                                          source=source, line=lineno) from None
                    if not isinstance(obj, dict):
                        raise IngestError("expected a JSON object",
                                          source=source, line=lineno)
                    unknown = set(obj) - _CSV_HEADER_NAMES
                    if unknown:
                        raise IngestError(
                            f"unknown keys {sorted(unknown)}",
                            source=source, line=lineno)
                    try:
                        pc = int(obj["pc"]) & _WORD_MASK
                        value = int(obj["value"]) & _WORD_MASK
                    except (KeyError, TypeError, ValueError):
                        raise IngestError(
                            "each object needs integer 'pc' and 'value'",
                            source=source, line=lineno) from None
                    addr = obj.get("addr")
                    if addr is not None:
                        try:
                            addr = int(addr) & _WORD_MASK
                        except (TypeError, ValueError):
                            raise IngestError(
                                "bad 'addr'", source=source,
                                line=lineno) from None
                    rows += 1
                    yield _interchange_event(pc, value, addr,
                                             bool(obj.get("is_load")))
        except UnicodeDecodeError as exc:
            raise IngestError(f"not a text file: {exc}", source=source,
                              line=lineno + 1) from None
        if rows == 0:
            raise IngestError("no events in source", source=source)


# -- CVP-style binary records -------------------------------------------------

_CVP_ALU, _CVP_LOAD, _CVP_STORE, _CVP_BRANCH = range(4)
_CVP_BODIES = {
    _CVP_ALU: struct.Struct("<QQ"),      # pc, value
    _CVP_LOAD: struct.Struct("<QQQ"),    # pc, addr, value
    _CVP_STORE: struct.Struct("<QQ"),    # pc, addr
    _CVP_BRANCH: struct.Struct("<QBQ"),  # pc, taken, target
}


class CvpAdapter(TraceAdapter):
    """Tagged little-endian records: kind(u8) + per-kind fields."""

    name = "cvp"
    description = "CVP-style tagged binary records (alu/load/store/branch)"
    suffixes = (".cvp",)

    def events(self, source: Union[str, Path],
               options: Optional[Dict[str, object]] = None,
               ) -> Iterator[Instruction]:
        self._reset()
        offset = 0
        with open_source(source, "rb") as fh:
            read = fh.read
            while True:
                head = read(1)
                if not head:
                    break
                kind = head[0]
                body_struct = _CVP_BODIES.get(kind)
                if body_struct is None:
                    raise IngestError(f"unknown record kind {kind}",
                                      source=source, offset=offset)
                body = read(body_struct.size)
                if len(body) != body_struct.size:
                    raise IngestError(
                        f"truncated record (kind {kind}: got {len(body)} of "
                        f"{body_struct.size} body bytes)",
                        source=source, offset=offset)
                fields = body_struct.unpack(body)
                if kind == _CVP_ALU:
                    pc, value = fields
                    yield Instruction(pc=pc, op=OpClass.IALU,
                                      dest=_INTERCHANGE_DEST, value=value)
                elif kind == _CVP_LOAD:
                    pc, addr, value = fields
                    yield Instruction(pc=pc, op=OpClass.LOAD,
                                      dest=_INTERCHANGE_DEST, value=value,
                                      addr=addr)
                elif kind == _CVP_STORE:
                    pc, addr = fields
                    yield Instruction(pc=pc, op=OpClass.STORE, addr=addr)
                else:
                    pc, taken, target = fields
                    yield Instruction(pc=pc, op=OpClass.BRANCH,
                                      taken=bool(taken), target=target)
                offset += 1 + body_struct.size
        if offset == 0:
            raise IngestError("no events in source", source=source)


def write_cvp(events: "Iterator[Instruction]", path: Union[str, Path]) -> int:
    """Write *events* as CVP-style records (test/benchmark helper)."""
    count = 0
    with open(path, "wb") as fh:
        for insn in events:
            if insn.op is OpClass.LOAD:
                fh.write(bytes([_CVP_LOAD]))
                fh.write(_CVP_BODIES[_CVP_LOAD].pack(
                    insn.pc, insn.addr or 0, insn.value or 0))
            elif insn.op is OpClass.STORE:
                fh.write(bytes([_CVP_STORE]))
                fh.write(_CVP_BODIES[_CVP_STORE].pack(insn.pc, insn.addr or 0))
            elif insn.op is OpClass.BRANCH:
                fh.write(bytes([_CVP_BRANCH]))
                fh.write(_CVP_BODIES[_CVP_BRANCH].pack(
                    insn.pc, int(bool(insn.taken)), insn.target or 0))
            else:
                fh.write(bytes([_CVP_ALU]))
                fh.write(_CVP_BODIES[_CVP_ALU].pack(insn.pc, insn.value or 0))
            count += 1
    return count


# -- ChampSim-style fixed records ---------------------------------------------

#: ChampSim's ``input_instr``: ip, is_branch, branch_taken,
#: destination_registers[2], source_registers[4],
#: destination_memory[2], source_memory[4] — 64 bytes little-endian.
_CHAMPSIM_RECORD = struct.Struct("<QBB2B4B2Q4Q")
_CHAMPSIM_SIZE = _CHAMPSIM_RECORD.size
assert _CHAMPSIM_SIZE == 64
_SRC_REG_MASK = 0x3F  # packed srcs hold 6-bit register numbers


class ChampSimAdapter(TraceAdapter):
    """64-byte ChampSim ``input_instr`` records (loads: value := address)."""

    name = "champsim"
    description = ("ChampSim 64-byte input_instr records "
                   "(load value := effective address)")
    suffixes = (".champsimtrace", ".champsim")

    def events(self, source: Union[str, Path],
               options: Optional[Dict[str, object]] = None,
               ) -> Iterator[Instruction]:
        self._reset()
        offset = 0
        with open_source(source, "rb") as fh:
            while True:
                record = fh.read(_CHAMPSIM_SIZE)
                if not record:
                    break
                if len(record) != _CHAMPSIM_SIZE:
                    raise IngestError(
                        f"truncated record (got {len(record)} of "
                        f"{_CHAMPSIM_SIZE} bytes)", source=source,
                        offset=offset)
                (ip, is_branch, taken, d0, d1, s0, s1, s2, s3,
                 dmem0, dmem1, smem0, smem1, smem2, smem3,
                 ) = _CHAMPSIM_RECORD.unpack(record)
                srcs = tuple(r & _SRC_REG_MASK for r in (s0, s1, s2, s3) if r)
                if is_branch:
                    yield Instruction(pc=ip, op=OpClass.BRANCH, srcs=srcs,
                                      taken=bool(taken))
                elif smem0:
                    # No result values in this format: a load's "value"
                    # is its effective address (Section 6 convention).
                    yield Instruction(pc=ip, op=OpClass.LOAD,
                                      dest=d0 or _INTERCHANGE_DEST,
                                      srcs=srcs, value=smem0, addr=smem0)
                elif dmem0:
                    yield Instruction(pc=ip, op=OpClass.STORE, srcs=srcs,
                                      addr=dmem0)
                elif d0 or d1:
                    yield Instruction(pc=ip, op=OpClass.IALU,
                                      dest=d0 or d1, srcs=srcs)
                else:
                    yield Instruction(pc=ip, op=OpClass.NOP)
                offset += _CHAMPSIM_SIZE
        if offset == 0:
            raise IngestError("no events in source", source=source)


def write_champsim(records, path: Union[str, Path]) -> int:
    """Write raw ``(ip, is_branch, taken, dregs, sregs, dmem, smem)``
    tuples as ChampSim records (test/benchmark helper)."""
    count = 0
    with open(path, "wb") as fh:
        for ip, is_branch, taken, dregs, sregs, dmem, smem in records:
            dregs = (tuple(dregs) + (0, 0))[:2]
            sregs = (tuple(sregs) + (0, 0, 0, 0))[:4]
            dmem = (tuple(dmem) + (0, 0))[:2]
            smem = (tuple(smem) + (0, 0, 0, 0))[:4]
            fh.write(_CHAMPSIM_RECORD.pack(ip, int(is_branch), int(taken),
                                           *dregs, *sregs, *dmem, *smem))
            count += 1
    return count


register(CsvAdapter())
register(NdjsonAdapter())
register(CvpAdapter())
register(ChampSimAdapter())
