"""Live capture: record a value trace from a running Python program.

``capture_script(path)`` runs the target script in-process under a
``sys.settrace`` opcode-level hook (``frame.f_trace_opcodes``) and
records one value event per integer store the program executes:

* **pc** — a synthetic static address encoding (code object, bytecode
  offset): ``0x7C00_0000_0000 | code_index << 20 | offset``.  Distinct
  static store sites therefore get distinct, stable PCs within a run.
* **value** — the integer written by ``STORE_FAST`` / ``STORE_NAME`` /
  ``STORE_GLOBAL`` (read back from the frame after the store retires),
  masked to a 64-bit machine word.  Non-integer stores are counted as
  *dropped*, not recorded.
* **op class** — ``LOAD`` when the value came straight from a subscript
  or attribute read (the bytecode preceding the store), else ``IALU``.
* **dest** — a stable hash (CRC-32) of the variable name, so repeated
  stores to one name look like writes to one architectural register.

Integer return values of in-scope calls are recorded the same way.

Caveats (also in docs/WORKLOADS.md): only integer values are
representable; opcode-level tracing disables the specializing
interpreter, so the captured program runs 10-100x slower than bare; the
``scope`` option bounds what is traced (default: only the script file
itself, so stdlib and site-packages churn stay out of the stream); and
``EXTENDED_ARG``-prefixed stores (functions with >256 locals) may
resolve to the wrong name and are then dropped.

The capture adapter cannot stream (the program must run to completion),
so it packs events straight into :class:`PackedTrace` columns — no
object ``Trace``, no instruction list.
"""

from __future__ import annotations

import dis
import runpy
import sys
import zlib
from array import array
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..isa import OpClass
from ..packed import (COLUMNS, FLAG_ADDR, FLAG_DEST, FLAG_PRODUCES,
                      FLAG_VALUE, PackedTrace)
from .base import IngestError, TraceAdapter, register

_WORD_MASK = (1 << 64) - 1
_PC_BASE = 0x7C00_0000_0000
_OFFSET_BITS = 20
_OFFSET_MASK = (1 << _OFFSET_BITS) - 1

#: Store opcodes that produce a recordable event, mapped to the frame
#: namespace the stored value is read back from.
_STORE_OPS = {"STORE_FAST": "locals", "STORE_NAME": "locals",
              "STORE_GLOBAL": "globals"}
#: Bytecodes whose result, when stored, marks the event as a LOAD.
_LOAD_SOURCES = {"BINARY_SUBSCR", "LOAD_ATTR", "BINARY_SLICE", "LOAD_METHOD"}

_MISSING = object()


class _ColumnBuilder:
    """Append value-producing events straight into packed columns."""

    __slots__ = ("cols", "count")

    def __init__(self) -> None:
        self.cols = {col: array(tc) for col, tc in COLUMNS}
        self.count = 0

    def add(self, pc: int, op: OpClass, dest: int, value: int,
            addr: Optional[int] = None) -> None:
        flag = FLAG_DEST | FLAG_VALUE | FLAG_PRODUCES
        if addr is not None:
            flag |= FLAG_ADDR
        cols = self.cols
        cols["pcs"].append(pc & _WORD_MASK)
        cols["ops"].append(int(op))
        cols["flags"].append(flag)
        cols["dests"].append(dest & 0xFF)
        cols["srcs"].append(0)
        cols["values"].append(value & _WORD_MASK)
        cols["addrs"].append(0 if addr is None else addr & _WORD_MASK)
        cols["targets"].append(0)
        cols["latency"].append(0)
        self.count += 1

    def build(self, name: str) -> PackedTrace:
        return PackedTrace(self.cols, name=name)


def _stable_dest(name: str) -> int:
    return zlib.crc32(name.encode("utf-8")) & 0xFF


class _CaptureSession:
    """One ``sys.settrace`` run over a target script."""

    def __init__(self, script: Path, scope: str = "script",
                 limit: Optional[int] = None) -> None:
        self.script = str(script)
        self.script_dir = str(script.parent)
        self.scope = scope
        self.limit = limit
        self.builder = _ColumnBuilder()
        self.dropped = 0
        # Keyed by the code object itself: holding the reference pins
        # it, so ids can't be recycled into colliding PCs.
        self._code_ids: Dict[object, int] = {}
        self._pending: Dict[int, Tuple] = {}
        self._prev_op: Dict[int, str] = {}
        self._done = False

    # -- scope -----------------------------------------------------------
    def _in_scope(self, code) -> bool:
        filename = code.co_filename
        if self.scope == "all":
            return "/repro/trace/ingest/" not in filename.replace("\\", "/")
        if self.scope == "tree":
            return (filename == self.script
                    or filename.startswith(self.script_dir))
        return filename == self.script

    def _pc(self, code, offset: int) -> int:
        code_id = self._code_ids.setdefault(code, len(self._code_ids))
        return (_PC_BASE | (code_id << _OFFSET_BITS)
                | (offset & _OFFSET_MASK))

    # -- trace hooks -----------------------------------------------------
    def global_trace(self, frame, event, arg):
        if event != "call" or self._done:
            return None
        if not self._in_scope(frame.f_code):
            return None
        frame.f_trace_opcodes = True
        return self.local_trace

    def local_trace(self, frame, event, arg):
        if self._done:
            frame.f_trace = None
            frame.f_trace_opcodes = False
            return None
        key = id(frame)
        if event == "opcode":
            pending = self._pending.pop(key, None)
            if pending is not None:
                self._resolve(frame, pending)
            self._decode(frame, key)
        elif event == "return":
            pending = self._pending.pop(key, None)
            if pending is not None:
                self._resolve(frame, pending)
            self._prev_op.pop(key, None)
            if isinstance(arg, int):
                self._emit(self._pc(frame.f_code, frame.f_lasti),
                           OpClass.IALU, _stable_dest("<return>"), arg)
        return self.local_trace

    def _decode(self, frame, key: int) -> None:
        code = frame.f_code
        raw = code.co_code
        offset = frame.f_lasti
        opname = _OPNAME[raw[offset]]
        namespace = _STORE_OPS.get(opname)
        if namespace is not None:
            arg = raw[offset + 1] if offset + 1 < len(raw) else 0
            names = (code.co_varnames if opname == "STORE_FAST"
                     else code.co_names)
            if arg < len(names):
                is_load = self._prev_op.get(key) in _LOAD_SOURCES
                self._pending[key] = (names[arg], namespace,
                                      self._pc(code, offset), is_load)
            else:
                self.dropped += 1
        self._prev_op[key] = opname

    def _resolve(self, frame, pending: Tuple) -> None:
        name, namespace, pc, is_load = pending
        scope = frame.f_locals if namespace == "locals" else frame.f_globals
        value = scope.get(name, _MISSING)
        if value is _MISSING or not isinstance(value, int):
            self.dropped += 1
            return
        op = OpClass.LOAD if is_load else OpClass.IALU
        self._emit(pc, op, _stable_dest(name), int(value))

    def _emit(self, pc: int, op: OpClass, dest: int, value: int) -> None:
        self.builder.add(pc, op, dest, value,
                         addr=pc if op is OpClass.LOAD else None)
        if self.limit is not None and self.builder.count >= self.limit:
            self._done = True
            sys.settrace(None)

    # -- driving ---------------------------------------------------------
    def run(self, argv: Tuple[str, ...] = ()) -> None:
        saved_argv = sys.argv
        sys.argv = [self.script, *argv]
        sys.settrace(self.global_trace)
        try:
            runpy.run_path(self.script, run_name="__main__")
        except SystemExit:
            pass
        except IngestError:
            raise
        except BaseException as exc:
            raise IngestError(
                f"captured script raised {type(exc).__name__}: {exc}",
                source=self.script) from exc
        finally:
            sys.settrace(None)
            sys.argv = saved_argv


_OPNAME = dis.opname


def capture_script(script: Union[str, Path], argv: Tuple[str, ...] = (),
                   scope: str = "script", limit: Optional[int] = None,
                   name: str = "capture",
                   ) -> Tuple[PackedTrace, int]:
    """Run *script* under the capture hook; return ``(trace, dropped)``."""
    script = Path(script).resolve()
    if not script.exists():
        raise IngestError("no such script", source=script)
    if scope not in ("script", "tree", "all"):
        raise IngestError(f"unknown capture scope {scope!r} "
                          "(choose script, tree, or all)")
    session = _CaptureSession(script, scope=scope, limit=limit)
    session.run(tuple(argv))
    if session.builder.count == 0:
        raise IngestError("captured no integer value events "
                          "(does the script store ints?)", source=script)
    return session.builder.build(name), session.dropped


class CaptureAdapter(TraceAdapter):
    """Adapter wrapper so ``--capture`` flows through the import driver.

    Options: ``argv`` (tuple of script arguments), ``scope``
    (``script`` | ``tree`` | ``all``).
    """

    name = "capture"
    description = "run a Python script under sys.settrace and record stores"
    suffixes = ()  # never auto-detected; requested explicitly

    def events(self, source, options=None) -> Iterator:
        # Capture cannot stream (the program must finish first); the
        # packed columns are built directly, then iterated if a caller
        # really wants objects.
        return iter(self.packed(source, options))

    def packed(self, source, options=None, limit=None,
               name: str = "trace") -> PackedTrace:
        self._reset()
        options = options or {}
        trace, dropped = capture_script(
            source, argv=tuple(options.get("argv", ())),
            scope=str(options.get("scope", "script")),
            limit=limit, name=name)
        self.dropped = dropped
        return trace


register(CaptureAdapter())
