"""Packed structure-of-arrays trace: the harness fast path.

A :class:`PackedTrace` stores one column per instruction field in parallel
``array`` columns instead of a list of :class:`~repro.trace.isa.Instruction`
dataclasses.  A 100K-instruction trace shrinks from tens of megabytes of
Python objects to a few flat buffers, slicing is a zero-copy view over the
shared columns, and the profile runners can walk precomputed
``(pc, value)`` / ``(pc, addr)`` column pairs instead of performing
per-instruction attribute and property lookups.

Field encoding (one entry per dynamic instruction):

* ``pcs`` / ``values`` / ``addrs`` / ``targets`` — unsigned 64-bit machine
  words (``array('Q')``); absent fields read 0 and are masked by *flags*.
* ``ops`` — :class:`~repro.trace.isa.OpClass` value (``array('B')``).
* ``flags`` — per-field presence bits plus the precomputed
  ``produces_value`` bit (``array('B')``), so the hot loops test a single
  integer AND instead of a three-attribute property.
* ``dests`` / ``latency`` — small unsigned bytes (``array('B')``).
* ``srcs`` — the source-register tuple packed into one 64-bit word:
  the count in the low 4 bits, then each register in 6 bits (supports up
  to 10 sources of up to 64 architectural registers — far beyond the
  MIPS-like ISA modelled here).

The class is API-compatible with :class:`~repro.trace.trace.Trace` for
everything the harness and pipeline consume: ``len``, indexing, iteration
(yielding real ``Instruction`` records built on demand), ``name`` and
``stats``.  The serialised twin of this layout is the binary trace-cache
format in :mod:`repro.trace.io`.

Columns are normally ``array`` objects, but any buffer exposing the same
typed-element protocol works: the shared-memory trace plane
(:mod:`repro.trace.shm`) backs them with zero-copy ``memoryview`` casts
over a ``multiprocessing.shared_memory`` segment.  Pickling always
materialises plain ``array`` columns first, so a shm-backed trace ships
by value rather than by (process-local) buffer reference.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .isa import Instruction, OpClass
from .trace import Trace, TraceStats

# Presence / derived-fact bits of the flags column.
FLAG_DEST = 0x01
FLAG_VALUE = 0x02
FLAG_ADDR = 0x04
FLAG_TAKEN = 0x08
FLAG_TAKEN_TRUE = 0x10
FLAG_TARGET = 0x20
FLAG_PRODUCES = 0x40

_WORD_LIMIT = 1 << 64
_MAX_SRCS = 10
_SRC_BITS = 6
_SRC_MASK = (1 << _SRC_BITS) - 1

#: Column names in serialisation order, with their array typecodes.  The
#: binary cache format (trace/io.py) writes exactly these columns.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("pcs", "Q"),
    ("ops", "B"),
    ("flags", "B"),
    ("dests", "B"),
    ("srcs", "Q"),
    ("values", "Q"),
    ("addrs", "Q"),
    ("targets", "Q"),
    ("latency", "B"),
)


def _check_word(value: int, what: str) -> int:
    if not 0 <= value < _WORD_LIMIT:
        raise ValueError(f"cannot pack {what}={value!r}: "
                         "not an unsigned 64-bit machine word")
    return value


def pack_srcs(srcs: Tuple[int, ...]) -> int:
    """Pack a source-register tuple into one 64-bit word."""
    if len(srcs) > _MAX_SRCS:
        raise ValueError(f"cannot pack {len(srcs)} source registers "
                         f"(limit {_MAX_SRCS})")
    word = len(srcs)
    shift = 4
    for reg in srcs:
        if not 0 <= reg <= _SRC_MASK:
            raise ValueError(f"cannot pack source register {reg!r}: "
                             f"must be in [0, {_SRC_MASK}]")
        word |= reg << shift
        shift += _SRC_BITS
    return word


def unpack_srcs(word: int) -> Tuple[int, ...]:
    """Inverse of :func:`pack_srcs`."""
    count = word & 0xF
    regs = []
    shift = 4
    for _ in range(count):
        regs.append((word >> shift) & _SRC_MASK)
        shift += _SRC_BITS
    return tuple(regs)


class PackedTrace:
    """A materialised trace in packed structure-of-arrays form.

    Build one with :meth:`from_instructions` (or load one from the binary
    cache via :func:`repro.trace.io.load_packed`).  Slicing with unit step
    returns a zero-copy view sharing the parent's columns.
    """

    __slots__ = ("name", "_cols", "_start", "_stop", "_stats",
                 "_value_cache", "_load_cache")

    def __init__(self, columns: Dict[str, array], name: str = "trace",
                 start: int = 0, stop: Optional[int] = None):
        length = len(columns["pcs"])
        for col, _tc in COLUMNS:
            if len(columns[col]) != length:
                raise ValueError(f"column {col!r} length mismatch")
        self.name = name
        self._cols = columns
        self._start = start
        self._stop = length if stop is None else stop
        self._stats: Optional[TraceStats] = None
        self._value_cache: Optional[Tuple[array, array, array]] = None
        self._load_cache: Optional[Tuple[array, array]] = None

    # -- construction ----------------------------------------------------
    @classmethod
    def from_instructions(cls, instructions: Iterable[Instruction],
                          name: str = "trace") -> "PackedTrace":
        """Pack an instruction stream (consumed once, never materialised)."""
        if isinstance(instructions, Trace):
            name = instructions.name
        cols = {col: array(tc) for col, tc in COLUMNS}
        pcs = cols["pcs"].append
        ops = cols["ops"].append
        flags = cols["flags"].append
        dests = cols["dests"].append
        srcs = cols["srcs"].append
        values = cols["values"].append
        addrs = cols["addrs"].append
        targets = cols["targets"].append
        latency = cols["latency"].append
        for insn in instructions:
            flag = 0
            dest = insn.dest
            if dest is not None:
                if not 0 <= dest <= 0xFF:
                    raise ValueError(f"cannot pack dest register {dest!r}")
                flag |= FLAG_DEST
            else:
                dest = 0
            value = insn.value
            if value is not None:
                flag |= FLAG_VALUE
                _check_word(value, "value")
            else:
                value = 0
            addr = insn.addr
            if addr is not None:
                flag |= FLAG_ADDR
                _check_word(addr, "addr")
            else:
                addr = 0
            if insn.taken is not None:
                flag |= FLAG_TAKEN
                if insn.taken:
                    flag |= FLAG_TAKEN_TRUE
            target = insn.target
            if target is not None:
                flag |= FLAG_TARGET
                _check_word(target, "target")
            else:
                target = 0
            op = insn.op
            if (flag & FLAG_VALUE and flag & FLAG_DEST
                    and (op is OpClass.IALU or op is OpClass.LOAD)):
                flag |= FLAG_PRODUCES
            if not 0 <= insn.latency_class <= 0xFF:
                raise ValueError(
                    f"cannot pack latency_class {insn.latency_class!r}")
            pcs(_check_word(insn.pc, "pc"))
            ops(int(op))
            flags(flag)
            dests(dest)
            srcs(pack_srcs(insn.srcs))
            values(value)
            addrs(addr)
            targets(target)
            latency(insn.latency_class)
        return cls(cols, name=name)

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return self._stop - self._start

    def instruction_at(self, index: int) -> Instruction:
        """Materialise the instruction at view-relative *index*."""
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("trace index out of range")
        i = self._start + index
        cols = self._cols
        flag = cols["flags"][i]
        return Instruction(
            pc=cols["pcs"][i],
            op=OpClass(cols["ops"][i]),
            dest=cols["dests"][i] if flag & FLAG_DEST else None,
            srcs=unpack_srcs(cols["srcs"][i]),
            value=cols["values"][i] if flag & FLAG_VALUE else None,
            addr=cols["addrs"][i] if flag & FLAG_ADDR else None,
            taken=bool(flag & FLAG_TAKEN_TRUE) if flag & FLAG_TAKEN else None,
            target=cols["targets"][i] if flag & FLAG_TARGET else None,
            latency_class=cols["latency"][i],
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                return [self.instruction_at(i)
                        for i in range(start, stop, step)]
            view = PackedTrace.__new__(PackedTrace)
            view.name = self.name
            view._cols = self._cols
            view._start = self._start + start
            view._stop = self._start + stop
            view._stats = None
            view._value_cache = None
            view._load_cache = None
            return view
        return self.instruction_at(index)

    def __iter__(self) -> Iterator[Instruction]:
        at = self.instruction_at
        for index in range(len(self)):
            yield at(index)

    # -- Trace-compatible surface ----------------------------------------
    @property
    def stats(self) -> TraceStats:
        """Summary statistics, computed from the columns (no objects built)."""
        if self._stats is None:
            stats = TraceStats()
            ops = self._cols["ops"]
            flags = self._cols["flags"]
            pcs = self._cols["pcs"]
            load = int(OpClass.LOAD)
            store = int(OpClass.STORE)
            br = int(OpClass.BRANCH)
            seen = set()
            for i in range(self._start, self._stop):
                stats.total += 1
                seen.add(pcs[i])
                if flags[i] & FLAG_PRODUCES:
                    stats.value_producing += 1
                op = ops[i]
                if op == load:
                    stats.loads += 1
                elif op == store:
                    stats.stores += 1
                elif op == br:
                    stats.branches += 1
            stats.static_pcs = len(seen)
            self._stats = stats
        return self._stats

    def value_producing(self) -> Iterator[Instruction]:
        flags = self._cols["flags"]
        at = self.instruction_at
        start = self._start
        return (at(i - start) for i in range(start, self._stop)
                if flags[i] & FLAG_PRODUCES)

    def loads(self) -> Iterator[Instruction]:
        ops = self._cols["ops"]
        at = self.instruction_at
        start = self._start
        load = int(OpClass.LOAD)
        return (at(i - start) for i in range(start, self._stop)
                if ops[i] == load)

    def per_pc_values(self) -> Dict[int, List[int]]:
        histories: Dict[int, List[int]] = {}
        flags = self._cols["flags"]
        pcs = self._cols["pcs"]
        values = self._cols["values"]
        for i in range(self._start, self._stop):
            if flags[i] & FLAG_PRODUCES:
                histories.setdefault(pcs[i], []).append(values[i])
        return histories

    def to_trace(self) -> Trace:
        """Materialise a plain :class:`Trace` (instruction objects)."""
        return Trace(iter(self), name=self.name)

    # -- fast-path column access -----------------------------------------
    def value_columns(self) -> Tuple[array, array, array]:
        """``(indices, pcs, values)`` columns of the value-producing
        instructions in this view.

        *indices* are view-relative positions (what ``enumerate`` over the
        full trace would report), so instrumented callers can keep exact
        progress/event bookkeeping.  Built once per view and cached.
        """
        if self._value_cache is None:
            idx = array("Q")
            vpcs = array("Q")
            vvals = array("Q")
            flags = self._cols["flags"]
            pcs = self._cols["pcs"]
            values = self._cols["values"]
            start = self._start
            for i in range(start, self._stop):
                if flags[i] & FLAG_PRODUCES:
                    idx.append(i - start)
                    vpcs.append(pcs[i])
                    vvals.append(values[i])
            self._value_cache = (idx, vpcs, vvals)
        return self._value_cache

    def value_pairs(self) -> Tuple[array, array]:
        """``(pcs, values)`` columns of the value-producing instructions."""
        _, pcs, values = self.value_columns()
        return pcs, values

    def load_pairs(self) -> Tuple[array, array]:
        """``(pcs, addrs)`` columns of the load instructions in this view."""
        if self._load_cache is None:
            lpcs = array("Q")
            laddrs = array("Q")
            ops = self._cols["ops"]
            pcs = self._cols["pcs"]
            addrs = self._cols["addrs"]
            load = int(OpClass.LOAD)
            for i in range(self._start, self._stop):
                if ops[i] == load:
                    lpcs.append(pcs[i])
                    laddrs.append(addrs[i])
            self._load_cache = (lpcs, laddrs)
        return self._load_cache

    def columns(self) -> Dict[str, array]:
        """The raw columns restricted to this view (copied iff a sub-view)."""
        if self._start == 0 and self._stop == len(self._cols["pcs"]):
            return dict(self._cols)
        return {col: self._cols[col][self._start:self._stop]
                for col, _tc in COLUMNS}

    def materialized_columns(self) -> Dict[str, array]:
        """This view's columns as owning ``array`` objects.

        Columns that already are arrays pass through unchanged (full
        views share them); buffer-backed columns — shared-memory
        ``memoryview`` casts — are copied out, so the result never
        references another process's segment.
        """
        out: Dict[str, array] = {}
        view = self.columns()
        for col, typecode in COLUMNS:
            data = view[col]
            if isinstance(data, array):
                out[col] = data
            else:
                copied = array(typecode)
                copied.frombytes(data.tobytes())
                out[col] = copied
        return out

    def __reduce__(self):
        # Default slots pickling would try to pickle the column buffers
        # themselves; memoryview columns (shared memory) cannot pickle,
        # and would be wrong anyway across machines.  Materialise.
        return (_rebuild_packed,
                (self.materialized_columns(), self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedTrace {self.name!r} len={len(self)}>"


def _rebuild_packed(columns: Dict[str, array], name: str) -> "PackedTrace":
    """Unpickle target for :meth:`PackedTrace.__reduce__`."""
    return PackedTrace(columns, name=name)


def pack_trace(trace: Iterable[Instruction], name: str = "trace") -> PackedTrace:
    """Convenience alias for :meth:`PackedTrace.from_instructions`."""
    return PackedTrace.from_instructions(trace, name=name)
