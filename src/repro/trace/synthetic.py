"""Workload composer: weaves kernels into full instruction traces.

A :class:`WorkloadSpec` describes a benchmark the way a profile describes a
real program: as a collection of *inner loops* (:class:`LoopGroup`), each
with a body built from kernel slots and a trip count, visited in turn by an
outer loop.  The structure matters because the experiments are sensitive to
it in exactly the ways the paper discusses:

* **Loop body size** determines how far apart dynamic instances of the
  same static instruction are.  In a *tiny* loop (body of a handful of
  values) an instruction's previous result sits only a few entries back in
  the global value queue — reachable by gDiff — but in a pipeline the
  previous instance is often still in flight at prediction time, so local
  predictors read stale state (the value-delay problem of Section 3.1).
  In a *large* loop the opposite holds: locals are comfortable, and only a
  deep global queue can reach the previous iteration.
* **Within-body structure** (dependent chains, spill/fill, neighbouring
  fields) provides the short-distance global stride locality that exists
  at any loop size.
* Each inner iteration ends with a loop-back branch (taken until the trip
  count expires), giving the branch predictor the mostly-regular control
  flow real hot loops have; hammocks (``skip_prob``) and
  :class:`~repro.trace.kernels.BranchyKernel` slots add the irregular part.

The per-benchmark specs live in :mod:`repro.trace.workloads`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from .isa import Instruction, branch
from .kernels import Kernel, RegAllocator
from .trace import Trace

#: Where synthetic code regions start.  Kernels are packed contiguously
#: (each gets room for its PC copies, minimum 4 KiB) the way a compiler
#: lays out hot code; branch PCs live in a separate range so control
#: instructions never alias with value producers in PC-indexed tables.
CODE_BASE = 0x0040_0000
BRANCH_CODE_BASE = 0x0030_0000
MIN_KERNEL_REGION = 0x1000
COPY_REGION = 0x200

#: Where synthetic data regions start; each kernel gets a 64 MiB arena.
DATA_BASE = 0x1000_0000
DATA_STRIDE = 1 << 26


@dataclass
class KernelSlot:
    """One position in a loop body.

    Args:
        factory: zero-argument callable building a fresh kernel instance.
        skip_prob: probability the slot is bypassed in a given iteration
            (a data-dependent hammock; a guard branch is emitted).
        repeat: consecutive blocks the kernel emits per iteration.
    """

    factory: Callable[[], Kernel]
    skip_prob: float = 0.0
    repeat: int = 1


@dataclass
class LoopGroup:
    """One inner loop: a body of kernel slots and a trip count.

    Args:
        slots: the loop body, in order.
        iterations: trip count per visit from the outer loop.
        weight: relative number of visits per outer-loop round (an integer;
            the group is visited this many times per round).
    """

    slots: List[KernelSlot]
    iterations: int = 32
    weight: int = 1


@dataclass
class WorkloadSpec:
    """A complete synthetic benchmark description."""

    name: str
    groups: List[LoopGroup]
    seed: int = 12345
    #: Optional short description used in reports.
    description: str = ""

    def generate(self, seed: Optional[int] = None,
                 code_copies: int = 1) -> Iterator[Instruction]:
        """Yield the benchmark's dynamic instruction stream (endless).

        Args:
            seed: RNG seed override.
            code_copies: rotate each kernel's static PCs across this many
                code copies (see :meth:`Kernel.set_copies`) — the value
                stream is identical, only the static-instruction count
                grows.  Used by the table-aliasing study (Figure 9).
        """
        rng = random.Random(self.seed if seed is None else seed)
        regs = RegAllocator()
        bound: List[List[Kernel]] = []
        region = max(MIN_KERNEL_REGION, code_copies * COPY_REGION)
        next_pc_base = CODE_BASE
        next_data = 0
        hammock_pcs: List[int] = []
        for group in self.groups:
            kernels = []
            for slot in group.slots:
                kernel = slot.factory()
                kernel.bind(
                    pc_base=next_pc_base,
                    addr_base=DATA_BASE + next_data * DATA_STRIDE,
                    regs=regs,
                )
                if code_copies > 1:
                    kernel.set_copies(code_copies)
                next_pc_base += region
                next_data += 1
                kernels.append(kernel)
                hammock_pcs.append(BRANCH_CODE_BASE + 8 * len(hammock_pcs))
            bound.append(kernels)
        # One loop-back branch PC per group, in the branch code range.
        loop_pcs = [BRANCH_CODE_BASE + 0x8000 + 8 * g
                    for g in range(len(self.groups))]
        visit_order: List[int] = []
        for index, group in enumerate(self.groups):
            visit_order.extend([index] * max(1, group.weight))
        hammock_index = {id(k): i for i, k in
                         enumerate(k for ks in bound for k in ks)}
        while True:
            for index in visit_order:
                group = self.groups[index]
                kernels = bound[index]
                loop_pc = loop_pcs[index]
                for iteration in range(group.iterations):
                    for slot, kernel in zip(group.slots, kernels):
                        if slot.skip_prob:
                            skipped = rng.random() < slot.skip_prob
                            guard_pc = hammock_pcs[hammock_index[id(kernel)]]
                            yield branch(guard_pc, skipped, guard_pc + 64)
                            if skipped:
                                continue
                        for _ in range(slot.repeat):
                            for insn in kernel.block(rng):
                                yield insn
                            kernel.advance_copy()
                    # Loop-back branch: taken until the trip count expires.
                    yield branch(
                        loop_pc, iteration < group.iterations - 1,
                        CODE_BASE,
                    )

    def trace(self, length: int, seed: Optional[int] = None,
              code_copies: int = 1) -> Trace:
        """Materialise *length* instructions of this benchmark."""
        stream = self.generate(seed=seed, code_copies=code_copies)
        instructions = []
        append = instructions.append
        for _ in range(length):
            append(next(stream))
        return Trace(instructions, name=self.name)


def interleave(specs: Sequence[WorkloadSpec], length: int, seed: int = 0) -> Trace:
    """Round-robin several workloads into one trace (multiprogrammed mix).

    Not used by the paper's experiments but handy for stress testing
    predictors against context switches.
    """
    streams = [spec.generate(seed=seed + i) for i, spec in enumerate(specs)]
    instructions: List[Instruction] = []
    i = 0
    while len(instructions) < length:
        stream = streams[i % len(streams)]
        for _ in range(64):
            instructions.append(next(stream))
            if len(instructions) >= length:
                break
        i += 1
    return Trace(instructions, name="+".join(s.name for s in specs))
