"""vortex — object-oriented database.

High value predictability across the board: object headers carry
constants, record walks advance in lockstep in dense loops, and the same
structures are revisited repeatedly (giving the Markov address predictor
its tag hits).  A moderate share of spill/fill and short chains keeps
gDiff ahead.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    ConstantKernel,
    CounterClusterKernel,
    CounterKernel,
    PeriodicKernel,
    RetraverseKernel,
    SpillFillKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop


def spec() -> WorkloadSpec:
    """Build the vortex-like workload."""
    return WorkloadSpec(
        name="vortex",
        seed=0x40E7,
        description="OO database: constants, lockstep walks, revisits",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=4, stride=24),
                    lambda: ConstantKernel(value=0x564F5254),
                    lambda: ArrayWalkKernel(elem_stride=24,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: CounterKernel(stride=32),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.82),
                ],
                iterations=65,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=24),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=24, value_mode="stride",
                        footprint=1 << 15), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=12)),
                    KernelSlot(lambda: PeriodicKernel(period=14)),
                    KernelSlot(lambda: RetraverseKernel(
                        sites=256, reorder_prob=0.35)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.85)),
                ],
                iterations=10,
            ),
            small_loop(
                [
                    lambda: SpillFillKernel(gap=1, footprint=1 << 14,
                                            spread=16),
                    lambda: ChainKernel(uses=3, offsets=(32, 64, 16),
                                        footprint=1 << 15, spread=16),
                    lambda: HashProbeKernel(buckets=192, reorder_prob=0.15),
                    lambda: CounterKernel(stride=24),
                ],
                iterations=30,
                pad=4,
            ),
        ],
    )
