"""bzip2 — block-sorting compressor.

Character encoded here: dense scan loops (suffix pointers advancing in
lockstep), a moderate large-loop substrate, dependent arithmetic on
freshly read (hard) symbols, small streaming footprint, well-behaved
branches.  In the paper bzip2 sits in the middle of the pack for every
predictor, with gDiff ahead of the locals by roughly 15 points, and shows
a large coverage gain but small speedup (Section 7 notes the extra
predictions are off the critical path).
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    CounterClusterKernel,
    CounterKernel,
    PeriodicKernel,
    RandomKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop


def spec() -> WorkloadSpec:
    """Build the bzip2-like workload."""
    return WorkloadSpec(
        name="bzip2",
        seed=0xB21,
        description="dense scan loops and counter groups; streaming footprint",
        groups=[
            # The hot block-sort scan: counters, a window walk, and the
            # long-period handler table in one dense body.
            small_loop(
                [
                    lambda: CounterClusterKernel(count=4, stride=1),
                    lambda: ArrayWalkKernel(elem_stride=4,
                                            value_mode="stride",
                                            footprint=1 << 14),
                    lambda: CounterKernel(stride=8),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.82),
                ],
                iterations=70,
            ),
            # A larger bookkeeping loop.
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=4),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=8, value_mode="stride",
                        footprint=1 << 14), repeat=4),
                    KernelSlot(lambda: PeriodicKernel(period=12), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=14), repeat=2),
                    KernelSlot(lambda: RandomKernel(span=1 << 24), repeat=2),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.9)),
                ],
                iterations=10,
            ),
            # Dependent arithmetic on hard symbol values (global stride).
            small_loop(
                [
                    lambda: ChainKernel(uses=4, offsets=(1, 3, 7, 12),
                                        footprint=1 << 14, spread=16),
                    lambda: HashProbeKernel(buckets=64, reorder_prob=0.3),
                    lambda: CounterKernel(stride=4),
                    lambda: RandomKernel(span=1 << 24),
                ],
                iterations=40,
                pad=4,
            ),
        ],
    )
