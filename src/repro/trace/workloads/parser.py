"""parser — link-grammar natural-language parser.

The paper's motivating benchmark: Figures 1 and 2 show a parser load whose
value sequence looks like noise locally but is an exact copy of an earlier
instruction's result — register spill/fill.  Figure 4's next/string
allocation-order stride also comes from parser.  gDiff gains up to 34
accuracy points over the local predictors here.

Encoded with heavy spill/fill and dependent-chain loops, a pointer-chase
loop with the paired-field structure, and a modest regular substrate so
the local predictors land near the paper's ~45%.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    ConstantKernel,
    CounterClusterKernel,
    PeriodicKernel,
    PointerChaseKernel,
    RandomKernel,
    SpillFillKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop, tiny


def spec() -> WorkloadSpec:
    """Build the parser-like workload."""
    return WorkloadSpec(
        name="parser",
        seed=0xA45E,
        description="spill/fill traffic and dependent chains; Figure 2's shape",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=4, stride=8),
                    lambda: ArrayWalkKernel(elem_stride=8,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: ConstantKernel(value=0x2A),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.75),
                ],
                iterations=52,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=8),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=8, value_mode="stride",
                        footprint=1 << 15), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=12)),
                    KernelSlot(lambda: PeriodicKernel(period=14)),
                    KernelSlot(lambda: RandomKernel(span=1 << 27)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.8)),
                ],
                iterations=8,
            ),
            # The motivating structures: spill/fill and dependent chains.
            small_loop(
                [
                    lambda: ChainKernel(uses=4, offsets=(24, 48, 72, 96),
                                        footprint=1 << 16, spread=16),
                    lambda: HashProbeKernel(buckets=128, reorder_prob=0.25),
                    lambda: SpillFillKernel(gap=1, footprint=1 << 14,
                                            spread=16),
                ],
                iterations=50,
                pad=4,
            ),
            tiny(lambda: PointerChaseKernel(
                node_stride=48,
                field_offset=8,
                payload_delta=16,
                fields=2,
                jump_prob=0.1,
                footprint=1 << 19,
            ), iterations=25, pad=30),
        ],
    )
