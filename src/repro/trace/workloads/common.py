"""Shared helpers for the benchmark workload specs.

Benchmarks are assembled from three loop shapes:

* :func:`small_loop` — the workhorse: a few distinct kernels in one dense
  body (~6-8 values in ~14-20 instructions, real integer code's
  value-producing density).  Each kernel's previous result is only a few
  entries back in the global value queue *and* a full body away in
  instructions.
* :func:`tiny` — a single-kernel loop, used where one structure should
  dominate (pointer chases, chains); the ``pad`` argument sets the body's
  instruction length without touching the value stream.
* :func:`loop` — a large mixed body (~25-40 instructions) where local
  predictors are comfortable and only a deep global queue reaches the
  previous iteration.

The balance between the shapes is each benchmark's main calibration dial;
see DESIGN.md section 2.
"""

from __future__ import annotations

from typing import Callable, List

from ..kernels import Kernel, PadKernel
from ..synthetic import KernelSlot, LoopGroup


def tiny(factory: Callable[[], Kernel], iterations: int = 50,
         weight: int = 1, repeat: int = 1, pad: int = 12,
         pad_stores: int = 4) -> LoopGroup:
    """A tiny inner loop around a single kernel.

    ``pad`` non-value-producing instructions (stores and generic work; see
    :class:`~repro.trace.kernels.PadKernel`) stretch the body so dynamic
    instances of the loop's static instructions are realistically far
    apart in the instruction stream — the value stream is unaffected.
    """
    slots = [KernelSlot(factory, repeat=repeat)]
    if pad:
        slots.append(KernelSlot(
            lambda: PadKernel(count=pad, store_every=pad_stores)))
    return LoopGroup(slots=slots, iterations=iterations, weight=weight)


def small_loop(factories: List[Callable[[], Kernel]], iterations: int = 50,
               weight: int = 1, pad: int = 6,
               pad_stores: int = 4) -> LoopGroup:
    """A small hot loop combining a few kernels into one dense body."""
    slots: List[KernelSlot] = [KernelSlot(f) for f in factories]
    if pad:
        slots.append(KernelSlot(
            lambda: PadKernel(count=pad, store_every=pad_stores)))
    return LoopGroup(slots=slots, iterations=iterations, weight=weight)


def loop(slots: List[KernelSlot], iterations: int = 20,
         weight: int = 1, pad: int = 10) -> LoopGroup:
    """A larger inner loop with a mixed body (padded like :func:`tiny`)."""
    body = list(slots)
    if pad:
        body.append(KernelSlot(lambda: PadKernel(count=pad)))
    return LoopGroup(slots=body, iterations=iterations, weight=weight)
