"""SPECint2000-like synthetic benchmark suite.

The paper evaluates on ten SPECint2000 benchmarks with reference inputs.
Real SPEC traces are unavailable here, so each module in this package
builds a synthetic workload whose *value-stream structure* matches what
the paper (and the memory-behaviour literature it cites) reports for that
benchmark: the mix of local-stride, local-context, global-stride and
unpredictable values; pointer intensity; data footprint; and branch
behaviour.  See DESIGN.md for the substitution argument.

Use :func:`get` / :data:`BENCHMARKS` to enumerate the suite:

    >>> from repro.trace.workloads import get, BENCHMARKS
    >>> trace = get("mcf").trace(100_000)
"""

from __future__ import annotations

from typing import Dict, List

from ..synthetic import WorkloadSpec
from . import (
    bzip2,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perl,
    twolf,
    vortex,
    vpr,
)

#: The paper's benchmark order (as in every figure's x axis).
BENCHMARKS: List[str] = [
    "bzip2",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perl",
    "twolf",
    "vortex",
    "vpr",
]

_MODULES = {
    "bzip2": bzip2,
    "gap": gap,
    "gcc": gcc,
    "gzip": gzip,
    "mcf": mcf,
    "parser": parser,
    "perl": perl,
    "twolf": twolf,
    "vortex": vortex,
    "vpr": vpr,
}


def get(name: str) -> WorkloadSpec:
    """Return a fresh :class:`WorkloadSpec` for workload *name*.

    Resolution order: the synthetic SPECint-like suite, the adversarial
    bank (:mod:`.adversarial`), then the imported-workload store
    (:mod:`repro.trace.ingest.store`) — so every consumer (cache, shm
    plane, campaigns, serve) accepts imported and adversarial names
    wherever a benchmark name is accepted.
    """
    module = _MODULES.get(name)
    if module is not None:
        return module.spec()
    from . import adversarial

    if name in adversarial.SCENARIOS:
        return adversarial.get(name)
    from ..ingest import store as ingest_store

    if name in ingest_store.imported_names():
        return ingest_store.get_spec(name)
    raise KeyError(
        f"unknown workload {name!r}; choose from {known_names()}"
    ) from None


def known_names() -> List[str]:
    """Every resolvable workload name: suite, adversarial bank, imports."""
    from . import adversarial
    from ..ingest import store as ingest_store

    return list(BENCHMARKS) + list(adversarial.SCENARIOS) + \
        ingest_store.imported_names()


def is_known(name: str) -> bool:
    """True when :func:`get` would resolve *name*."""
    if name in _MODULES:
        return True
    from . import adversarial

    if name in adversarial.SCENARIOS:
        return True
    from ..ingest import store as ingest_store

    return name in ingest_store.imported_names()


def all_specs() -> Dict[str, WorkloadSpec]:
    """Return {name: spec} for the full suite, in the paper's order."""
    return {name: get(name) for name in BENCHMARKS}
