"""gzip — LZ77 compressor.

Window scans in dense loops with regular addresses but data-dependent
(hard) match values, dependent arithmetic on lengths/distances, and a
cache-resident footprint (the 32 KB window).
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    CounterClusterKernel,
    CounterKernel,
    PeriodicKernel,
    RandomKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop


def spec() -> WorkloadSpec:
    """Build the gzip-like workload."""
    return WorkloadSpec(
        name="gzip",
        seed=0x6219,
        description="window scans; hard match values; cache-resident",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=3, stride=1),
                    lambda: ArrayWalkKernel(elem_stride=4,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: CounterKernel(stride=1),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.8),
                ],
                iterations=65,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=2),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=4, value_mode="stride",
                        footprint=1 << 14), repeat=3),
                    KernelSlot(lambda: PeriodicKernel(period=12), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=14), repeat=2),
                    KernelSlot(lambda: RandomKernel(span=1 << 26, chain=1)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.85)),
                ],
                iterations=10,
            ),
            # Length/distance arithmetic on hard match values.
            small_loop(
                [
                    lambda: ChainKernel(uses=4, offsets=(2, 5, 9, 3),
                                        footprint=1 << 14, spread=16),
                    lambda: HashProbeKernel(buckets=64, reorder_prob=0.3),
                    lambda: RandomKernel(span=1 << 26, chain=1),
                ],
                iterations=30,
                pad=4,
            ),
        ],
    )
