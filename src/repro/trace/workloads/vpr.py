"""vpr — FPGA placement and routing.

A middle-of-the-road mix: net bounding-box counters in dense loops,
routing-resource walks, pointer chasing through the routing graph with
occasional rip-ups (jumps), and annealing noise.  Sits near the suite
average for every predictor.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    CounterClusterKernel,
    CounterKernel,
    PeriodicKernel,
    PointerChaseKernel,
    RandomKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop, tiny


def spec() -> WorkloadSpec:
    """Build the vpr-like workload."""
    return WorkloadSpec(
        name="vpr",
        seed=0xF9A,
        description="routing-graph walks with rip-ups; average mix",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=3, stride=12),
                    lambda: ArrayWalkKernel(elem_stride=12,
                                            value_mode="stride",
                                            footprint=1 << 16),
                    lambda: CounterKernel(stride=12),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.76),
                ],
                iterations=58,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=12),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=12, value_mode="stride",
                        footprint=1 << 16), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=12)),
                    KernelSlot(lambda: PeriodicKernel(period=14)),
                    KernelSlot(lambda: RandomKernel(span=1 << 27)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.75)),
                ],
                iterations=9,
            ),
            small_loop(
                [
                    lambda: ChainKernel(uses=3, offsets=(12, 24, 36),
                                        footprint=1 << 16, spread=16),
                    lambda: HashProbeKernel(buckets=96, reorder_prob=0.25),
                    lambda: RandomKernel(span=1 << 27),
                ],
                iterations=32,
                pad=4,
            ),
            tiny(lambda: PointerChaseKernel(
                node_stride=64,
                field_offset=24,
                payload_delta=32,
                fields=2,
                jump_prob=0.2,
                footprint=1 << 20,
            ), iterations=22, pad=30),
        ],
    )
