"""gap — computational group theory interpreter.

The paper's hardest benchmark: "hard-to-predict generational values and
the long computation chain of these hard-to-predict values" keep every
predictor near 40% at profile queue size 8, but growing the GVQ to 32
captures the long chains and lifts gDiff to 59.7% (Section 3).

Encoded with :class:`ParallelChainsKernel` (ten interleaved def/use chains
whose correlated values sit exactly ten slots apart — beyond an order-8
queue, inside an order-32 one), heavy generational noise, and a modest
regular substrate.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    CounterClusterKernel,
    CounterKernel,
    ParallelChainsKernel,
    PeriodicKernel,
    RandomKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop, tiny


def spec() -> WorkloadSpec:
    """Build the gap-like workload."""
    return WorkloadSpec(
        name="gap",
        seed=0x6A9,
        description="generational noise and long chains; queue-32 territory",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=4, stride=4),
                    lambda: ArrayWalkKernel(elem_stride=8,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: CounterKernel(stride=16),
                    lambda: RandomKernel(span=1 << 30),
                    lambda: BranchyKernel(taken_prob=0.78),
                ],
                iterations=55,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=8),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=8, value_mode="stride",
                        footprint=1 << 15), repeat=3),
                    KernelSlot(lambda: PeriodicKernel(period=12)),
                    KernelSlot(lambda: PeriodicKernel(period=36)),
                    KernelSlot(lambda: RandomKernel(span=1 << 30, chain=2),
                               repeat=2),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.85)),
                ],
                iterations=8,
            ),
            # The long-computation-chain signature: correlations ten values
            # back, plus heavy fresh noise.
            tiny(lambda: ParallelChainsKernel(width=10, rounds=1),
                 iterations=14, pad=10),
            small_loop(
                [
                    lambda: RandomKernel(span=1 << 30, chain=1),
                    lambda: ChainKernel(uses=3, offsets=(8, 16, 24),
                                        footprint=1 << 15, spread=16),
                    lambda: HashProbeKernel(buckets=96, reorder_prob=0.25),
                    lambda: RandomKernel(span=1 << 29, chain=1),
                ],
                iterations=16,
                pad=4,
            ),
        ],
    )
