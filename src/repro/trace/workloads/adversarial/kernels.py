"""Kernels built to *defeat* specific predictor assumptions.

The main kernel zoo (:mod:`repro.trace.kernels`) models structure the
paper's predictors exploit; these model the ways real programs break
that structure over time.  Each kernel documents which predictor
assumption it attacks.
"""

from __future__ import annotations

import random
from typing import List

from ....wordops import wadd, wrap
from ...isa import Instruction, ialu
from ...kernels import Kernel


class DriftingCounterKernel(Kernel):
    """A counter whose stride re-randomises every *generation* emissions.

    Attacks the stride predictors' steady-state assumption: within a
    generation the value is perfectly stride predictable, then the
    stride silently changes and every stride table entry (local or
    global) mispredicts until it retrains.  Shorter generations mean
    more retraining cliffs per trace.
    """

    name = "drifting-counter"

    def __init__(self, generation: int = 64, span: int = 1 << 12,
                 start: int = 0):
        super().__init__()
        if generation <= 0:
            raise ValueError("generation must be positive")
        self.generation = generation
        self.span = span
        self.value = wrap(start)
        self.stride = 1
        self._emitted = 0

    def _allocate_regs(self, regs) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        if self._emitted % self.generation == 0:
            self.stride = rng.randrange(1, self.span)
        self._emitted += 1
        self.value = wadd(self.value, self.stride)
        return [ialu(self.pc(0), self.reg, self.value, srcs=(self.reg,))]


class DriftingPeriodicKernel(Kernel):
    """A periodic value set whose members mutate every *generation*.

    Attacks context (FCM/DFCM) predictors: the period structure stays
    learnable, but one member of the repeating set is replaced each
    generation, so learned contexts decay instead of converging.
    """

    name = "drifting-periodic"

    def __init__(self, period: int = 6, generation: int = 96,
                 span: int = 1 << 20):
        super().__init__()
        if period <= 0 or generation <= 0:
            raise ValueError("period and generation must be positive")
        self.period = period
        self.generation = generation
        self.span = span
        self.values: List[int] = []
        self._emitted = 0

    def _allocate_regs(self, regs) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        if not self.values:
            self.values = [rng.randrange(self.span)
                           for _ in range(self.period)]
        if self._emitted and self._emitted % self.generation == 0:
            self.values[rng.randrange(self.period)] = rng.randrange(self.span)
        value = self.values[self._emitted % self.period]
        self._emitted += 1
        return [ialu(self.pc(0), self.reg, value)]


class EntropyRampKernel(Kernel):
    """A stride base plus noise whose bit-width ramps up and down.

    Attacks everything gradually: the value is ``base + noise`` where
    ``base`` advances by a fixed stride and ``noise`` is
    ``rng.getrandbits(bits)`` with *bits* sweeping a triangle wave
    ``0 → peak_bits → 0`` over *cycle* emissions.  At the quiet end the
    stream is perfectly stride predictable; at the peak it is pure
    noise; in between, predictors face a continuously sliding
    signal-to-noise ratio rather than a clean phase boundary.
    """

    name = "entropy-ramp"

    def __init__(self, stride: int = 24, peak_bits: int = 24,
                 cycle: int = 512, start: int = 0):
        super().__init__()
        if not 0 < peak_bits <= 56:
            raise ValueError("peak_bits must be in (0, 56]")
        if cycle < 2:
            raise ValueError("cycle must be at least 2")
        self.stride = stride
        self.peak_bits = peak_bits
        self.cycle = cycle
        self.base = wrap(start)
        self._emitted = 0

    def _bits(self) -> int:
        half = self.cycle // 2
        pos = self._emitted % self.cycle
        ramp = pos if pos < half else self.cycle - pos
        return (ramp * self.peak_bits) // max(1, half)

    def _allocate_regs(self, regs) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        bits = self._bits()
        self._emitted += 1
        self.base = wadd(self.base, self.stride)
        noise = rng.getrandbits(bits) if bits else 0
        return [ialu(self.pc(0), self.reg, wadd(self.base, noise),
                     srcs=(self.reg,))]
