"""The adversarial scenario specs and their expectation bands.

Each scenario is a :class:`WorkloadSpec` (or a composing subclass), so
the whole stack — trace cache, shm plane, fused kernels, pipeline,
campaign scheduler, serve plane — consumes it like any benchmark.

``EXPECTATIONS`` carries fidelity-style accuracy bands per scenario and
predictor, calibrated at :data:`EXPECT_LENGTH` instructions with each
scenario's default seed (generation is deterministic, so these are
exact-science bands, not vibes).  ``repro workloads --check`` and
``examples/campaigns/adversarial.toml`` gate on them.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Tuple

from ...isa import Instruction
from ...kernels import (ArrayWalkKernel, ChainKernel, ConstantKernel,
                        CounterClusterKernel, CounterKernel, PeriodicKernel,
                        PointerChaseKernel, RandomKernel, SpillFillKernel)
from ...synthetic import KernelSlot, WorkloadSpec
from ..common import loop, small_loop
from .kernels import (DriftingCounterKernel, DriftingPeriodicKernel,
                      EntropyRampKernel)

#: Instruction count the expectation bands are calibrated at.
EXPECT_LENGTH = 24_000

#: Spacing between the code regions of a composed spec's parts, so
#: distinct phases look like distinct code (no PC aliasing) unless a
#: scenario wants the aliasing on purpose.
_PART_PC_SPACING = 0x0100_0000


def _shift_pc(insn: Instruction, offset: int) -> Instruction:
    if offset == 0:
        return insn
    target = insn.target
    return replace(insn, pc=insn.pc + offset,
                   target=None if target is None else target + offset)


class ComposedSpec(WorkloadSpec):
    """Base for scenarios that interleave independent sub-workloads.

    Each part generates with its own derived seed; ``shift_pcs``
    relocates part *i*'s static code by ``i * _PART_PC_SPACING`` so
    parts read as different program phases rather than aliased PCs.
    """

    def __init__(self, name: str, parts: List[WorkloadSpec], seed: int,
                 description: str = "", shift_pcs: bool = True):
        super().__init__(name=name, groups=[], seed=seed,
                         description=description)
        self.parts = parts
        self.shift_pcs = shift_pcs

    def _streams(self, seed: Optional[int],
                 code_copies: int) -> List[Iterator[Instruction]]:
        eff = self.seed if seed is None else seed
        streams = []
        for index, part in enumerate(self.parts):
            stream = part.generate(seed=eff * 1000003 + index,
                                   code_copies=code_copies)
            if self.shift_pcs and index:
                offset = index * _PART_PC_SPACING
                stream = (_shift_pc(insn, offset) for insn in stream)
            streams.append(stream)
        return streams

    def generate(self, seed: Optional[int] = None,
                 code_copies: int = 1) -> Iterator[Instruction]:
        raise NotImplementedError


class PhasedSpec(ComposedSpec):
    """Round-robin the parts in fixed-length phases (phase-shifting mix)."""

    def __init__(self, name: str, parts: List[WorkloadSpec], seed: int,
                 phase_len: int = 2500, description: str = ""):
        super().__init__(name, parts, seed, description=description)
        self.phase_len = phase_len

    def generate(self, seed: Optional[int] = None,
                 code_copies: int = 1) -> Iterator[Instruction]:
        streams = self._streams(seed, code_copies)
        while True:
            for stream in streams:
                for _ in range(self.phase_len):
                    yield next(stream)


class BurstSpec(ComposedSpec):
    """Interleave the parts in random exponential bursts.

    Models context switches between programs sharing the predictor
    tables: ``shift_pcs=False`` keeps every part's static code in the
    same address range, so PC-indexed predictor state is *deliberately*
    thrashed by cross-part aliasing.
    """

    def __init__(self, name: str, parts: List[WorkloadSpec], seed: int,
                 mean_burst: int = 400, description: str = ""):
        super().__init__(name, parts, seed, description=description,
                         shift_pcs=False)
        self.mean_burst = mean_burst

    def generate(self, seed: Optional[int] = None,
                 code_copies: int = 1) -> Iterator[Instruction]:
        eff = self.seed if seed is None else seed
        rng = random.Random(eff ^ 0xB0B5)
        streams = self._streams(seed, code_copies)
        while True:
            stream = streams[rng.randrange(len(streams))]
            burst = 1 + int(rng.expovariate(1.0 / self.mean_burst))
            for _ in range(burst):
                yield next(stream)


# -- the bank -----------------------------------------------------------------

def _stride_friendly(name: str, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, seed=seed,
        description="stride heaven: counters and array walks",
        groups=[
            small_loop([
                lambda: CounterKernel(stride=4),
                lambda: CounterClusterKernel(count=3, stride=8),
                lambda: ArrayWalkKernel(elem_stride=8, value_mode="stride"),
            ], iterations=40),
        ])


def _context_friendly(name: str, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, seed=seed,
        description="context heaven: short repeating value sets",
        groups=[
            small_loop([
                lambda: PeriodicKernel(period=5),
                lambda: PeriodicKernel(period=7),
                lambda: ConstantKernel(value=0x5CA1AB1E),
            ], iterations=40),
        ])


def _global_only(name: str, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, seed=seed,
        description="global-stride only: spill/fill and chains",
        groups=[
            small_loop([
                lambda: SpillFillKernel(gap=2),
                lambda: ChainKernel(uses=3, offsets=(3, 7, 11)),
            ], iterations=40),
        ])


def phase_shift() -> PhasedSpec:
    """Alternating predictor-friendly regimes, 2.5K instructions each.

    Any single-strategy predictor is periodically starved: stride
    tables idle through the context phases and vice versa, and every
    phase boundary forces retraining on code none of the tables have
    seen recently.
    """
    return PhasedSpec(
        name="adv-phase-shift",
        seed=0xF00D,
        phase_len=2500,
        description="phase-shifting kernel mixes (stride/context/global)",
        parts=[
            _stride_friendly("phase-stride", 0xA1),
            _context_friendly("phase-context", 0xA2),
            _global_only("phase-global", 0xA3),
        ])


def drift() -> WorkloadSpec:
    """Generational drift: structure that decays instead of converging."""
    return WorkloadSpec(
        name="adv-drift",
        seed=0xD41F7,
        description="generational drift of strides and value sets",
        groups=[
            small_loop([
                lambda: DriftingCounterKernel(generation=64),
                lambda: DriftingPeriodicKernel(period=6, generation=96),
                lambda: CounterKernel(stride=12),
                lambda: DriftingCounterKernel(generation=160, span=1 << 8),
            ], iterations=40),
        ])


def burst() -> BurstSpec:
    """Bursty interleaving of two programs over aliased PCs."""
    gzip_like = WorkloadSpec(
        name="burst-scan", seed=0xB1,
        description="dense scans",
        groups=[
            small_loop([
                lambda: CounterClusterKernel(count=3, stride=2),
                lambda: ArrayWalkKernel(elem_stride=4, value_mode="stride"),
                lambda: PeriodicKernel(period=12),
            ], iterations=40),
        ])
    mcf_like = WorkloadSpec(
        name="burst-chase", seed=0xB2,
        description="pointer chases and noise",
        groups=[
            loop([
                KernelSlot(lambda: PointerChaseKernel(jump_prob=0.2)),
                KernelSlot(lambda: RandomKernel(span=1 << 28)),
                KernelSlot(lambda: SpillFillKernel(gap=2)),
            ], iterations=30),
        ])
    return BurstSpec(
        name="adv-burst",
        seed=0xCAFE,
        mean_burst=400,
        description="bursty interleaving, shared PC ranges (context "
                    "switches thrash the tables)",
        parts=[gzip_like, mcf_like])


def entropy_ramp() -> WorkloadSpec:
    """Value entropy that ramps up and down instead of switching."""
    return WorkloadSpec(
        name="adv-entropy-ramp",
        seed=0xE247,
        description="value-entropy ramps over a stride baseline",
        groups=[
            small_loop([
                lambda: EntropyRampKernel(stride=24, peak_bits=24,
                                          cycle=512),
                lambda: EntropyRampKernel(stride=5, peak_bits=16,
                                          cycle=1536),
                lambda: CounterKernel(stride=3),
            ], iterations=40),
        ])


#: Calibrated ``raw_accuracy`` bands per scenario and predictor at
#: :data:`EXPECT_LENGTH` instructions, default seeds.  Generation is
#: deterministic, so the bands are tight on purpose: a drift here means
#: a generator or predictor semantic change, which must be deliberate.
EXPECTATIONS: Dict[str, Dict[str, Tuple[float, float]]] = {
    # Phase shifts reward history depth: gdiff32 rides out the phase
    # boundary that local predictors keep relearning.
    "adv-phase-shift": {
        "stride": (0.43, 0.53),
        "dfcm": (0.58, 0.68),
        "gdiff8": (0.64, 0.74),
        "gdiff32": (0.79, 0.89),
    },
    # Generational drift: context (dfcm) and deep global history recover
    # within a generation; plain stride pays a miss per mutation.
    "adv-drift": {
        "stride": (0.69, 0.79),
        "dfcm": (0.90, 1.00),
        "gdiff8": (0.69, 0.79),
        "gdiff32": (0.94, 1.00),
    },
    # Bursty interleaving breaks PC-local recency; the global difference
    # predictors hold a clear (if modest) lead.
    "adv-burst": {
        "stride": (0.35, 0.45),
        "dfcm": (0.33, 0.43),
        "gdiff8": (0.56, 0.66),
        "gdiff32": (0.55, 0.65),
    },
    # Entropy ramps cap everyone near the noise floor — the band is a
    # ceiling check: nobody should *beat* injected entropy.
    "adv-entropy-ramp": {
        "stride": (0.34, 0.45),
        "dfcm": (0.32, 0.42),
        "gdiff8": (0.33, 0.43),
        "gdiff32": (0.33, 0.44),
    },
}
