"""The adversarial stream bank: hostile synthetic scenarios.

Four scenarios, each targeting a different steady-state assumption the
predictor zoo relies on (catalogued in docs/WORKLOADS.md):

* ``adv-phase-shift`` — phase-shifting kernel mixes: the stream cycles
  between stride-friendly, context-friendly and global-only regimes.
* ``adv-drift`` — generational drift: strides and periodic value sets
  silently mutate, so tables decay instead of converging.
* ``adv-burst`` — bursty interleaving of two programs over *aliased*
  PC ranges (context switches thrash PC-indexed state).
* ``adv-entropy-ramp`` — value entropy that ramps continuously between
  perfectly-strided and pure noise.

Resolve them through :func:`repro.trace.workloads.get` like any
benchmark; the ``repro workloads`` runner sweeps the bank and gates on
:data:`EXPECTATIONS`.
"""

from __future__ import annotations

from typing import Dict, List

from ...synthetic import WorkloadSpec
from .scenarios import (EXPECT_LENGTH, EXPECTATIONS, burst, drift,
                        entropy_ramp, phase_shift)

_FACTORIES = {
    "adv-phase-shift": phase_shift,
    "adv-drift": drift,
    "adv-burst": burst,
    "adv-entropy-ramp": entropy_ramp,
}

#: Scenario names in catalog order.
SCENARIOS: List[str] = list(_FACTORIES)


def get(name: str) -> WorkloadSpec:
    """Return a fresh spec for adversarial scenario *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown adversarial scenario {name!r}; "
                       f"choose from {SCENARIOS}") from None
    return factory()


def all_specs() -> Dict[str, WorkloadSpec]:
    """Return {name: spec} for the whole bank, in catalog order."""
    return {name: get(name) for name in SCENARIOS}


__all__ = ["SCENARIOS", "EXPECTATIONS", "EXPECT_LENGTH", "get", "all_specs"]
