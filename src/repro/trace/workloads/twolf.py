"""twolf — standard-cell placement and routing.

Like parser, a benchmark where the paper reports gDiff gaining up to 34
points over local predictors: simulated-annealing moves read freshly
perturbed (hard) coordinates and then compute long runs of dependent
deltas from them.  Local predictability is the lowest in the suite after
gap; global stride locality is everywhere.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    CounterClusterKernel,
    PeriodicKernel,
    PointerChaseKernel,
    RandomKernel,
    SpillFillKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop, tiny


def spec() -> WorkloadSpec:
    """Build the twolf-like workload."""
    return WorkloadSpec(
        name="twolf",
        seed=0x2801F,
        description="annealing moves: hard coordinates, dependent deltas",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=3, stride=4),
                    lambda: ArrayWalkKernel(elem_stride=16,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.7),
                ],
                iterations=72,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=4),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=16, value_mode="stride",
                        footprint=1 << 16), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=12)),
                    KernelSlot(lambda: PeriodicKernel(period=14)),
                    KernelSlot(lambda: RandomKernel(span=1 << 27)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.7)),
                ],
                iterations=8,
            ),
            # The annealing-move delta chains (the gDiff territory).
            small_loop(
                [
                    lambda: ChainKernel(uses=5, offsets=(4, 12, 20, 28, 36),
                                        footprint=1 << 16, spread=16),
                    lambda: HashProbeKernel(buckets=96, reorder_prob=0.3),
                    lambda: SpillFillKernel(gap=2, footprint=1 << 15,
                                            spread=16),
                    lambda: RandomKernel(span=1 << 27),
                ],
                iterations=55,
                pad=4,
            ),
            tiny(lambda: PointerChaseKernel(
                node_stride=56,
                field_offset=16,
                payload_delta=40,
                fields=1,
                jump_prob=0.15,
                footprint=1 << 20,
            ), iterations=20, pad=30),
        ],
    )
