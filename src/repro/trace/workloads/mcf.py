"""mcf — network simplex minimum-cost flow solver.

The paper's star benchmark: pointer-intensive over a multi-megabyte arc
array, an L1 D-cache miss rate of 44%, the highest gDiff profile accuracy
(86%), and the largest speedup (53% over baseline) because gDiff predicts
the values *and addresses* of missing loads, letting dependent loads issue
under the miss (Section 7).

Dominated here by the arc-traversal loop: a :class:`PointerChaseKernel`
with allocation-order node strides (per Serrano & Wu's observation the
paper cites), several correlated fields per arc record, a huge footprint,
and a long body (real mcf scans are ~100 instructions per arc), densified
with the loop's own counters.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    CounterClusterKernel,
    CounterKernel,
    PadKernel,
    PeriodicKernel,
    PointerChaseKernel,
    RandomKernel,
)
from ..synthetic import KernelSlot, LoopGroup, WorkloadSpec
from .common import loop, small_loop


def spec() -> WorkloadSpec:
    """Build the mcf-like workload."""
    arc_loop = LoopGroup(
        slots=[
            KernelSlot(lambda: PointerChaseKernel(
                node_stride=320,
                field_offset=40,
                payload_delta=24,
                fields=4,
                jump_prob=0.15,
                footprint=1 << 23,
            )),
            KernelSlot(lambda: CounterClusterKernel(count=4, stride=136)),
            KernelSlot(lambda: CounterKernel(stride=320)),
            # Long body: the paper-scale arc scan is ~100 instructions, so
            # at most one chase instance is in flight at a time.
            KernelSlot(lambda: PadKernel(count=56, store_every=0)),
        ],
        iterations=60,
        weight=2,
    )
    return WorkloadSpec(
        name="mcf",
        seed=0x3CF,
        description="pointer-chasing over a huge arc array; 40%+ miss rate",
        groups=[
            arc_loop,
            small_loop(
                [
                    lambda: ArrayWalkKernel(elem_stride=64,
                                            value_mode="stride",
                                            footprint=1 << 21),
                    lambda: PeriodicKernel(period=36),
                    lambda: RandomKernel(span=1 << 30),
                    lambda: BranchyKernel(taken_prob=0.85),
                ],
                iterations=35,
                pad=8,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=64),
                               repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=12)),
                    KernelSlot(lambda: ChainKernel(
                        uses=3, offsets=(16, 48, 8), footprint=1 << 21,
                        spread=16)),
                    KernelSlot(lambda: HashProbeKernel(buckets=128, reorder_prob=0.2)),
                    KernelSlot(lambda: RandomKernel(span=1 << 30)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.9)),
                ],
                iterations=10,
            ),
        ],
    )
