"""perl — perl interpreter (perlbmk).

Interpreter dispatch: constants and repeating opcode-handler sequences
(context locality for DFCM), solid counter groups in dense loops, a
moderate share of dependent-chain and spill/fill traffic.  One of the
more predictable benchmarks for every scheme, with >90% gated accuracy in
Figure 16.
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    ConstantKernel,
    CounterClusterKernel,
    CounterKernel,
    PeriodicKernel,
    RandomKernel,
    SpillFillKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop


def spec() -> WorkloadSpec:
    """Build the perl-like workload."""
    return WorkloadSpec(
        name="perl",
        seed=0xBE51,
        description="interpreter dispatch: constants, periodic handlers",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=4, stride=16),
                    lambda: ConstantKernel(value=0x5E1F),
                    lambda: ArrayWalkKernel(elem_stride=8,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: CounterKernel(stride=8),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.74),
                ],
                iterations=62,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=16),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=8, value_mode="stride",
                        footprint=1 << 14), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=12), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=14), repeat=2),
                    KernelSlot(lambda: RandomKernel(span=1 << 26)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.75)),
                ],
                iterations=10,
            ),
            small_loop(
                [
                    lambda: ChainKernel(uses=3, offsets=(8, 16, 24),
                                        footprint=1 << 14, spread=16),
                    lambda: HashProbeKernel(buckets=160, reorder_prob=0.2),
                    lambda: SpillFillKernel(gap=1, footprint=1 << 13,
                                            spread=16),
                    lambda: CounterKernel(stride=16),
                ],
                iterations=30,
                pad=4,
            ),
        ],
    )
