"""gcc — optimising compiler.

Large, irregular code: a solid regular substrate across many small loops,
a real share of spill/fill traffic (compiler register pressure), short
dependent chains over IR fields, revisited hash buckets, and noticeable
control-flow variation (hammocks and poorly biased branches).
"""

from __future__ import annotations

from ..kernels import (
    HashProbeKernel,
    ArrayWalkKernel,
    BranchyKernel,
    ChainKernel,
    ConstantKernel,
    CounterClusterKernel,
    CounterKernel,
    PeriodicKernel,
    RandomKernel,
    RetraverseKernel,
    SpillFillKernel,
)
from ..synthetic import KernelSlot, WorkloadSpec
from .common import loop, small_loop


def spec() -> WorkloadSpec:
    """Build the gcc-like workload."""
    return WorkloadSpec(
        name="gcc",
        seed=0x6CC,
        description="irregular compiler: spill/fill, short chains, hammocks",
        groups=[
            small_loop(
                [
                    lambda: CounterClusterKernel(count=3, stride=8),
                    lambda: ArrayWalkKernel(elem_stride=16,
                                            value_mode="stride",
                                            footprint=1 << 15),
                    lambda: CounterKernel(stride=4),
                    lambda: ConstantKernel(value=0x1000_0000),
                    lambda: PeriodicKernel(period=36),
                    lambda: BranchyKernel(taken_prob=0.72),
                ],
                iterations=60,
            ),
            loop(
                [
                    KernelSlot(lambda: CounterClusterKernel(count=3, stride=8),
                               repeat=2),
                    KernelSlot(lambda: ArrayWalkKernel(
                        elem_stride=16, value_mode="stride",
                        footprint=1 << 16), repeat=3),
                    KernelSlot(lambda: PeriodicKernel(period=12), repeat=2),
                    KernelSlot(lambda: PeriodicKernel(period=14)),
                    KernelSlot(lambda: RandomKernel(span=1 << 28)),
                    KernelSlot(lambda: RetraverseKernel(
                        sites=128, reorder_prob=0.4)),
                    KernelSlot(lambda: BranchyKernel(taken_prob=0.7)),
                ],
                iterations=10,
            ),
            # IR-field chains and register spill/fill.
            small_loop(
                [
                    lambda: ChainKernel(uses=4, offsets=(8, 24, 40, 16),
                                        footprint=1 << 16, spread=16),
                    lambda: HashProbeKernel(buckets=192, reorder_prob=0.3),
                    lambda: SpillFillKernel(gap=1, footprint=1 << 14,
                                            spread=16),
                    lambda: CounterKernel(stride=8),
                ],
                iterations=28,
                pad=4,
            ),
        ],
    )
