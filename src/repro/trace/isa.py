"""Minimal dynamic-instruction model used throughout the simulation.

The reproduction is *trace driven*: workload generators emit a stream of
:class:`Instruction` records that carry everything the predictors and the
pipeline model need — the static PC, the operation class, architectural
register operands, the produced value (for value-producing instructions),
the effective address (for memory operations) and branch outcome
information.

The operation classes mirror the categories the paper cares about:

* ``IALU`` — integer ALU operations; value producing.
* ``LOAD`` — memory loads; value producing *and* address generating.
* ``STORE`` — memory stores; address generating but not value producing.
* ``BRANCH`` — conditional branches; not value producing.
* ``NOP`` — filler for anything else (unconditional jumps, system ops).

Per the paper, "value producing instructions" are integer operations and
loads that write a register (Section 3: predictions are made "for all value
producing integer operations or load instructions").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpClass(enum.IntEnum):
    """Coarse operation classes distinguished by the simulation."""

    IALU = 0
    LOAD = 1
    STORE = 2
    BRANCH = 3
    NOP = 4


@dataclass(slots=True)
class Instruction:
    """One dynamic instruction in a trace.

    Attributes:
        pc: static instruction address (byte address; 4-byte aligned).
        op: operation class.
        dest: destination architectural register, or ``None``.
        srcs: source architectural registers (possibly empty).
        value: value written to ``dest`` (machine word), or ``None``.
        addr: effective memory address for loads/stores, or ``None``.
        taken: branch outcome for branches, else ``None``.
        target: branch target address for branches, else ``None``.
        latency_class: optional hint for non-standard execution latency
            (0 means "use the default for the op class").
    """

    pc: int
    op: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = field(default=())
    value: Optional[int] = None
    addr: Optional[int] = None
    taken: Optional[bool] = None
    target: Optional[int] = None
    latency_class: int = 0

    @property
    def produces_value(self) -> bool:
        """True for instructions whose result the predictors target."""
        return self.value is not None and self.dest is not None and (
            self.op is OpClass.IALU or self.op is OpClass.LOAD
        )

    @property
    def is_load(self) -> bool:
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op is OpClass.BRANCH

    @property
    def is_mem(self) -> bool:
        return self.op is OpClass.LOAD or self.op is OpClass.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"pc={self.pc:#x}", self.op.name]
        if self.dest is not None:
            parts.append(f"r{self.dest}<-")
        if self.value is not None:
            parts.append(f"val={self.value}")
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        if self.taken is not None:
            parts.append("T" if self.taken else "NT")
        return f"<Insn {' '.join(parts)}>"


#: Number of architectural integer registers modelled (MIPS-like).
NUM_REGS = 32


def ialu(pc: int, dest: int, value: int, srcs: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for an integer ALU instruction."""
    return Instruction(pc=pc, op=OpClass.IALU, dest=dest, srcs=srcs, value=value)


def load(
    pc: int,
    dest: int,
    value: int,
    addr: int,
    srcs: Tuple[int, ...] = (),
) -> Instruction:
    """Convenience constructor for a load instruction."""
    return Instruction(
        pc=pc, op=OpClass.LOAD, dest=dest, srcs=srcs, value=value, addr=addr
    )


def store(pc: int, addr: int, srcs: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a store instruction."""
    return Instruction(pc=pc, op=OpClass.STORE, srcs=srcs, addr=addr)


def branch(
    pc: int, taken: bool, target: int, srcs: Tuple[int, ...] = ()
) -> Instruction:
    """Convenience constructor for a conditional branch."""
    return Instruction(
        pc=pc, op=OpClass.BRANCH, srcs=srcs, taken=taken, target=target
    )
