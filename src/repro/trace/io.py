"""Trace serialization: save and reload instruction traces.

Trace generation is deterministic, but regenerating a long workload for
every experiment repeats work, and users reproducing results across
machines want a stable artefact.  Two formats live here:

**Text format** (``save_trace`` / ``load_trace`` / ``iter_trace``) — a
line-oriented interchange format, optionally gzip-compressed by file
extension:

* header line: ``#repro-trace v1 <name>``
* one line per instruction:
  ``<op> <pc> <dest> <srcs> <value> <addr> <taken> <target>``
  with hexadecimal numbers, ``-`` for absent fields, srcs as
  comma-joined registers (or ``-``), and op as the OpClass name.

**Binary packed format** (``save_packed`` / ``load_packed``) — the
on-disk twin of :class:`~repro.trace.packed.PackedTrace` used by the
trace cache: each SoA column is struct-framed and zlib-compressed, with
a magic/version header, the instruction count, a per-column CRC-32 and
an end marker so corruption and truncation are detected before a single
instruction is handed to an experiment.  Layout:

* header: ``magic(8s) version(u16) flags(u16) count(u64)`` then the
  trace name (``u16`` length + UTF-8 bytes); header flag bit 0 records
  little-endian column data (big-endian hosts byte-swap on both sides).
* per column (fixed order, :data:`repro.trace.packed.COLUMNS`):
  ``typecode(u8) raw_nbytes(u64) comp_nbytes(u64) crc32(u32)`` followed
  by ``comp_nbytes`` of zlib data.
* trailer: ``magic(8s) count(u64)`` — a short read anywhere before this
  marker is reported as truncation.

Both formats round-trip every field of
:class:`~repro.trace.isa.Instruction` exactly (property tested).
"""

from __future__ import annotations

import gzip
import io
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .isa import Instruction, OpClass
from .packed import COLUMNS, PackedTrace
from .trace import Trace

_HEADER_PREFIX = "#repro-trace v1"

# -- binary packed format ----------------------------------------------------

#: Bumping this invalidates every cached trace (the cache keys on it and
#: the loader rejects mismatched files).
PACKED_FORMAT_VERSION = 1

PACKED_MAGIC = b"RPTRACE\x00"
_PACKED_END = b"RPTEND\x00\x00"
_HEADER = struct.Struct("<8sHHQ")
_COLUMN = struct.Struct("<BQQL")
_TRAILER = struct.Struct("<8sQ")
_NAME_LEN = struct.Struct("<H")
_FLAG_LITTLE = 0x1


class TraceFormatError(ValueError):
    """A binary trace file is corrupt, truncated, or of the wrong version."""


class IngestError(TraceFormatError):
    """An external import source is malformed, truncated, or empty.

    Raised by every ingest adapter in place of bare ``struct.error`` /
    ``zlib.error`` / ``UnicodeDecodeError`` / ``ValueError`` so callers
    can report *where* the source went bad: ``offset`` is the byte
    offset of the offending record for binary sources, ``line`` the
    1-based line number for text sources (whichever applies is set).
    """

    def __init__(self, message: str, *, source=None, offset=None, line=None):
        where = ""
        if line is not None:
            where = f" (line {line})"
        elif offset is not None:
            where = f" (byte offset {offset})"
        prefix = f"{source}: " if source is not None else ""
        super().__init__(f"{prefix}{message}{where}")
        self.source = None if source is None else str(source)
        self.offset = offset
        self.line = line


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _field(value, fmt: str = "x") -> str:
    if value is None:
        return "-"
    if fmt == "x":
        return format(value, "x")
    return str(value)


def _encode(insn: Instruction) -> str:
    srcs = ",".join(format(r, "d") for r in insn.srcs) if insn.srcs else "-"
    taken = "-" if insn.taken is None else ("1" if insn.taken else "0")
    return " ".join([
        insn.op.name,
        format(insn.pc, "x"),
        _field(insn.dest, "d") if insn.dest is not None else "-",
        srcs,
        _field(insn.value),
        _field(insn.addr),
        taken,
        _field(insn.target),
    ])


def _parse_int(token: str, base: int = 16):
    return None if token == "-" else int(token, base)


def _decode(line: str) -> Instruction:
    parts = line.split(" ")
    if len(parts) != 8:
        raise ValueError(f"malformed trace line: {line!r}")
    op_name, pc, dest, srcs, value, addr, taken, target = parts
    try:
        op = OpClass[op_name]
    except KeyError:
        raise ValueError(f"unknown op class {op_name!r}") from None
    return Instruction(
        pc=int(pc, 16),
        op=op,
        dest=_parse_int(dest, 10),
        srcs=tuple(int(r) for r in srcs.split(",")) if srcs != "-" else (),
        value=_parse_int(value),
        addr=_parse_int(addr),
        taken=None if taken == "-" else taken == "1",
        target=_parse_int(target),
    )


def save_trace(trace: Iterable[Instruction], path: Union[str, Path],
               name: str = "trace") -> int:
    """Write a trace to *path* (gzip if the name ends in .gz).

    Returns the number of instructions written.
    """
    if isinstance(trace, Trace):
        name = trace.name
    count = 0
    with _open(path, "w") as fh:
        fh.write(f"{_HEADER_PREFIX} {name}\n")
        for insn in trace:
            fh.write(_encode(insn) + "\n")
            count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[Instruction]:
    """Stream instructions from a saved trace file."""
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path}: not a repro trace file")
        for line in fh:
            line = line.rstrip("\n")
            if line:
                yield _decode(line)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a full trace (with its recorded name) from *path*."""
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path}: not a repro trace file")
        name = header[len(_HEADER_PREFIX):].strip() or path.stem
        instructions: List[Instruction] = []
        for line in fh:
            line = line.rstrip("\n")
            if line:
                instructions.append(_decode(line))
    return Trace(instructions, name=name)


def save_packed(trace, path: Union[str, Path], name: str = "trace",
                compresslevel: int = 1) -> int:
    """Write a trace to *path* in the binary packed format.

    *trace* may be a :class:`PackedTrace` (written directly) or any
    instruction iterable (packed first).  Level-1 zlib wins nearly all of
    the size at a fraction of the CPU of the default level — the cache is
    read far more often than written, and decompression speed is level
    independent.  Returns the number of bytes written.
    """
    if not isinstance(trace, PackedTrace):
        trace = PackedTrace.from_instructions(trace, name=name)
    columns = trace.columns()
    count = len(trace)
    name_bytes = trace.name.encode("utf-8")
    flags = _FLAG_LITTLE if sys.byteorder == "little" else 0
    written = 0
    path = Path(path)
    with open(path, "wb") as fh:
        written += fh.write(_HEADER.pack(PACKED_MAGIC, PACKED_FORMAT_VERSION,
                                         flags, count))
        written += fh.write(_NAME_LEN.pack(len(name_bytes)))
        written += fh.write(name_bytes)
        for col, typecode in COLUMNS:
            data = columns[col]
            if sys.byteorder != "little":  # pragma: no cover - BE hosts
                data = array(typecode, data)
                data.byteswap()
            raw = data.tobytes()
            comp = zlib.compress(raw, compresslevel)
            written += fh.write(_COLUMN.pack(ord(typecode), len(raw),
                                             len(comp), zlib.crc32(raw)))
            written += fh.write(comp)
        written += fh.write(_TRAILER.pack(_PACKED_END, count))
    return written


def _read_exact(fh, nbytes: int, path, what: str) -> bytes:
    data = fh.read(nbytes)
    if len(data) != nbytes:
        raise TraceFormatError(f"{path}: truncated packed trace "
                               f"(short read in {what})")
    return data


def load_packed(path: Union[str, Path]) -> PackedTrace:
    """Load a binary packed trace, verifying magic, version, CRCs and count.

    Raises :class:`TraceFormatError` on any integrity failure so callers
    (the trace cache in particular) can discard the file and regenerate.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        header = _read_exact(fh, _HEADER.size, path, "header")
        magic, version, flags, count = _HEADER.unpack(header)
        if magic != PACKED_MAGIC:
            raise TraceFormatError(f"{path}: not a packed repro trace")
        if version != PACKED_FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: packed format v{version} != "
                f"supported v{PACKED_FORMAT_VERSION}")
        (name_len,) = _NAME_LEN.unpack(
            _read_exact(fh, _NAME_LEN.size, path, "name"))
        name = _read_exact(fh, name_len, path, "name").decode("utf-8")
        columns = {}
        for col, typecode in COLUMNS:
            frame = _read_exact(fh, _COLUMN.size, path, f"column {col}")
            tc, raw_len, comp_len, crc = _COLUMN.unpack(frame)
            if tc != ord(typecode):
                raise TraceFormatError(
                    f"{path}: column {col} typecode mismatch")
            comp = _read_exact(fh, comp_len, path, f"column {col}")
            try:
                raw = zlib.decompress(comp)
            except zlib.error as exc:
                raise TraceFormatError(
                    f"{path}: column {col} corrupt: {exc}") from None
            if len(raw) != raw_len or zlib.crc32(raw) != crc:
                raise TraceFormatError(
                    f"{path}: column {col} checksum mismatch")
            data = array(typecode)
            data.frombytes(raw)
            little = bool(flags & _FLAG_LITTLE)
            if little != (sys.byteorder == "little"):  # pragma: no cover
                data.byteswap()
            if len(data) != count:
                raise TraceFormatError(
                    f"{path}: column {col} holds {len(data)} entries, "
                    f"header promised {count}")
            columns[col] = data
        trailer = _read_exact(fh, _TRAILER.size, path, "trailer")
        end_magic, end_count = _TRAILER.unpack(trailer)
        if end_magic != _PACKED_END or end_count != count:
            raise TraceFormatError(f"{path}: bad end marker")
    return PackedTrace(columns, name=name)
