"""Trace serialization: save and reload instruction traces.

Trace generation is deterministic, but regenerating a long workload for
every experiment repeats work, and users reproducing results across
machines want a stable artefact.  The format is a line-oriented text
format (optionally gzip-compressed by file extension):

* header line: ``#repro-trace v1 <name>``
* one line per instruction:
  ``<op> <pc> <dest> <srcs> <value> <addr> <taken> <target>``
  with hexadecimal numbers, ``-`` for absent fields, srcs as
  comma-joined registers (or ``-``), and op as the OpClass name.

The format round-trips every field of
:class:`~repro.trace.isa.Instruction` exactly (property tested).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .isa import Instruction, OpClass
from .trace import Trace

_HEADER_PREFIX = "#repro-trace v1"


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _field(value, fmt: str = "x") -> str:
    if value is None:
        return "-"
    if fmt == "x":
        return format(value, "x")
    return str(value)


def _encode(insn: Instruction) -> str:
    srcs = ",".join(format(r, "d") for r in insn.srcs) if insn.srcs else "-"
    taken = "-" if insn.taken is None else ("1" if insn.taken else "0")
    return " ".join([
        insn.op.name,
        format(insn.pc, "x"),
        _field(insn.dest, "d") if insn.dest is not None else "-",
        srcs,
        _field(insn.value),
        _field(insn.addr),
        taken,
        _field(insn.target),
    ])


def _parse_int(token: str, base: int = 16):
    return None if token == "-" else int(token, base)


def _decode(line: str) -> Instruction:
    parts = line.split(" ")
    if len(parts) != 8:
        raise ValueError(f"malformed trace line: {line!r}")
    op_name, pc, dest, srcs, value, addr, taken, target = parts
    try:
        op = OpClass[op_name]
    except KeyError:
        raise ValueError(f"unknown op class {op_name!r}") from None
    return Instruction(
        pc=int(pc, 16),
        op=op,
        dest=_parse_int(dest, 10),
        srcs=tuple(int(r) for r in srcs.split(",")) if srcs != "-" else (),
        value=_parse_int(value),
        addr=_parse_int(addr),
        taken=None if taken == "-" else taken == "1",
        target=_parse_int(target),
    )


def save_trace(trace: Iterable[Instruction], path: Union[str, Path],
               name: str = "trace") -> int:
    """Write a trace to *path* (gzip if the name ends in .gz).

    Returns the number of instructions written.
    """
    if isinstance(trace, Trace):
        name = trace.name
    count = 0
    with _open(path, "w") as fh:
        fh.write(f"{_HEADER_PREFIX} {name}\n")
        for insn in trace:
            fh.write(_encode(insn) + "\n")
            count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[Instruction]:
    """Stream instructions from a saved trace file."""
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path}: not a repro trace file")
        for line in fh:
            line = line.rstrip("\n")
            if line:
                yield _decode(line)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a full trace (with its recorded name) from *path*."""
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path}: not a repro trace file")
        name = header[len(_HEADER_PREFIX):].strip() or path.stem
        instructions: List[Instruction] = []
        for line in fh:
            line = line.rstrip("\n")
            if line:
                instructions.append(_decode(line))
    return Trace(instructions, name=name)
