"""Value-stream kernels: the building blocks of synthetic workloads.

The paper's experiments measure how predictors respond to the *structure*
of a program's value stream.  Section 2 names the structures that matter:

* stride locality embedded in code sequences — a hard-to-predict "define"
  followed by dependent uses at constant offsets (Figure 3);
* spill/fill — a value stored to free a register and reloaded later, so
  the reload's value equals an earlier instruction's value (Figure 2);
* stride locality embedded in data structures — linked nodes allocated in
  traversal order, giving near-constant strides between the addresses (and
  pointer values) of neighbouring field accesses (Figure 4);
* plain local localities — loop counters (stride), repeating sequences
  (context), constants — that the baselines capture;
* generational noise and long computation chains (the benchmark *gap*)
  that defeat short global value queues.

Each kernel below generates an endless sequence of instruction *blocks*
exhibiting one of these structures, with stable static PCs so the
PC-indexed predictors see coherent local histories.  A workload
(:mod:`repro.trace.synthetic`) interleaves weighted kernels into a full
instruction trace.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..wordops import WORD_MASK, wadd, wrap
from .isa import Instruction, OpClass, branch, ialu, load, store


class RegAllocator:
    """Hands out architectural registers to kernels, reusing cyclically.

    Registers 1..30 are available (r0 is the hardwired zero, r31 the link
    register by MIPS convention).  Distinct kernels receive distinct
    registers while supplies last; overflow wraps, which merely adds
    benign cross-kernel dependencies.
    """

    def __init__(self) -> None:
        self._next = 1

    def alloc(self) -> int:
        reg = 1 + (self._next - 1) % 30
        self._next += 1
        return reg

    def last(self) -> int:
        """The most recently handed-out register (r1 if none yet).

        Pad/filler kernels read this register so that non-value work
        *consumes* neighbouring kernels' results the way real code does —
        giving value prediction dependents to unblock.
        """
        if self._next == 1:
            return 1
        return 1 + (self._next - 2) % 30


class Kernel(ABC):
    """A generator of instruction blocks with one value-stream structure."""

    #: Short name used in workload specs and reports.
    name: str = "kernel"

    def __init__(self) -> None:
        self.pc_base = 0
        self.addr_base = 0
        self._bound = False
        self._copies = 1
        self._copy = 0

    def bind(self, pc_base: int, addr_base: int, regs: RegAllocator) -> None:
        """Attach the kernel to a code region, data region and registers."""
        self.pc_base = pc_base
        self.addr_base = addr_base
        self._allocate_regs(regs)
        self._bound = True

    def set_copies(self, copies: int) -> None:
        """Rotate this kernel's static PCs across *copies* code regions.

        Models a large code body (inlining/unrolling replicates hot code):
        the dynamic value stream is untouched, but successive blocks carry
        PCs from successive copies, multiplying the static-instruction
        count.  Used by the Figure 9 aliasing study, where prediction-table
        pressure is the quantity under test.
        """
        if copies <= 0:
            raise ValueError("copies must be positive")
        self._copies = copies
        self._copy = 0

    def advance_copy(self) -> None:
        """Move to the next PC copy (called by the generator per block)."""
        if self._copies > 1:
            self._copy = (self._copy + 1) % self._copies

    def pc(self, slot: int) -> int:
        """Static PC of instruction *slot* within this kernel's code."""
        return self.pc_base + 0x200 * self._copy + 4 * slot

    @abstractmethod
    def _allocate_regs(self, regs: RegAllocator) -> None:
        """Claim the architectural registers the kernel needs."""

    @abstractmethod
    def block(self, rng: random.Random) -> List[Instruction]:
        """Emit the next dynamic iteration of this kernel."""


class CounterKernel(Kernel):
    """A loop induction variable: ``add r, r, #stride``.

    Locally stride predictable, context predictable, and globally stride
    predictable (against its own previous occurrence) — the easy case every
    predictor should get right.
    """

    name = "counter"

    def __init__(self, stride: int = 1, start: int = 0):
        super().__init__()
        self.stride = stride
        self.value = wrap(start)

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        self.value = wadd(self.value, self.stride)
        return [ialu(self.pc(0), self.reg, self.value, srcs=(self.reg,))]


class CounterClusterKernel(Kernel):
    """Several same-stride induction variables updated back to back.

    Real loop bodies advance multiple pointers/indices by the same element
    size (``p += 8; q += 8; i += 1*8``).  Every member is locally stride
    predictable; members after the first are *also* globally stride
    predictable at distance 1, because the difference between neighbouring
    counters is loop invariant — the "implicit use" form of Figure 3.

    Args:
        count: number of counters in the cluster.
        stride: the shared stride.
        spread: initial spacing between the counters' values.
    """

    name = "counter-cluster"

    def __init__(self, count: int = 4, stride: int = 8, spread: int = 0x1000):
        super().__init__()
        if count <= 0:
            raise ValueError("count must be positive")
        self.count = count
        self.stride = stride
        self.values = [wrap(i * spread) for i in range(count)]

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.regs_ = [regs.alloc() for _ in range(self.count)]

    def block(self, rng: random.Random) -> List[Instruction]:
        insns = []
        for i in range(self.count):
            self.values[i] = wadd(self.values[i], self.stride)
            insns.append(
                ialu(self.pc(i), self.regs_[i], self.values[i],
                     srcs=(self.regs_[i],))
            )
        return insns


class ConstantKernel(Kernel):
    """Produces the same value every time (e.g. a loop-invariant base)."""

    name = "constant"

    def __init__(self, value: int = 0xDEADBEEF):
        super().__init__()
        self.value = wrap(value)

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        return [ialu(self.pc(0), self.reg, self.value)]


class RandomKernel(Kernel):
    """Hard-to-predict generational values: uniform noise, fresh each time.

    Optionally emits a short chain of *noise* dependent operations whose
    values are also uncorrelated (modelling gap's hard computation chains).
    Nothing — local or global — predicts these.
    """

    name = "random"

    def __init__(self, span: int = 1 << 30, chain: int = 0):
        super().__init__()
        self.span = span
        self.chain = chain

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        insns = [ialu(self.pc(0), self.reg, rng.randrange(self.span))]
        for i in range(self.chain):
            insns.append(
                ialu(
                    self.pc(1 + i),
                    self.reg,
                    rng.randrange(self.span),
                    srcs=(self.reg,),
                )
            )
        return insns


class ChainKernel(Kernel):
    """Figure 3's structure: a hard define followed by dependent uses.

    The *define* (a load of an unpredictable value) defeats every
    predictor; each *use* adds a constant to its predecessor, so every use
    is globally stride predictable at distance 1 from the value before it —
    while its own local history is noise plus a constant, i.e. noise.

    Args:
        uses: number of dependent use instructions per block.
        offsets: the constants added by successive uses (cycled).
        footprint: bytes of the region the define loads from (controls
            D-cache behaviour).
        spread: non-value-producing instructions between the define and
            its first use (with a couple more between subsequent uses).
            The global-value-queue distance is unaffected — only value
            producers enter the queue — but the *instruction* distance
            grows, so in a pipeline the define has completed by the time a
            use dispatches.  Real dependent chains (and especially
            spill/fill pairs) have exactly this shape; with ``spread=0``
            the correlated value is always still in flight and only the
            idealised profile study can exploit it.
    """

    name = "chain"

    def __init__(
        self,
        uses: int = 3,
        offsets: Sequence[int] = (4, 8, 16),
        footprint: int = 1 << 16,
        spread: int = 0,
    ):
        super().__init__()
        self.uses = uses
        self.offsets = list(offsets)
        self.footprint = footprint
        self.spread = spread
        self._cursor = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.def_reg = regs.alloc()
        self.use_reg = regs.alloc()
        self.addr_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        addr = self.addr_base + (self._cursor % self.footprint)
        self._cursor += 8
        value = rng.getrandbits(32)
        insns = [
            load(self.pc(0), self.def_reg, value, addr, srcs=(self.addr_reg,))
        ]
        slot = 1
        for _ in range(self.spread):
            insns.append(Instruction(pc=self.pc(slot), op=OpClass.NOP))
            slot += 1
        acc = value
        for i in range(self.uses):
            acc = wadd(acc, self.offsets[i % len(self.offsets)])
            insns.append(
                ialu(self.pc(slot), self.use_reg, acc, srcs=(self.def_reg,))
            )
            slot += 1
            if i + 1 < self.uses:
                for _ in range(max(2, self.spread // 8)):
                    insns.append(
                        Instruction(pc=self.pc(slot), op=OpClass.NOP)
                    )
                    slot += 1
        return insns


class SpillFillKernel(Kernel):
    """Figure 2's structure: register spill and fill through memory.

    A correlated load produces a hard value; the value is stored to the
    stack and reloaded a few (noise) instructions later.  The reload's
    local history is noise, but its value equals the correlated load's
    value exactly — global stride locality with stride 0.

    Args:
        gap: number of uncorrelated value producers between spill and fill.
        fill_offset: constant added between store and reload (0 for a pure
            fill; nonzero models reload-plus-adjust sequences).
        spread: non-value-producing instructions between spill and fill
            (see :class:`ChainKernel`; real fills reload tens of
            instructions after the spill).
        uses: dependent ALU operations consuming the filled value (a value
            is reloaded in order to be used; these dependents are what a
            correct fill prediction unblocks).
    """

    name = "spill-fill"

    def __init__(self, gap: int = 2, fill_offset: int = 0,
                 footprint: int = 1 << 14, spread: int = 0, uses: int = 2):
        super().__init__()
        self.gap = gap
        self.fill_offset = fill_offset
        self.footprint = footprint
        self.spread = spread
        self.uses = uses
        self._cursor = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.val_reg = regs.alloc()
        self.tmp_reg = regs.alloc()
        self.sp_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        src_addr = self.addr_base + (self._cursor % self.footprint)
        self._cursor += 8
        stack_addr = self.addr_base + self.footprint + (self._cursor % 512)
        value = rng.getrandbits(32)
        insns = [
            # The correlated load: a hard-to-predict value.
            load(self.pc(0), self.val_reg, value, src_addr, srcs=(self.sp_reg,)),
            # Spill it.
            store(self.pc(1), stack_addr, srcs=(self.val_reg, self.sp_reg)),
        ]
        # Unrelated work between spill and fill.
        slot = 2
        for _ in range(self.gap):
            insns.append(ialu(self.pc(slot), self.tmp_reg,
                              rng.getrandbits(24)))
            slot += 1
        for _ in range(self.spread):
            insns.append(Instruction(pc=self.pc(slot), op=OpClass.NOP))
            slot += 1
        # The fill: value identical (modulo fill_offset) to the correlated
        # load's — the instruction the paper's Figure 1 shows is hopeless
        # for local predictors.
        fill_value = wadd(value, self.fill_offset)
        insns.append(
            load(
                self.pc(slot),
                self.val_reg,
                fill_value,
                stack_addr,
                srcs=(self.sp_reg,),
            )
        )
        slot += 1
        acc = fill_value
        for u in range(self.uses):
            acc = wadd(acc, 8 * (u + 1))
            insns.append(
                ialu(self.pc(slot), self.tmp_reg, acc, srcs=(self.val_reg,))
            )
            slot += 1
        return insns


class PointerChaseKernel(Kernel):
    """Figure 4's structure: linked nodes allocated in traversal order.

    Each iteration visits one node and performs two loads:

    * ``lw r_next, 0(node)`` — the next-node pointer.  Its value is
      ``node + node_stride`` most of the time, but with probability
      ``jump_prob`` the chain jumps to a random node (free-list recycling),
      breaking the local stride.
    * ``lw r_payload, field_offset(node)`` — a payload pointer whose value
      is at a constant offset from the next pointer (the ``->string`` field
      allocated alongside the node).  Even across jumps, this load is
      globally stride predictable at distance 1 from the previous load.

    The *address* stream has the same structure, which is what makes gDiff
    effective for load-address prediction (Section 6): the payload address
    is always the node address plus ``field_offset``.

    Args:
        node_stride: allocation stride between consecutive nodes.
        field_offset: byte offset of the first payload field (subsequent
            fields follow at ``field_offset`` increments).
        payload_delta: constant difference between the first payload value
            and the next pointer (subsequent fields add further deltas).
        fields: number of payload loads per node (real records carry
            several pointer fields allocated together — mcf's arc records
            are the canonical example).
        jump_prob: probability of a non-sequential next pointer.
        footprint: bytes spanned by the node arena (drives D-cache misses).
    """

    name = "pointer-chase"

    def __init__(
        self,
        node_stride: int = 48,
        field_offset: int = 8,
        payload_delta: int = 24,
        fields: int = 1,
        jump_prob: float = 0.1,
        footprint: int = 1 << 22,
    ):
        super().__init__()
        if fields < 0:
            raise ValueError("fields cannot be negative")
        self.node_stride = node_stride
        self.field_offset = field_offset
        self.payload_delta = payload_delta
        self.fields = fields
        self.jump_prob = jump_prob
        self.footprint = footprint
        self._node = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.next_reg = regs.alloc()
        self.payload_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        node_addr = self.addr_base + self._node
        if rng.random() < self.jump_prob:
            next_off = rng.randrange(self.footprint // self.node_stride)
            next_node = next_off * self.node_stride
        else:
            next_node = (self._node + self.node_stride) % self.footprint
        next_ptr = self.addr_base + next_node
        insns = [
            load(self.pc(0), self.next_reg, next_ptr, node_addr,
                 srcs=(self.next_reg,)),
        ]
        for f in range(self.fields):
            payload = wadd(next_ptr, self.payload_delta * (f + 1))
            insns.append(
                load(self.pc(1 + f), self.payload_reg, payload,
                     node_addr + self.field_offset * (f + 1),
                     srcs=(self.next_reg,))
            )
        self._node = next_node
        return insns


class PeriodicKernel(Kernel):
    """A repeating value sequence (context locality, not stride locality).

    The local context predictors (FCM/DFCM) learn the period exactly; the
    stride predictors see a varying delta; gDiff can only lock on if one
    period of the workload's global stream fits inside its queue.  This is
    the dial that gives DFCM its wins over the stride baselines.
    """

    name = "periodic"

    def __init__(self, values: Optional[Sequence[int]] = None, period: int = 5):
        super().__init__()
        if values is None:
            seeded = random.Random(period * 2654435761 % (1 << 31))
            values = [seeded.getrandbits(20) for _ in range(period)]
        self.values = [wrap(v) for v in values]
        self._phase = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        value = self.values[self._phase]
        self._phase = (self._phase + 1) % len(self.values)
        return [ialu(self.pc(0), self.reg, value, srcs=(self.reg,))]


class SparseChainKernel(Kernel):
    """A long computation chain with noise between its links (gap's shape).

    Each block starts a *fresh* chain from an unpredictable seed value, so
    no link is locally predictable.  Successive links add fixed per-link
    constants, but ``spacing`` unpredictable values separate them, so the
    nearest correlated value sits ``spacing + 1`` entries back in the
    global value queue.  With the paper's profile queue of 8 the chain is
    invisible; a queue of 32 captures it — reproducing gap's jump from
    ~40% to ~60% accuracy when the GVQ grows (Section 3).
    """

    name = "sparse-chain"

    def __init__(self, links: int = 2, spacing: int = 10, link_offset: int = 40):
        super().__init__()
        self.links = links
        self.spacing = spacing
        self.link_offset = link_offset

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.chain_reg = regs.alloc()
        self.noise_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        insns = [ialu(self.pc(0), self.chain_reg, rng.getrandbits(28))]
        value = insns[0].value
        slot = 1
        for link in range(self.links):
            for _ in range(self.spacing):
                insns.append(
                    ialu(self.pc(slot), self.noise_reg, rng.getrandbits(28))
                )
                slot += 1
            value = wadd(value, self.link_offset * (link + 1))
            insns.append(
                ialu(self.pc(slot), self.chain_reg, value,
                     srcs=(self.chain_reg,))
            )
            slot += 1
        return insns


class ParallelChainsKernel(Kernel):
    """Many independent def/use chains interleaved breadth-first.

    Each block first produces ``width`` fresh unpredictable seed values
    (one per chain), then ``rounds`` waves of uses; the use of chain *c* in
    wave *r* adds a fixed constant to that chain's previous element.  A use
    is therefore globally stride correlated only with the value ``width``
    positions back — its own chain — while its immediate neighbours belong
    to other chains whose seeds are fresh noise.

    This is the long-computation-chain structure the paper attributes to
    *gap*: with ``width`` larger than the queue, an order-8 gDiff sees
    nothing, while an order-32 gDiff captures every use (reproducing gap's
    40% → 59.7% jump when the GVQ grows to 32).
    """

    name = "parallel-chains"

    def __init__(self, width: int = 10, rounds: int = 1, offset_seed: int = 7):
        super().__init__()
        if width <= 0 or rounds < 0:
            raise ValueError("width must be positive and rounds non-negative")
        self.width = width
        self.rounds = rounds
        seeded = random.Random(offset_seed)
        self.offsets = [
            [8 * (1 + seeded.randrange(64)) for _ in range(width)]
            for _ in range(rounds)
        ]

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.seed_reg = regs.alloc()
        self.use_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        insns = []
        values = []
        for c in range(self.width):
            value = rng.getrandbits(30)
            values.append(value)
            insns.append(ialu(self.pc(c), self.seed_reg, value))
        slot = self.width
        for r in range(self.rounds):
            for c in range(self.width):
                values[c] = wadd(values[c], self.offsets[r][c])
                insns.append(
                    ialu(self.pc(slot), self.use_reg, values[c],
                         srcs=(self.seed_reg,))
                )
                slot += 1
        return insns


class ArrayWalkKernel(Kernel):
    """A sequential array scan: stride-predictable addresses, chosen values.

    Args:
        elem_stride: address stride between elements.
        value_mode: ``"stride"`` (values advance by a constant — fully
            predictable), ``"random"`` (address predictable, value not),
            or ``"copy"`` (value equals the address — both streams stride).
        footprint: array size in bytes; the walk wraps around.
    """

    name = "array-walk"

    VALUE_MODES = ("stride", "random", "copy")

    def __init__(
        self,
        elem_stride: int = 8,
        value_mode: str = "stride",
        value_stride: int = 3,
        footprint: int = 1 << 15,
    ):
        super().__init__()
        if value_mode not in self.VALUE_MODES:
            raise ValueError(f"unknown value_mode {value_mode!r}")
        self.elem_stride = elem_stride
        self.value_mode = value_mode
        self.value_stride = value_stride
        self.footprint = footprint
        self._offset = 0
        self._value = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.reg = regs.alloc()
        self.idx_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        addr = self.addr_base + self._offset
        self._offset = (self._offset + self.elem_stride) % self.footprint
        if self.value_mode == "stride":
            self._value = wadd(self._value, self.value_stride)
            value = self._value
        elif self.value_mode == "copy":
            value = wrap(addr)
        else:
            value = rng.getrandbits(32)
        return [load(self.pc(0), self.reg, value, addr, srcs=(self.idx_reg,))]


class RetraverseKernel(Kernel):
    """Repeated traversals of a fixed set of addresses in shuffled order.

    Models hash-table/bucket revisits: the *addresses* recur (so a Markov
    predictor tag-hits a lot) but the successor of a given address changes
    between traversals with probability ``reorder_prob`` (so many of those
    tag-hits predict the wrong successor — the paper's high-coverage,
    low-accuracy Markov behaviour).  Values are fresh noise every visit.
    """

    name = "retraverse"

    def __init__(
        self,
        sites: int = 64,
        reorder_prob: float = 0.5,
        site_stride: int = 4160,
    ):
        super().__init__()
        self.sites = sites
        self.reorder_prob = reorder_prob
        self.site_stride = site_stride
        self._order: Optional[List[int]] = None
        self._pos = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        if self._order is None:
            self._order = list(range(self.sites))
            rng.shuffle(self._order)
        if self._pos >= self.sites:
            self._pos = 0
            # Perturb the traversal order: swap a fraction of neighbours.
            for i in range(self.sites - 1):
                if rng.random() < self.reorder_prob:
                    j = rng.randrange(self.sites)
                    self._order[i], self._order[j] = self._order[j], self._order[i]
        site = self._order[self._pos]
        self._pos += 1
        addr = self.addr_base + site * self.site_stride
        return [load(self.pc(0), self.reg, rng.getrandbits(32), addr,
                     srcs=(self.reg,))]


class HashProbeKernel(Kernel):
    """Hash-table probing: shuffled bucket revisits with a chained entry.

    Each block probes one bucket of a fixed table and then loads the entry
    it heads:

    * ``load r_b, bucket`` — the bucket head.  Buckets are visited in a
      lap order that reshuffles a little between laps, so the *address*
      sequence is hopeless for a local stride predictor but highly
      repetitive for a Markov predictor (same transitions most laps).
    * ``load r_e, bucket + entry_offset`` — the entry, at a constant
      offset: globally stride predictable (address *and* value) at
      distance 1 from the bucket load, whatever order buckets are probed
      in.

    Values: the bucket load produces a fresh (hard) key; the entry load
    produces ``key + entry_delta`` — the Figure 3 define/use pair again,
    this time reached through memory.

    This is the structure that gives the Section 6 load-address
    experiments their character: local stride misses the shuffled
    buckets, gDiff catches every entry load, and the Markov predictor
    tag-hits laps but mispredicts whenever the order changed.
    """

    name = "hash-probe"

    def __init__(
        self,
        buckets: int = 128,
        bucket_stride: int = 4160,
        entry_offset: int = 512,
        entry_delta: int = 48,
        reorder_prob: float = 0.2,
    ):
        super().__init__()
        if buckets <= 1:
            raise ValueError("need at least two buckets")
        self.buckets = buckets
        self.bucket_stride = bucket_stride
        self.entry_offset = entry_offset
        self.entry_delta = entry_delta
        self.reorder_prob = reorder_prob
        self._order: Optional[List[int]] = None
        self._pos = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.bucket_reg = regs.alloc()
        self.entry_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        if self._order is None:
            self._order = list(range(self.buckets))
            rng.shuffle(self._order)
        if self._pos >= self.buckets:
            self._pos = 0
            for i in range(self.buckets - 1):
                if rng.random() < self.reorder_prob:
                    j = rng.randrange(self.buckets)
                    self._order[i], self._order[j] = (
                        self._order[j], self._order[i])
        bucket_addr = self.addr_base + self._order[self._pos] * \
            self.bucket_stride
        self._pos += 1
        key = rng.getrandbits(30)
        return [
            load(self.pc(0), self.bucket_reg, key, bucket_addr,
                 srcs=(self.bucket_reg,)),
            load(self.pc(1), self.entry_reg, wadd(key, self.entry_delta),
                 bucket_addr + self.entry_offset, srcs=(self.bucket_reg,)),
        ]


class PadKernel(Kernel):
    """Non-value-producing filler: stores and other untracked work.

    Real programs are only ~50% value-producing integer operations; the
    rest is stores, floating point, system work.  Padding loop bodies with
    these instructions matters for the pipeline experiments: it sets the
    dynamic distance between successive instances of the same static
    instruction (and hence how stale a dispatch-time prediction is)
    without touching the value stream the profile experiments measure.

    Args:
        count: instructions per block.
        store_every: every ``store_every``-th instruction is a store to a
            small cache-resident buffer; the rest are generic non-value
            operations.
    """

    name = "pad"

    def __init__(self, count: int = 8, store_every: int = 4,
                 buffer_bytes: int = 4096):
        super().__init__()
        if count <= 0:
            raise ValueError("count must be positive")
        self.count = count
        self.store_every = store_every
        self.buffer_bytes = buffer_bytes
        self._cursor = 0

    def _allocate_regs(self, regs: RegAllocator) -> None:
        # Read the preceding kernel's register: pads are consumers of the
        # loop's real results, so they stall — and are unblocked by value
        # prediction — together with it.  Alternate instructions are left
        # dependency-free for instruction-level parallelism.
        self.src_reg = regs.last()

    def block(self, rng: random.Random) -> List[Instruction]:
        insns = []
        for i in range(self.count):
            srcs = (self.src_reg,) if i % 2 == 0 else ()
            if self.store_every and (i + 1) % self.store_every == 0:
                addr = self.addr_base + (self._cursor % self.buffer_bytes)
                self._cursor += 8
                insns.append(store(self.pc(i), addr, srcs=srcs))
            else:
                insns.append(
                    Instruction(pc=self.pc(i), op=OpClass.NOP, srcs=srcs)
                )
        return insns


class BranchyKernel(Kernel):
    """Data-dependent branches with a configurable taken probability.

    Used to set per-benchmark branch-misprediction rates in the pipeline
    studies; produces no register values.
    """

    name = "branchy"

    def __init__(self, taken_prob: float = 0.5, targets: int = 4):
        super().__init__()
        self.taken_prob = taken_prob
        self.targets = targets

    def _allocate_regs(self, regs: RegAllocator) -> None:
        self.cond_reg = regs.alloc()

    def block(self, rng: random.Random) -> List[Instruction]:
        taken = rng.random() < self.taken_prob
        target = self.pc(16 + rng.randrange(self.targets))
        return [branch(self.pc(0), taken, target, srcs=(self.cond_reg,))]
