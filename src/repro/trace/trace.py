"""Trace containers and stream utilities.

A *trace* is simply an iterable of :class:`~repro.trace.isa.Instruction`
records in dynamic program order (the committed instruction stream).  This
module provides:

* :class:`Trace` — a materialised trace with summary statistics, suitable
  for running several predictors over the same instruction stream.
* :func:`value_stream` — extract the global value history (the ordered
  sequence of values produced by all value-producing instructions), which
  is the object of study of the paper.
* :func:`load_address_stream` — extract the load-address stream used by the
  Section 6 experiments.
* :func:`take` — bounded materialisation of a generator-backed workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .isa import Instruction, OpClass


@dataclass
class TraceStats:
    """Summary statistics over a trace."""

    total: int = 0
    value_producing: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    static_pcs: int = 0

    def __str__(self) -> str:
        return (
            f"{self.total} instructions "
            f"({self.value_producing} value-producing, {self.loads} loads, "
            f"{self.stores} stores, {self.branches} branches, "
            f"{self.static_pcs} static PCs)"
        )


class Trace:
    """A materialised dynamic instruction trace.

    The class is a thin wrapper around a list of instructions that also
    computes summary statistics and supports slicing, iteration and the
    common stream extractions used by the experiment harness.
    """

    def __init__(self, instructions: Iterable[Instruction], name: str = "trace"):
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        self._stats: Optional[TraceStats] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    @property
    def stats(self) -> TraceStats:
        """Compute (and cache) summary statistics for the trace."""
        if self._stats is None:
            stats = TraceStats()
            pcs = set()
            for insn in self.instructions:
                stats.total += 1
                pcs.add(insn.pc)
                if insn.produces_value:
                    stats.value_producing += 1
                if insn.op is OpClass.LOAD:
                    stats.loads += 1
                elif insn.op is OpClass.STORE:
                    stats.stores += 1
                elif insn.op is OpClass.BRANCH:
                    stats.branches += 1
            stats.static_pcs = len(pcs)
            self._stats = stats
        return self._stats

    def value_producing(self) -> Iterator[Instruction]:
        """Iterate over only the value-producing instructions."""
        return (i for i in self.instructions if i.produces_value)

    def loads(self) -> Iterator[Instruction]:
        """Iterate over only the load instructions."""
        return (i for i in self.instructions if i.op is OpClass.LOAD)

    def per_pc_values(self) -> Dict[int, List[int]]:
        """Group produced values by static PC (the *local* value histories)."""
        histories: Dict[int, List[int]] = {}
        for insn in self.instructions:
            if insn.produces_value:
                histories.setdefault(insn.pc, []).append(insn.value)
        return histories


def take(stream: Iterable[Instruction], count: int, name: str = "trace") -> Trace:
    """Materialise the first *count* instructions of a workload stream."""
    return Trace(itertools.islice(stream, count), name=name)


def value_stream(trace: Iterable[Instruction]) -> List[int]:
    """Return the global value history of a trace.

    This is the ordered sequence (x_0, x_1, ..., x_N) of values produced by
    all dynamic value-producing instructions — the sequence in which the
    paper's gDiff predictor searches for stride locality.
    """
    return [i.value for i in trace if i.produces_value]


def load_address_stream(trace: Iterable[Instruction]) -> List[Tuple[int, int]]:
    """Return the load-address stream as (pc, address) pairs.

    Section 6 of the paper runs gDiff over this stream (only load addresses
    pass into the GVQ) to detect global stride locality between addresses.
    """
    return [(i.pc, i.addr) for i in trace if i.op is OpClass.LOAD]
