"""Zero-copy shared-memory trace plane.

Campaign-scale sweeps read the *same* packed trace in every worker, every
round.  The disk cache (:mod:`repro.trace.cache`) made that read cheap —
one zlib inflate instead of a regeneration — but at sweep scale even the
inflate dominates: N workers times R rounds all decompress identical
bytes.  This module publishes a :class:`~repro.trace.packed.PackedTrace`
once, from the driver, into a ``multiprocessing.shared_memory`` segment;
workers attach by name and wrap the segment's buffer in zero-copy
``memoryview``-backed columns.  An attach costs one CRC pass over the
already-uncompressed bytes on first touch and a dict lookup afterwards —
no file read, no inflate, no column rebuild.

Lifecycle:

* The driver owns every segment it publishes, reference-counted per
  trace key (publishing the same key twice shares one segment).
* :func:`unpublish_all` — registered via ``atexit`` on first publish —
  closes and unlinks everything at driver exit; the stdlib resource
  tracker is the backstop when the driver dies hard (it unlinks the
  segments the dead driver registered at create time).
* Workers attach read-only and *unregister* each attachment from the
  resource tracker: Python registers attached POSIX segments too, so a
  replaced or dying worker's tracker cleanup could otherwise unlink a
  segment the rest of the pool is still reading.
* Any failure — unsupported platform, missing segment after a driver
  crash, checksum mismatch from a scribbled buffer — raises
  :class:`ShmError` at the attach site and degrades to the disk cache
  (see :func:`repro.trace.cache.cached_trace`), bit-identically.

``REPRO_SHM=0`` (or the ``--no-shm`` CLI flag, which sets it) disables
the plane entirely.

Telemetry (on an attached :class:`~repro.telemetry.MetricsRegistry`):
``shm.publish`` / ``shm.publish_bytes`` / ``shm.publish_failed``,
``shm.attach`` / ``shm.attach_bytes``, ``shm.local_hit``,
``shm.checksum_refused``, ``shm.fallback``, ``shm.release``, and the
``shm.segments`` / ``shm.bytes`` gauges.
"""

from __future__ import annotations

import atexit
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..telemetry import get_logger
from .packed import COLUMNS, PackedTrace

log = get_logger("repro.trace.shm")

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    _shared_memory = None


class ShmError(RuntimeError):
    """A shared-memory segment is unavailable, truncated, or corrupt."""


#: Identity of one published trace: ``(workload, length, seed,
#: code_copies)`` with the *effective* (resolved) seed — the same tuple
#: :func:`repro.trace.cache.cached_trace` keys its lookups on.
TraceKey = Tuple[str, int, Optional[int], int]


@dataclass(frozen=True)
class ShmTraceHandle:
    """Picklable pointer to a published trace: everything a worker needs
    to attach — segment name, column layout, and publish-time checksums."""

    key: TraceKey
    segment: str
    trace_name: str
    count: int
    #: ``(column, typecode, offset, nbytes)`` in serialisation order.
    layout: Tuple[Tuple[str, str, int, int], ...]
    #: Publish-time CRC-32 per column, aligned with *layout*.
    checksums: Tuple[int, ...]
    nbytes: int


def shm_enabled() -> bool:
    """True when the platform supports shared memory and ``REPRO_SHM``
    is not set to ``0`` (or empty)."""
    if _shared_memory is None:  # pragma: no cover - platform without shm
        return False
    return os.environ.get("REPRO_SHM", "1") not in ("0", "")


class _Publication:
    __slots__ = ("shm", "handle", "trace", "refs")

    def __init__(self, shm, handle: ShmTraceHandle, trace: PackedTrace):
        self.shm = shm
        self.handle = handle
        self.trace = trace
        self.refs = 1


#: Driver-side registry of live publications, owned by ``_OWNER_PID``.
#: Forked workers inherit it read-only: they may *attach* through the
#: inherited handles but never close or unlink (the pid guard below).
_PUBLISHED: Dict[TraceKey, _Publication] = {}
_OWNER_PID: Optional[int] = None
_TABLE_VERSION = 0
_CLEANUP_REGISTERED = False

#: Worker-side handle table, installed by the pool dispatch envelope.
_INSTALLED: Dict[TraceKey, ShmTraceHandle] = {}

#: Worker-side validated attachments: segment name -> (shm, trace).  The
#: shm object must stay referenced while the trace's memoryviews live.
_ATTACHED: Dict[str, Tuple[object, PackedTrace]] = {}

#: Segments detach_all could not close because views were still exported;
#: kept referenced so their __del__ never runs against live pointers.
_LEAKED: List[object] = []


def _count(metrics, name: str, amount: int = 1) -> None:
    if metrics is not None:
        metrics.counter(f"shm.{name}").inc(amount)


def _set_gauges(metrics) -> None:
    if metrics is not None:
        metrics.gauge("shm.segments").set(len(_PUBLISHED))
        metrics.gauge("shm.bytes").set(
            sum(p.handle.nbytes for p in _PUBLISHED.values()))


# ---------------------------------------------------------------------------
# Driver side: publish / release
# ---------------------------------------------------------------------------
def publish(trace: PackedTrace, key: TraceKey,
            metrics=None) -> Optional[ShmTraceHandle]:
    """Publish *trace* under *key*; returns its handle, or ``None`` when
    shared memory is disabled or unavailable (callers fall back to disk).

    Publishing an already-published key bumps its reference count and
    returns the existing handle — segments are shared, never duplicated.
    """
    global _OWNER_PID, _TABLE_VERSION, _CLEANUP_REGISTERED
    if not shm_enabled():
        return None
    pub = _PUBLISHED.get(key)
    if pub is not None and _OWNER_PID == os.getpid():
        pub.refs += 1
        return pub.handle
    columns = trace.columns()
    layout: List[Tuple[str, str, int, int]] = []
    checksums: List[int] = []
    blobs: List[bytes] = []
    offset = 0
    for col, typecode in COLUMNS:
        raw = columns[col].tobytes()
        layout.append((col, typecode, offset, len(raw)))
        checksums.append(zlib.crc32(raw))
        blobs.append(raw)
        offset += len(raw)
    try:
        segment = _shared_memory.SharedMemory(create=True,
                                              size=max(offset, 1))
        for (_col, _tc, off, nbytes), raw in zip(layout, blobs):
            segment.buf[off:off + nbytes] = raw
    except (OSError, ValueError) as exc:
        log.warning("could not publish %s to shared memory: %s", key, exc)
        _count(metrics, "publish_failed")
        return None
    handle = ShmTraceHandle(
        key=key, segment=segment.name, trace_name=trace.name,
        count=len(trace), layout=tuple(layout),
        checksums=tuple(checksums), nbytes=offset)
    _PUBLISHED[key] = _Publication(segment, handle, trace)
    _OWNER_PID = os.getpid()
    _TABLE_VERSION += 1
    if not _CLEANUP_REGISTERED:
        atexit.register(unpublish_all)
        _CLEANUP_REGISTERED = True
    _count(metrics, "publish")
    _count(metrics, "publish_bytes", offset)
    _set_gauges(metrics)
    log.info("published %s as %s (%d bytes)", key, segment.name, offset)
    return handle


def _destroy(segment) -> None:
    try:
        segment.close()
    except (BufferError, OSError):  # exported views still alive: unlink
        pass                        # alone is enough, mappings persist
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


def release(key: TraceKey, metrics=None) -> bool:
    """Drop one reference to *key*; unlink the segment at zero.  Only the
    publishing process may destroy (a forked child's release is a no-op
    beyond its own view of the table)."""
    global _TABLE_VERSION
    pub = _PUBLISHED.get(key)
    if pub is None:
        return False
    if _OWNER_PID != os.getpid():
        return False
    pub.refs -= 1
    if pub.refs > 0:
        return True
    del _PUBLISHED[key]
    _TABLE_VERSION += 1
    _destroy(pub.shm)
    _count(metrics, "release")
    _set_gauges(metrics)
    return True


def unpublish_all(metrics=None) -> int:
    """Unlink every publication this process owns (driver-exit cleanup)."""
    global _TABLE_VERSION
    if _OWNER_PID != os.getpid():
        _PUBLISHED.clear()
        return 0
    removed = 0
    for pub in list(_PUBLISHED.values()):
        _destroy(pub.shm)
        removed += 1
    _PUBLISHED.clear()
    _TABLE_VERSION += 1
    _set_gauges(metrics)
    return removed


def current_table() -> Tuple[int, Tuple[ShmTraceHandle, ...]]:
    """``(version, handles)`` of this process's publications — what the
    worker pool ships to workers when the version changes."""
    if _OWNER_PID != os.getpid():
        return (0, ())
    return (_TABLE_VERSION,
            tuple(pub.handle for pub in _PUBLISHED.values()))


# ---------------------------------------------------------------------------
# Worker side: install / attach / lookup
# ---------------------------------------------------------------------------
def install_table(handles) -> None:
    """Replace the worker-side handle table (pool dispatch envelope)."""
    _INSTALLED.clear()
    for handle in handles:
        _INSTALLED[tuple(handle.key)] = handle


def attach(handle: ShmTraceHandle, metrics=None) -> PackedTrace:
    """Attach to a published segment and return its zero-copy trace.

    The first attach of a segment verifies every column's CRC-32 against
    the publish-time checksum and refuses (``ShmError``) on mismatch;
    later attaches are a dict hit on the validated mapping.
    """
    if _shared_memory is None:  # pragma: no cover - platform without shm
        raise ShmError("shared memory is not supported on this platform")
    hit = _ATTACHED.get(handle.segment)
    if hit is not None:
        _count(metrics, "attach")
        return hit[1]
    try:
        segment = _shared_memory.SharedMemory(name=handle.segment,
                                              create=False)
    except (OSError, ValueError) as exc:
        raise ShmError(
            f"segment {handle.segment} unavailable: {exc}") from None
    # Python registers *attached* POSIX segments with the resource
    # tracker too.  Pool workers are forked children sharing the driver's
    # tracker process, whose cache is a set — the attach-time register is
    # a no-op there, and the tracker only unlinks once the whole process
    # tree is gone, which is exactly the driver-crash backstop we want.
    # (Unregistering here would delete the *driver's* registration.)
    views: List[memoryview] = []
    columns: Dict[str, memoryview] = {}
    try:
        if segment.size < handle.nbytes:
            raise ShmError(
                f"segment {handle.segment} holds {segment.size} bytes, "
                f"handle promises {handle.nbytes}")
        for (col, typecode, offset, nbytes), crc in zip(handle.layout,
                                                        handle.checksums):
            raw = segment.buf[offset:offset + nbytes]
            views.append(raw)
            if zlib.crc32(raw) != crc:
                _count(metrics, "checksum_refused")
                raise ShmError(
                    f"segment {handle.segment} column {col} checksum "
                    "mismatch (corrupt or torn publication)")
            columns[col] = raw.cast(typecode)
        trace = PackedTrace(columns, name=handle.trace_name)
        if len(trace) != handle.count:
            raise ShmError(
                f"segment {handle.segment} holds {len(trace)} "
                f"instructions, handle promises {handle.count}")
    except ShmError:
        # Release every exported view (casts before their parent slices)
        # so the mapping can actually close instead of leaking.
        for view in list(columns.values()) + views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - defensive
                pass
        try:
            segment.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass
        raise
    _ATTACHED[handle.segment] = (segment, trace)
    _count(metrics, "attach")
    _count(metrics, "attach_bytes", handle.nbytes)
    return trace


def shm_trace(name: str, length: int, seed: Optional[int],
              code_copies: int, metrics=None) -> Optional[PackedTrace]:
    """The cache-integration lookup: the published trace for this key, or
    ``None`` (disabled, unpublished, or attach failure -> disk path).

    Publisher-side lookups return the original object without touching
    the segment; workers attach through the installed handle table (or
    the fork-inherited publication table)."""
    if not shm_enabled():
        return None
    key: TraceKey = (name, length, seed, code_copies)
    pub = _PUBLISHED.get(key)
    if pub is not None and _OWNER_PID == os.getpid():
        _count(metrics, "local_hit")
        return pub.trace
    handle = _INSTALLED.get(key)
    if handle is None and pub is not None:
        handle = pub.handle  # forked worker reading the inherited table
    if handle is None:
        return None
    try:
        return attach(handle, metrics=metrics)
    except ShmError as exc:
        log.warning("shm attach failed for %s (%s); "
                    "falling back to the disk cache", key, exc)
        _count(metrics, "fallback")
        return None


def detach_all() -> int:
    """Drop every worker-side attachment and installed handle (test
    hook; a live trace keeps its segment mapped regardless)."""
    removed = 0
    for segment, _trace in _ATTACHED.values():
        try:
            segment.close()
        except (BufferError, OSError):
            # Views still exported by a live trace: keep the object
            # referenced so its __del__ does not re-raise at GC time.
            _LEAKED.append(segment)
        removed += 1
    _ATTACHED.clear()
    _INSTALLED.clear()
    return removed
