"""On-disk trace cache: generate each workload trace once, replay forever.

Every experiment used to regenerate its synthetic trace from scratch — the
single most expensive step of a profile run.  The cache materialises a
workload once, serialises it in the binary packed format (see
:mod:`repro.trace.io`), and hands every later run a
:class:`~repro.trace.packed.PackedTrace` in milliseconds.

Entries are content-keyed by ``(workload, seed, length, code_copies,
format version)``; anything that changes the generated stream changes the
key, and bumping :data:`~repro.trace.io.PACKED_FORMAT_VERSION` invalidates
every existing entry.  Integrity is checked on load (magic, version,
per-column CRC, count, end marker); a corrupt or truncated entry is
silently discarded and regenerated, never served.

Configuration:

* ``REPRO_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro-traces``).
* ``REPRO_CACHE=0`` — disable the cache entirely (experiments fall back
  to in-memory generation).

Telemetry: an attached :class:`~repro.telemetry.MetricsRegistry` receives
``cache.hit`` / ``cache.miss`` / ``cache.store`` / ``cache.invalid`` /
``cache.lock_wait`` counters, ``cache.bytes_written`` /
``cache.bytes_read``, the in-process memo's ``cache.mem_hit`` /
``cache.mem_evict``, and — from :meth:`TraceCache.stats` —
``cache.entries`` / ``cache.bytes`` gauges.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from itertools import islice

from ..telemetry import get_logger
from . import shm
from .io import PACKED_FORMAT_VERSION, TraceFormatError, load_packed, save_packed
from .packed import PackedTrace
from .synthetic import WorkloadSpec

log = get_logger("repro.trace.cache")

#: File extension of cache entries.
ENTRY_SUFFIX = ".rpt"

#: File extension of per-entry generation locks.
LOCK_SUFFIX = ".lock"


def cache_enabled() -> bool:
    """True unless ``REPRO_CACHE=0`` (or empty) is set in the environment."""
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "")


def cache_root() -> Path:
    """The configured cache directory (not created until first write)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-traces"


def _resolve(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    from .workloads import get

    return get(workload)


def effective_length(spec: WorkloadSpec, length: int) -> int:
    """Clamp *length* to a finite workload's recording.

    Synthetic generators are endless, but imported workloads
    (:class:`repro.trace.ingest.store.ImportedWorkloadSpec`) carry a
    ``fixed_length``: asking for more instructions than the recording
    holds silently serves the whole recording.  Every tier (memo, shm,
    disk) keys on the clamped length, so an over-long request and an
    exact request share one entry instead of regenerating forever.
    """
    fixed = getattr(spec, "fixed_length", None)
    if fixed is None:
        return length
    return min(length, int(fixed))


class TraceCache:
    """Load-or-generate store of packed workload traces.

    Args:
        root: cache directory; defaults to :func:`cache_root`.
        metrics: optional :class:`~repro.telemetry.MetricsRegistry` for the
            hit/miss/size counters.
    """

    #: How long a waiter polls for another process's generation before
    #: giving up and generating itself (seconds).
    lock_timeout_s = 300.0
    #: A lockfile older than this is presumed abandoned (its holder
    #: crashed before unlinking it) and is broken.
    lock_stale_s = 600.0
    #: Poll interval while waiting on another process's lock.
    lock_poll_s = 0.05

    def __init__(self, root: Optional[Union[str, Path]] = None, metrics=None):
        self.root = Path(root) if root is not None else cache_root()
        self.metrics = metrics

    # -- keying ----------------------------------------------------------
    @staticmethod
    def key(name: str, length: int, seed: int, code_copies: int) -> str:
        """Content digest of one cache entry's identity."""
        ident = f"{name}|{seed}|{length}|{code_copies}|v{PACKED_FORMAT_VERSION}"
        return hashlib.sha256(ident.encode("ascii")).hexdigest()[:12]

    def entry_path(self, name: str, length: int, seed: int,
                   code_copies: int) -> Path:
        digest = self.key(name, length, seed, code_copies)
        return self.root / (
            f"{name}-L{length}-s{seed}-c{code_copies}"
            f"-v{PACKED_FORMAT_VERSION}-{digest}{ENTRY_SUFFIX}"
        )

    def _count(self, counter: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"cache.{counter}").inc(amount)

    # -- the core operation ----------------------------------------------
    def _try_load(self, path: Path, length: int) -> Optional[PackedTrace]:
        """Load an entry if present and intact; discard damaged ones."""
        if not path.exists():
            return None
        try:
            packed = load_packed(path)
            if len(packed) != length:
                raise TraceFormatError(
                    f"{path}: entry holds {len(packed)} instructions, "
                    f"key promised {length}")
            self._count("hit")
            self._count("bytes_read", path.stat().st_size)
            return packed
        except (TraceFormatError, OSError) as exc:
            log.warning("discarding unreadable cache entry %s: %s",
                        path, exc)
            self._count("invalid")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- generation lock --------------------------------------------------
    def _acquire_lock(self, lock: Path) -> bool:
        """Try to become the single generator for one entry.

        Returns True when this process holds the lock — or when the
        filesystem cannot express one (read-only root), in which case the
        pre-lock behaviour (everyone generates) is the graceful floor.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            # Unusable cache root (e.g. a file where the directory should
            # be): locking is impossible, but _store already tolerates the
            # failed write, so generate without coordination.
            return True
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        return True

    @staticmethod
    def _release_lock(lock: Path) -> None:
        try:
            lock.unlink()
        except OSError:
            pass

    def _wait_for_entry(self, path: Path, lock: Path) -> str:
        """Wait while another process generates this entry.

        Returns ``"entry"`` when the entry appeared, ``"retry"`` when the
        lock was released (or broken as stale) without one, ``"timeout"``
        when the holder outlived :attr:`lock_timeout_s`.
        """
        self._count("lock_wait")
        deadline = time.monotonic() + self.lock_timeout_s
        while time.monotonic() < deadline:
            if path.exists():
                return "entry"
            try:
                held_since = lock.stat().st_mtime
            except OSError:
                return "retry"
            if time.time() - held_since > self.lock_stale_s:
                log.warning("breaking stale cache lock %s", lock)
                self._release_lock(lock)
                return "retry"
            time.sleep(self.lock_poll_s)
        return "timeout"

    def load_or_generate(self, workload: Union[str, WorkloadSpec],
                         length: int, seed: Optional[int] = None,
                         code_copies: int = 1) -> PackedTrace:
        """Return the packed trace for *workload*, from disk when possible.

        A miss generates the trace (identical stream to
        :meth:`WorkloadSpec.trace`), stores it, and returns the packed
        form; an unreadable entry counts as ``cache.invalid`` and is
        regenerated in place.  Concurrent misses on the same key are
        serialised through a per-entry lockfile: exactly one process
        generates while the others wait (``cache.lock_wait``) and then
        load its entry, so a parallel campaign never burns N cores
        regenerating one trace N times.
        """
        spec = _resolve(workload)
        effective_seed = spec.seed if seed is None else seed
        length = effective_length(spec, length)
        if (hasattr(spec, "load_full")
                and length == getattr(spec, "fixed_length", None)):
            # The whole recording: serve the imported store's canonical
            # file directly instead of duplicating it as a cache entry.
            self._count("hit")
            self._count("imported_hit")
            return spec.load_full()
        path = self.entry_path(spec.name, length, effective_seed, code_copies)
        packed = self._try_load(path, length)
        if packed is not None:
            return packed
        lock = path.with_name(path.name + LOCK_SUFFIX)
        while True:
            if self._acquire_lock(lock):
                try:
                    # Double-check under the lock: the previous holder may
                    # have finished between our miss and our acquisition.
                    packed = self._try_load(path, length)
                    if packed is not None:
                        return packed
                    return self._generate_and_store(
                        spec, path, length, seed, code_copies)
                finally:
                    self._release_lock(lock)
            outcome = self._wait_for_entry(path, lock)
            if outcome == "entry":
                packed = self._try_load(path, length)
                if packed is not None:
                    return packed
                continue  # entry was damaged; compete for the lock
            if outcome == "timeout":
                # The holder is wedged: generate anyway.  The atomic
                # store makes a duplicate write harmless.
                return self._generate_and_store(
                    spec, path, length, seed, code_copies)
            # "retry": lock released or broken without an entry.

    def _generate_and_store(self, spec: WorkloadSpec, path: Path,
                            length: int, seed: Optional[int],
                            code_copies: int) -> PackedTrace:
        self._count("miss")
        stream = spec.generate(seed=seed, code_copies=code_copies)
        packed = PackedTrace.from_instructions(islice(stream, length),
                                               name=spec.name)
        self._store(packed, path)
        return packed

    def _store(self, packed: PackedTrace, path: Path) -> None:
        """Atomically write one entry (concurrent writers never tear it)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root,
                                       prefix=path.stem, suffix=".tmp")
            os.close(fd)
            try:
                nbytes = save_packed(packed, tmp)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._count("store")
            self._count("bytes_written", nbytes)
            log.info("cached %s (%d instructions, %d bytes)",
                     path.name, len(packed), nbytes)
        except OSError as exc:
            # A read-only or full cache directory must never fail the run.
            log.warning("could not store cache entry %s: %s", path, exc)

    # -- management ------------------------------------------------------
    def warm(self, workloads: Iterable[Union[str, WorkloadSpec]],
             length: int, seed: Optional[int] = None, code_copies: int = 1,
             on_progress=None) -> List[Tuple[str, bool]]:
        """Populate entries for *workloads*; returns ``(name, was_hit)``."""
        outcome: List[Tuple[str, bool]] = []
        names = list(workloads)
        for i, workload in enumerate(names):
            spec = _resolve(workload)
            effective_seed = spec.seed if seed is None else seed
            eff_length = effective_length(spec, length)
            path = self.entry_path(spec.name, eff_length, effective_seed,
                                   code_copies)
            hit = (path.exists()
                   or eff_length == getattr(spec, "fixed_length", None))
            if not hit:
                self.load_or_generate(spec, length, seed=seed,
                                      code_copies=code_copies)
            else:
                self._count("hit")
            outcome.append((spec.name, hit))
            if on_progress is not None:
                on_progress(i + 1, len(names))
        return outcome

    def entries(self) -> List[Tuple[str, int]]:
        """``(filename, size_bytes)`` of every entry, sorted by name."""
        if not self.root.is_dir():
            return []
        found = []
        for path in sorted(self.root.glob(f"*{ENTRY_SUFFIX}")):
            try:
                found.append((path.name, path.stat().st_size))
            except OSError:
                continue
        return found

    def stats(self) -> Dict[str, object]:
        """Entry count, total size, per-entry listing, a per-origin
        (generated vs imported) breakdown, and this process's hit/miss
        counters; mirrored into the metrics registry as gauges."""
        entries = self.entries()
        total = sum(size for _name, size in entries)
        counters = {}
        if self.metrics is not None:
            self.metrics.gauge("cache.entries").set(len(entries))
            self.metrics.gauge("cache.bytes").set(total)
            counters = {
                name: c.value for name, c in self.metrics.counters.items()
                if name.startswith("cache.")
            }
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total,
            "files": [{"name": name, "bytes": size}
                      for name, size in entries],
            "origins": self._origins(entries),
            "counters": counters,
        }

    @staticmethod
    def _origins(entries: List[Tuple[str, int]]) -> Dict[str, object]:
        """Per-origin breakdown of the cache's contents.

        ``generated`` / ``imported`` split the cache entries by whether
        their workload name belongs to the imported store (imported
        entries exist only for truncated replays — full-length loads are
        served from the store's canonical file, reported under
        ``imported_store``).
        """
        from .ingest import store as ingest_store

        imported = ingest_store.imported_names()
        prefixes = tuple(f"{name}-L" for name in imported)
        split = {"generated": [0, 0], "imported": [0, 0]}
        for name, size in entries:
            origin = "imported" if name.startswith(prefixes) else "generated"
            split[origin][0] += 1
            split[origin][1] += size
        store_bytes = 0
        for name in imported:
            try:
                store_bytes += ingest_store.trace_path(name).stat().st_size
            except OSError:
                pass
        return {
            "generated": {"entries": split["generated"][0],
                          "bytes": split["generated"][1]},
            "imported": {"entries": split["imported"][0],
                         "bytes": split["imported"][1]},
            "imported_store": {"root": str(ingest_store.imported_root()),
                               "workloads": len(imported),
                               "bytes": store_bytes},
        }

    def clear(self) -> int:
        """Delete every cache entry (and stray generation lock); returns
        the number of entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{ENTRY_SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except OSError as exc:
                log.warning("could not remove %s: %s", path, exc)
        for lock in self.root.glob(f"*{LOCK_SUFFIX}"):
            self._release_lock(lock)
        return removed


def default_cache(metrics=None) -> TraceCache:
    """A cache rooted at the configured directory.

    Constructed per call (it is stateless beyond the root path), so
    environment changes — tests pointing ``REPRO_CACHE_DIR`` at a tmpdir —
    always take effect.
    """
    return TraceCache(metrics=metrics)


#: In-process memo over the disk/shm tiers: repeated experiment calls
#: (bench rounds, campaign sweeps, warm pool workers) get the *same*
#: ``PackedTrace`` object back, so per-trace derived state keyed by
#: object identity — the pipeline kernel's dataflow/fetch/timing
#: auxiliaries — survives across calls instead of being rebuilt from a
#: fresh deserialisation each time.  Traces are immutable once packed,
#: so sharing is safe.  A true LRU: a hit refreshes recency
#: (``cache.mem_hit``), inserting past the cap evicts the least
#: recently used entry (``cache.mem_evict``).
_MEM_CACHE: "OrderedDict[tuple, PackedTrace]" = OrderedDict()

#: Default memo capacity; ``REPRO_MEM_CACHE`` overrides per process (a
#: many-stream serve worker tunes memo pressure up or down; ``0``
#: disables the memo without touching the disk/shm tiers).
_MEM_CAP = 12


def mem_cache_cap() -> int:
    """Effective memo capacity: ``REPRO_MEM_CACHE`` when it parses as a
    non-negative integer, :data:`_MEM_CAP` otherwise."""
    raw = os.environ.get("REPRO_MEM_CACHE", "").strip()
    if raw:
        try:
            cap = int(raw)
        except ValueError:
            return _MEM_CAP
        if cap >= 0:
            return cap
    return _MEM_CAP


def _memo_get(memo_key: tuple, metrics) -> Optional[PackedTrace]:
    hit = _MEM_CACHE.get(memo_key)
    if hit is None:
        return None
    _MEM_CACHE.move_to_end(memo_key)
    if metrics is not None:
        metrics.counter("cache.mem_hit").inc()
        # A memo hit is still a cache hit: the entry was served warm,
        # just from the cheapest tier.
        metrics.counter("cache.hit").inc()
    return hit


def _memo_put(memo_key: tuple, trace: PackedTrace, metrics) -> None:
    cap = mem_cache_cap()
    if cap <= 0:
        # Memo disabled: anything resident (the cap may have just been
        # lowered) is evicted, and the new trace is not retained.
        while _MEM_CACHE:
            _MEM_CACHE.popitem(last=False)
            if metrics is not None:
                metrics.counter("cache.mem_evict").inc()
        return
    while len(_MEM_CACHE) >= cap:
        _MEM_CACHE.popitem(last=False)
        if metrics is not None:
            metrics.counter("cache.mem_evict").inc()
    _MEM_CACHE[memo_key] = trace


def memo_clear() -> None:
    """Empty the in-process trace memo (test hook)."""
    _MEM_CACHE.clear()


def cached_trace(workload: Union[str, WorkloadSpec], length: int,
                 seed: Optional[int] = None, code_copies: int = 1,
                 metrics=None):
    """The experiment harness entry point: packed-and-cached when the
    cache is enabled, plain in-memory generation otherwise.

    Lookup tiers, cheapest first: the in-process memo (same object
    back), the shared-memory trace plane (zero-copy attach to a segment
    the campaign driver published — see :mod:`repro.trace.shm`), then
    the on-disk cache.  Every tier yields bit-identical columns; shm
    and memo hits both count ``cache.hit``.
    """
    if cache_enabled():
        spec = _resolve(workload)
        effective_seed = spec.seed if seed is None else seed
        length = effective_length(spec, length)
        memo_key = (str(cache_root()), spec.name, length, effective_seed,
                    code_copies)
        hit = _memo_get(memo_key, metrics)
        if hit is not None:
            return hit
        trace = shm.shm_trace(spec.name, length, effective_seed,
                              code_copies, metrics=metrics)
        if trace is not None:
            if metrics is not None:
                metrics.counter("cache.hit").inc()
        else:
            trace = default_cache(metrics=metrics).load_or_generate(
                spec, length, seed=seed, code_copies=code_copies)
        if isinstance(trace, PackedTrace):
            _memo_put(memo_key, trace, metrics)
        return trace
    spec = _resolve(workload)
    return spec.trace(length, seed=seed, code_copies=code_copies)
