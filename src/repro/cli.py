"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Subcommands:

* ``repro list`` — benchmarks and experiments available.
* ``repro run <experiment> [--length N] [--bench b1,b2] [--out FILE]`` —
  regenerate one of the paper's tables/figures.
* ``repro trace <benchmark> [--length N] [--out FILE]`` — generate (and
  optionally save) a workload trace, printing its summary.
* ``repro predict <benchmark> [--length N] [--predictors a,b,c]`` —
  profile-style accuracy comparison over one benchmark.
* ``repro simulate <benchmark> [--length N] [--vp NAME] [--speculate]`` —
  run the cycle-level OOO core and report IPC and machine statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .core import GDiffPredictor, HybridGDiffPredictor
from .harness import EXPERIMENTS, run_experiment, run_value_prediction
from .pipeline import (
    HGVQAdapter,
    LocalPredictorAdapter,
    OutOfOrderCore,
    SGVQAdapter,
)
from .predictors import (
    DFCMPredictor,
    FCMPredictor,
    GlobalFCMPredictor,
    HybridLocalPredictor,
    LastNValuePredictor,
    LastValuePredictor,
    PIPredictor,
    StridePredictor,
)
from .trace.workloads import BENCHMARKS, get

#: Predictor factories exposed on the command line.
PREDICTORS = {
    "last-value": lambda: LastValuePredictor(entries=None),
    "last-n": lambda: LastNValuePredictor(entries=None),
    "stride": lambda: StridePredictor(entries=None),
    "fcm": lambda: FCMPredictor(l1_entries=None),
    "dfcm": lambda: DFCMPredictor(l1_entries=None),
    "pi": lambda: PIPredictor(entries=None),
    "gfcm": lambda: GlobalFCMPredictor(),
    "hybrid-local": lambda: HybridLocalPredictor(entries=None),
    "gdiff8": lambda: GDiffPredictor(order=8, entries=None),
    "gdiff32": lambda: GDiffPredictor(order=32, entries=None),
    "gdiff-hgvq": lambda: HybridGDiffPredictor(order=32, entries=None),
}

#: Pipeline value-prediction schemes exposed on the command line.
PIPELINE_SCHEMES = {
    "stride": lambda: LocalPredictorAdapter(StridePredictor(entries=8192)),
    "dfcm": lambda: LocalPredictorAdapter(DFCMPredictor(l1_entries=8192)),
    "sgvq": lambda: SGVQAdapter(order=32),
    "hgvq": lambda: HGVQAdapter(order=32),
}


def _parse_benchmarks(spec: Optional[str]) -> Optional[List[str]]:
    if not spec:
        return None
    names = [b.strip() for b in spec.split(",") if b.strip()]
    unknown = [b for b in names if b not in BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {unknown}; "
                         f"choose from {BENCHMARKS}")
    return names


def cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks:")
    for name in BENCHMARKS:
        print(f"  {name:8s} {get(name).description}")
    print("\nexperiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("\npredictors:", ", ".join(sorted(PREDICTORS)))
    print("pipeline schemes:", ", ".join(sorted(PIPELINE_SCHEMES)))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.length:
        kwargs["length"] = args.length
    benchmarks = _parse_benchmarks(args.bench)
    if benchmarks and args.experiment != "fig12":
        kwargs["benchmarks"] = benchmarks
    result = run_experiment(args.experiment, **kwargs)
    text = result.render()
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nsaved to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    trace = get(args.benchmark).trace(args.length)
    print(f"{trace.name}: {trace.stats}")
    if args.out:
        from .trace.io import save_trace

        count = save_trace(trace, args.out)
        print(f"saved {count} instructions to {args.out}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    names = [p.strip() for p in args.predictors.split(",") if p.strip()]
    unknown = [p for p in names if p not in PREDICTORS]
    if unknown:
        raise SystemExit(f"unknown predictor(s): {unknown}; "
                         f"choose from {sorted(PREDICTORS)}")
    trace = get(args.benchmark).trace(args.length)
    predictors = {name: PREDICTORS[name]() for name in names}
    stats = run_value_prediction(trace, predictors, gated=args.gated)
    print(f"{args.benchmark}: {trace.stats}\n")
    header = f"{'predictor':14s} {'raw_acc':>8s}"
    if args.gated:
        header += f" {'accuracy':>9s} {'coverage':>9s}"
    print(header)
    print("-" * len(header))
    for name, stat in stats.items():
        line = f"{name:14s} {stat.raw_accuracy:8.1%}"
        if args.gated:
            line += f" {stat.accuracy:9.1%} {stat.coverage:9.1%}"
        print(line)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    adapter = None
    if args.vp:
        if args.vp not in PIPELINE_SCHEMES:
            raise SystemExit(f"unknown scheme {args.vp!r}; choose from "
                             f"{sorted(PIPELINE_SCHEMES)}")
        adapter = PIPELINE_SCHEMES[args.vp]()
    core = OutOfOrderCore(value_predictor=adapter,
                          speculate=args.speculate,
                          track_value_delay=True)
    result = core.run(get(args.benchmark).trace(args.length))
    print(f"{args.benchmark}: IPC {result.ipc:.2f} over {result.cycles} "
          f"cycles ({result.retired} retired)")
    print(f"  D-cache miss rate   : {result.dcache_miss_rate:.1%}")
    print(f"  branch mispredicts  : {result.branch_mispredict_rate:.1%}")
    print(f"  mean value delay    : {result.mean_value_delay():.2f}")
    if adapter is not None:
        print(f"  VP ({adapter.name}): accuracy "
              f"{adapter.stats.accuracy:.1%}, coverage "
              f"{adapter.stats.coverage:.1%}")
        if args.speculate:
            print(f"  selective reissues  : {result.reissues}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting Global Stride Locality in "
                    "Value Streams' (ISCA 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, experiments, predictors")

    p_run = sub.add_parser("run", help="regenerate a paper table/figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--length", type=int, default=None,
                       help="trace length per benchmark")
    p_run.add_argument("--bench", help="comma-separated benchmark subset")
    p_run.add_argument("--out", help="also save the rendered table here")

    p_trace = sub.add_parser("trace", help="generate a workload trace")
    p_trace.add_argument("benchmark", choices=BENCHMARKS)
    p_trace.add_argument("--length", type=int, default=100_000)
    p_trace.add_argument("--out", help="save the trace (.trace / .trace.gz)")

    p_pred = sub.add_parser("predict", help="profile accuracy comparison")
    p_pred.add_argument("benchmark", choices=BENCHMARKS)
    p_pred.add_argument("--length", type=int, default=100_000)
    p_pred.add_argument("--predictors",
                        default="stride,dfcm,gdiff8,gdiff32")
    p_pred.add_argument("--gated", action="store_true",
                        help="apply the 3-bit confidence gate")

    p_sim = sub.add_parser("simulate", help="run the OOO core")
    p_sim.add_argument("benchmark", choices=BENCHMARKS)
    p_sim.add_argument("--length", type=int, default=50_000)
    p_sim.add_argument("--vp", help="value-prediction scheme "
                                    "(stride|dfcm|sgvq|hgvq)")
    p_sim.add_argument("--speculate", action="store_true",
                       help="break dependencies on confident predictions")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "trace": cmd_trace,
        "predict": cmd_predict,
        "simulate": cmd_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
