"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Subcommands:

* ``repro list`` — benchmarks and experiments available.
* ``repro run <experiment> [--length N] [--bench b1,b2] [--out FILE]`` —
  regenerate one of the paper's tables/figures.
* ``repro trace gen <workload> [--length N] [--out FILE]`` — generate
  (and optionally save) a workload trace, printing its summary.  The
  bare ``repro trace <workload>`` spelling still works.
* ``repro trace import <source> [--format f] [--name n] [--limit N]``
  — convert an external value/address stream (CSV/ndjson interchange,
  CVP-style, ChampSim-style, all gzip-transparent) into the packed
  trace store with a provenance manifest; ``--capture script.py`` runs
  a Python script under ``sys.settrace`` and records its integer value
  stream instead.  ``repro trace list|info|remove`` manage the store.
  Imported names are first-class workloads everywhere
  (docs/WORKLOADS.md).
* ``repro workloads [--groups g1,g2] [--only n1,n2] [--check|--smoke]``
  — sweep the whole workload bank (synthetic suite, adversarial
  scenarios, imported traces) through the predictor zoo in one table;
  ``--check`` gates the adversarial scenarios against their calibrated
  accuracy bands, ``--smoke`` is the CI shape.
* ``repro predict <benchmark> [--length N] [--predictors a,b,c]`` —
  profile-style accuracy comparison over one benchmark.
* ``repro simulate <benchmark> [--length N] [--vp NAME] [--speculate]`` —
  run the cycle-level OOO core and report IPC and machine statistics.
* ``repro run-all [--experiments a,b] [--jobs N] [--out-dir DIR]
  [--profile]`` — run the whole experiment registry, fanned across worker
  processes (``--profile`` runs serially under cProfile and prints the
  top-20 cumulative entries to stderr).
* ``repro cache stats|warm|clear`` — inspect, populate, or empty the
  on-disk trace cache (docs/PERFORMANCE.md).
* ``repro campaign run|resume|status|report <spec|dir>`` — declarative
  experiment campaigns: expand a TOML/JSON parameter grid, execute it
  resumably across workers with retry + quarantine, and report (or
  fidelity-check) straight from the durable results store
  (docs/CAMPAIGNS.md).  ``status --watch`` is a live progress view;
  ``report --telemetry`` adds slowest cells, retries, and cache hit rate.
* ``repro bench history|check`` — the benchmark suite's perf trajectory
  (``benchmarks/results/history.jsonl``) and its regression gate
  (docs/OBSERVABILITY.md).
* ``repro serve [--port P] [--shards N] [--stdio] [--backend b]`` — the
  long-lived online prediction daemon: sharded per-stream predictor
  state on warm pool workers, batched dispatch, LRU eviction with
  transparent restore (docs/SERVING.md).
* ``repro loadgen [--streams N] [--events N] [--mode closed|open]
  [--trace NAME] [--verify]`` — drive a running daemon with N
  concurrent streams and report QPS and latency percentiles;
  ``--trace`` replays a specific workload (imported traces included),
  ``--verify`` replays every stream through the batch harness and
  checks bit-identical PredictionStats.

Every subcommand accepts the shared telemetry flags (docs/TELEMETRY.md):
``--metrics-out FILE`` writes a JSON run manifest (``-`` streams it to
stdout, pushing the human-readable output to stderr), ``--trace-events
FILE`` writes sampled prediction events as JSON lines, ``--trace-out
FILE`` exports the run's span timeline in Chrome trace-event format
(docs/OBSERVABILITY.md), and ``-v``/``-vv`` turn on INFO/DEBUG logging
for the ``repro.*`` namespace.  Long runs show a single-line progress
display on a TTY (silent when piped).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from .core import GDiffPredictor, HybridGDiffPredictor
from .harness import (
    EXPERIMENTS,
    run_experiment,
    run_experiments,
    run_value_prediction,
)
from .pipeline import (
    HGVQAdapter,
    LocalPredictorAdapter,
    OutOfOrderCore,
    SGVQAdapter,
)
from .predictors import (
    DFCMPredictor,
    FCMPredictor,
    GlobalFCMPredictor,
    HybridLocalPredictor,
    LastNValuePredictor,
    LastValuePredictor,
    PIPredictor,
    StridePredictor,
)
from .telemetry import (
    EventRecorder,
    MetricsRegistry,
    ProgressPrinter,
    RunManifest,
    configure_logging,
    get_logger,
    write_chrome_trace,
)
from .trace.cache import cache_enabled, default_cache
from .trace.workloads import BENCHMARKS, get

log = get_logger("repro.cli")

#: Predictor factories exposed on the command line.
PREDICTORS = {
    "last-value": lambda: LastValuePredictor(entries=None),
    "last-n": lambda: LastNValuePredictor(entries=None),
    "stride": lambda: StridePredictor(entries=None),
    "fcm": lambda: FCMPredictor(l1_entries=None),
    "dfcm": lambda: DFCMPredictor(l1_entries=None),
    "pi": lambda: PIPredictor(entries=None),
    "gfcm": lambda: GlobalFCMPredictor(),
    "hybrid-local": lambda: HybridLocalPredictor(entries=None),
    "gdiff8": lambda: GDiffPredictor(order=8, entries=None),
    "gdiff32": lambda: GDiffPredictor(order=32, entries=None),
    "gdiff-hgvq": lambda: HybridGDiffPredictor(order=32, entries=None),
}

#: Pipeline value-prediction schemes exposed on the command line.  The
#: ``gdiff-`` aliases name the paper's schemes explicitly.
PIPELINE_SCHEMES = {
    "stride": lambda: LocalPredictorAdapter(StridePredictor(entries=8192)),
    "dfcm": lambda: LocalPredictorAdapter(DFCMPredictor(l1_entries=8192)),
    "sgvq": lambda: SGVQAdapter(order=32),
    "hgvq": lambda: HGVQAdapter(order=32),
    "gdiff-sgvq": lambda: SGVQAdapter(order=32),
    "gdiff-hgvq": lambda: HGVQAdapter(order=32),
}


class _NullSpan:
    """Stand-in for a registry timer span when telemetry is off."""

    items = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _Telemetry:
    """Per-invocation telemetry wiring derived from the common flags.

    Centralises the decisions every command makes: whether a
    registry/manifest exists, where sampled events go, where *human*
    output goes (stderr when the manifest is streamed to stdout, so
    ``repro ... --metrics-out - | jq .`` just works), whether spans are
    being traced (``--trace-out`` opens a root span covering the whole
    command and exports a Chrome trace-event file at the end), and
    writing the artefacts out at the end.
    """

    def __init__(self, args: argparse.Namespace, command: str):
        import time as _time

        self.metrics_out: Optional[str] = getattr(args, "metrics_out", None)
        self.trace_events: Optional[str] = getattr(args, "trace_events", None)
        self.trace_out: Optional[str] = getattr(args, "trace_out", None)
        enabled = bool(self.metrics_out or self.trace_events
                       or self.trace_out)
        self.registry = MetricsRegistry() if enabled else None
        self.manifest = RunManifest(
            command,
            {k: v for k, v in vars(args).items() if k != "command"},
        ) if self.metrics_out else None
        # Every span/event timestamp of this run is anchored to one
        # wall-clock epoch — the manifest's, so separate worker processes
        # align on one exported timeline.
        self._epoch_ns = (self.manifest.clock_epoch_ns
                          if self.manifest is not None else _time.time_ns())
        self._root_span = None
        if self.trace_out:
            tracker = self.registry.enable_spans()
            self._root_span = tracker.begin(command)
        self.events = EventRecorder(
            sample_rate=getattr(args, "trace_sample", 1.0),
            seed=getattr(args, "trace_seed", 0),
            # Stamp events onto the shared timeline only when spans are
            # being traced; unstamped events stay byte-reproducible.
            epoch_ns=self._epoch_ns if self.trace_out else None,
        ) if self.trace_events else None
        self.human = sys.stderr if "-" in (self.metrics_out,
                                           self.trace_events,
                                           self.trace_out) else sys.stdout
        self._no_progress = getattr(args, "no_progress", False)
        # Fail before the run, not after: a long simulation should not
        # complete and then discover its output path is unwritable.
        for path in (self.metrics_out, self.trace_events, self.trace_out):
            if path and path != "-":
                try:
                    open(path, "a", encoding="utf-8").close()
                except OSError as exc:
                    raise SystemExit(f"cannot write {path}: {exc}")

    def timer(self, name: str):
        if self.registry is None:
            return _NullSpan()
        return self.registry.timer(name)

    def progress(self, label: str) -> Optional[ProgressPrinter]:
        if self._no_progress:
            return None
        printer = ProgressPrinter(label=label)
        return printer if printer.enabled else None

    def add(self, section: str, payload) -> None:
        if self.manifest is not None:
            self.manifest.add(section, payload)

    def finish(self) -> None:
        if self._root_span is not None:
            import os

            tracker = self.registry.span_tracker
            tracker.end(self._root_span)
            count = write_chrome_trace(self.trace_out, tracker.spans,
                                       epoch_ns=self._epoch_ns,
                                       driver_pid=os.getpid(),
                                       trace_id=tracker.trace_id)
            log.info("wrote %d spans to %s", count, self.trace_out)
            if self.trace_out != "-":
                print(f"{count} spans saved to {self.trace_out} "
                      "(Chrome trace format; open in ui.perfetto.dev)",
                      file=self.human)
        if self.manifest is not None:
            self.manifest.finish()
            self.manifest.write(self.metrics_out, self.registry)
            if self.metrics_out != "-":
                print(f"metrics manifest saved to {self.metrics_out}",
                      file=self.human)
        if self.events is not None:
            count = self.events.write(self.trace_events)
            log.info("wrote %d sampled events to %s", count,
                     self.trace_events)
            if self.trace_events != "-":
                print(f"{count} sampled events saved to {self.trace_events}",
                      file=self.human)


def _attach_predictor_metrics(predictors: Dict[str, object],
                              registry: Optional[MetricsRegistry]) -> None:
    """Attach metrics to every predictor that supports it (gDiff family)."""
    if registry is None:
        return
    for name, predictor in predictors.items():
        attach = getattr(predictor, "attach_metrics", None)
        if attach is not None:
            attach(registry, prefix=f"gdiff.{name}")


def _parse_benchmarks(spec: Optional[str]) -> Optional[List[str]]:
    if not spec:
        return None
    names = [b.strip() for b in spec.split(",") if b.strip()]
    unknown = [b for b in names if b not in BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {unknown}; "
                         f"choose from {BENCHMARKS}")
    return names


def cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks:")
    for name in BENCHMARKS:
        print(f"  {name:8s} {get(name).description}")
    print("\nexperiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("\npredictors:", ", ".join(sorted(PREDICTORS)))
    print("pipeline schemes:", ", ".join(sorted(PIPELINE_SCHEMES)))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    tele = _Telemetry(args, "run")
    kwargs = {}
    if args.length:
        kwargs["length"] = args.length
    benchmarks = _parse_benchmarks(args.bench)
    if benchmarks and args.experiment != "fig12":
        kwargs["benchmarks"] = benchmarks
    log.info("running experiment %s (%s)", args.experiment,
             kwargs or "defaults")
    result = run_experiment(args.experiment, registry=tele.registry, **kwargs)
    text = result.render()
    print(text, file=tele.human)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nsaved to {args.out}", file=tele.human)
    tele.add("experiment", result.as_dict())
    tele.finish()
    return 0


def _trace_gen(args: argparse.Namespace) -> int:
    _require_workload(args.benchmark, "trace gen")
    tele = _Telemetry(args, "trace")
    log.info("generating %s trace (%d instructions)",
             args.benchmark, args.length)
    with tele.timer("trace_gen") as span:
        trace = get(args.benchmark).trace(args.length)
        span.items = len(trace)
    print(f"{trace.name}: {trace.stats}", file=tele.human)
    if args.out:
        from .trace.io import save_trace

        with tele.timer("trace_save") as span:
            count = save_trace(trace, args.out)
            span.items = count
        print(f"saved {count} instructions to {args.out}", file=tele.human)
    tele.add("benchmark", args.benchmark)
    tele.add("trace", str(trace.stats))
    tele.finish()
    return 0


def _trace_import(args: argparse.Namespace) -> int:
    from .trace.ingest import IngestError, import_trace
    from .trace.ingest.store import trace_path

    if bool(args.capture) == bool(args.source):
        raise SystemExit("trace import: give exactly one of SOURCE or "
                         "--capture SCRIPT")
    tele = _Telemetry(args, "trace-import")
    out = tele.human
    adapter = args.format
    source = args.source
    options: Dict[str, object] = {}
    if args.capture:
        adapter = "capture"
        source = args.capture
        options = {"argv": tuple(args.arg or ()), "scope": args.scope}
    try:
        with tele.timer("trace_import") as span:
            doc = import_trace(source, adapter=adapter, name=args.name,
                               limit=args.limit, force=args.force,
                               options=options, metrics=tele.registry)
            span.items = doc["events"]
    except IngestError as exc:
        raise SystemExit(f"trace import: {exc}")
    print(f"imported {doc['name']}: {doc['events']:,} events "
          f"({doc['value_events']:,} value-producing, "
          f"{doc['dropped']} dropped) via {doc['adapter']} "
          f"in {doc['elapsed_s']:.2f}s", file=out)
    print(f"  trace  : {trace_path(doc['name'])} "
          f"({doc['trace_bytes']:,} bytes)", file=out)
    print(f"  source : sha256 {doc['source_sha256'][:16]}... "
          f"({doc['source_bytes']:,} bytes)", file=out)
    print(f"  content: sha256 {doc['content_sha256'][:16]}...", file=out)
    print(f"run it:  repro predict {doc['name']}   |   "
          f"repro workloads --only {doc['name']}", file=out)
    tele.add("import", doc)
    tele.finish()
    return 0


def _trace_list(args: argparse.Namespace) -> int:
    from .trace.ingest import imported_names, imported_root, manifest

    tele = _Telemetry(args, "trace-list")
    out = tele.human
    names = imported_names()
    print(f"imported workloads at {imported_root()}: {len(names)}",
          file=out)
    docs = {}
    for name in names:
        doc = manifest(name)
        docs[name] = doc
        print(f"  {name:24s} {doc['events']:>10,} events "
              f"{doc['trace_bytes']:>12,} bytes  via {doc['adapter']}",
              file=out)
    tele.add("imported", docs)
    tele.finish()
    return 0


def _trace_info(args: argparse.Namespace) -> int:
    from .trace.ingest import IngestError, manifest

    tele = _Telemetry(args, "trace-info")
    try:
        doc = manifest(args.name)
    except IngestError as exc:
        raise SystemExit(f"trace info: {exc}")
    print(json.dumps(doc, indent=2, sort_keys=True), file=tele.human)
    tele.add("manifest", doc)
    tele.finish()
    return 0


def _trace_remove(args: argparse.Namespace) -> int:
    from .trace.ingest import remove

    tele = _Telemetry(args, "trace-remove")
    if remove(args.name):
        print(f"removed imported workload {args.name}", file=tele.human)
        code = 0
    else:
        print(f"no imported workload {args.name}", file=tele.human)
        code = 1
    tele.finish()
    return code


def cmd_trace(args: argparse.Namespace) -> int:
    return {
        "gen": _trace_gen,
        "import": _trace_import,
        "list": _trace_list,
        "info": _trace_info,
        "remove": _trace_remove,
    }[args.action](args)


def cmd_workloads(args: argparse.Namespace) -> int:
    from .harness.workbank import render_bank, run_bank

    tele = _Telemetry(args, "workloads")
    out = tele.human
    groups = [g.strip() for g in args.groups.split(",") if g.strip()]
    only = ([w.strip() for w in args.only.split(",") if w.strip()]
            if args.only else None)
    predictors = [p.strip() for p in args.predictors.split(",")
                  if p.strip()]
    length = args.length
    check = args.check
    if args.smoke:
        # The CI shape: adversarial bank at the calibrated length, bands
        # gated.  Imported traces ride along so a fresh import is swept.
        groups = ["adversarial", "imported"]
        length = None
        check = True
    progress = tele.progress("workloads: ")
    try:
        with tele.timer("workloads") as span:
            rows, checks = run_bank(
                groups=groups, only=only, predictors=predictors,
                length=length, check=check, metrics=tele.registry,
                on_progress=progress)
            span.items = len(rows)
    except ValueError as exc:
        raise SystemExit(f"workloads: {exc}")
    if progress is not None:
        progress.close()
    print("\n".join(render_bank(rows, checks, predictors)), file=out)
    tele.add("workloads", {
        "rows": [{"workload": r.workload, "group": r.group,
                  "length": r.length, "value_events": r.value_events,
                  "accuracy": r.accuracy} for r in rows],
        "checks": [{"workload": c.workload, "predictor": c.predictor,
                    "lo": c.lo, "hi": c.hi, "actual": c.actual,
                    "ok": c.ok} for c in checks],
    })
    tele.finish()
    if not rows:
        print("workloads: nothing selected", file=out)
    return 2 if any(not c.ok for c in checks) else 0


def _require_workload(name: str, command: str) -> None:
    from .trace.workloads import is_known, known_names

    if not is_known(name):
        raise SystemExit(f"{command}: unknown workload {name!r}; "
                         f"choose from {known_names()}")


def cmd_predict(args: argparse.Namespace) -> int:
    _require_workload(args.benchmark, "predict")
    names = [p.strip() for p in args.predictors.split(",") if p.strip()]
    unknown = [p for p in names if p not in PREDICTORS]
    if unknown:
        raise SystemExit(f"unknown predictor(s): {unknown}; "
                         f"choose from {sorted(PREDICTORS)}")
    tele = _Telemetry(args, "predict")
    log.info("predicting %s over %s (%d instructions, gated=%s)",
             ", ".join(names), args.benchmark, args.length, args.gated)
    with tele.timer("trace_gen") as span:
        trace = get(args.benchmark).trace(args.length)
        span.items = len(trace)
    predictors = {name: PREDICTORS[name]() for name in names}
    _attach_predictor_metrics(predictors, tele.registry)
    progress = tele.progress(f"predict {args.benchmark}: ")
    with tele.timer("predict") as span:
        stats = run_value_prediction(
            trace, predictors, gated=args.gated,
            metrics=tele.registry, events=tele.events,
            on_progress=progress,
        )
        span.items = len(trace)
    if progress is not None:
        progress.close()
    out = tele.human
    print(f"{args.benchmark}: {trace.stats}\n", file=out)
    header = f"{'predictor':14s} {'raw_acc':>8s}"
    if args.gated:
        header += f" {'accuracy':>9s} {'coverage':>9s}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for name, stat in stats.items():
        line = f"{name:14s} {stat.raw_accuracy:8.1%}"
        if args.gated:
            line += f" {stat.accuracy:9.1%} {stat.coverage:9.1%}"
        print(line, file=out)
    tele.add("benchmark", args.benchmark)
    tele.add("predictors", {name: s.as_dict() for name, s in stats.items()})
    tele.finish()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    _require_workload(args.benchmark, "simulate")
    adapter = None
    if args.vp:
        if args.vp not in PIPELINE_SCHEMES:
            raise SystemExit(f"unknown scheme {args.vp!r}; choose from "
                             f"{sorted(PIPELINE_SCHEMES)}")
        adapter = PIPELINE_SCHEMES[args.vp]()
    tele = _Telemetry(args, "simulate")
    if adapter is not None:
        if tele.registry is not None:
            adapter.attach_metrics(tele.registry)
        if tele.events is not None:
            adapter.attach_events(tele.events)
    core = OutOfOrderCore(value_predictor=adapter,
                          speculate=args.speculate,
                          track_value_delay=True,
                          metrics=tele.registry)
    log.info("simulating %s (%d instructions, vp=%s, speculate=%s)",
             args.benchmark, args.length, args.vp, args.speculate)
    with tele.timer("trace_gen") as span:
        trace = get(args.benchmark).trace(args.length)
        span.items = len(trace)
    progress = tele.progress(f"simulate {args.benchmark}: ")
    with tele.timer("simulate") as span:
        result = core.run(trace, on_progress=progress)
        span.items = len(trace)
    if progress is not None:
        progress.close()
    out = tele.human
    print(f"{args.benchmark}: IPC {result.ipc:.2f} over {result.cycles} "
          f"cycles ({result.retired} retired)", file=out)
    print(f"  D-cache miss rate   : {result.dcache_miss_rate:.1%}", file=out)
    print(f"  branch mispredicts  : {result.branch_mispredict_rate:.1%}",
          file=out)
    print(f"  mean value delay    : {result.mean_value_delay():.2f}",
          file=out)
    if adapter is not None:
        print(f"  VP ({adapter.name}): accuracy "
              f"{adapter.stats.accuracy:.1%}, coverage "
              f"{adapter.stats.coverage:.1%}", file=out)
        if args.speculate:
            print(f"  selective reissues  : {result.reissues}", file=out)
    tele.add("benchmark", args.benchmark)
    tele.add("simulation", {
        "ipc": result.ipc,
        "cycles": result.cycles,
        "retired": result.retired,
        "retired_value_producing": result.retired_vp,
        "dcache_miss_rate": result.dcache_miss_rate,
        "branch_mispredict_rate": result.branch_mispredict_rate,
        "mean_value_delay": result.mean_value_delay(),
        "reissues": result.reissues,
    })
    if adapter is not None:
        tele.add("predictors", {adapter.name: adapter.stats.as_dict()})
    tele.finish()
    return 0


def _parse_experiments(spec: Optional[str]) -> List[str]:
    if not spec:
        return sorted(EXPERIMENTS)
    names = [e.strip() for e in spec.split(",") if e.strip()]
    unknown = [e for e in names if e not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {unknown}; "
                         f"choose from {sorted(EXPERIMENTS)}")
    return names


def _profiled(fn):
    """Run *fn* under cProfile; print top-20 cumulative entries to stderr.

    Perf PRs should start from data: the table shows where a run actually
    spends its time (kernels, trace loads, rendering, ...).
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print("--- cProfile: top 20 by cumulative time ---", file=sys.stderr)
        stats.print_stats(20)


def cmd_run_all(args: argparse.Namespace) -> int:
    tele = _Telemetry(args, "run-all")
    names = _parse_experiments(args.experiments)
    common: Dict[str, object] = {}
    if args.length:
        common["length"] = args.length
    benchmarks = _parse_benchmarks(args.bench)
    kwargs_for: Dict[str, Dict] = {}
    if benchmarks:
        # fig12 takes a single ``bench``, not a benchmark list.
        kwargs_for = {name: {"benchmarks": benchmarks}
                      for name in names if name != "fig12"}
    progress = tele.progress("run-all: ")
    if getattr(args, "no_shm", False):
        os.environ["REPRO_SHM"] = "0"
    jobs = args.jobs
    if getattr(args, "profile", False):
        # Worker processes are invisible to the parent's profiler; a
        # profiled run is serial so the numbers mean something.
        jobs = 1
    log.info("running %d experiments with jobs=%s", len(names),
             jobs or "auto")
    with tele.timer("run_all") as span:
        runner = lambda: run_experiments(  # noqa: E731
            names,
            max_workers=jobs,
            common_kwargs=common,
            kwargs_for=kwargs_for,
            registry=tele.registry,
            on_progress=progress,
        )
        results = (_profiled(runner) if getattr(args, "profile", False)
                   else runner())
        span.items = len(results)
    if progress is not None:
        progress.close()
    out = tele.human
    for name in names:
        print(results[name].render(), file=out)
        print("", file=out)
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        for name, result in results.items():
            path = os.path.join(args.out_dir, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result.render() + "\n")
            with open(os.path.join(args.out_dir, f"{name}.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(result.as_dict(), fh, indent=2)
        print(f"saved {len(results)} experiments to {args.out_dir}/",
              file=out)
    tele.add("experiments",
             {name: result.as_dict() for name, result in results.items()})
    tele.finish()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    tele = _Telemetry(args, "cache")
    cache = default_cache(metrics=tele.registry)
    out = tele.human
    if args.action == "stats":
        stats = cache.stats()
        enabled = "enabled" if cache_enabled() else "disabled (REPRO_CACHE=0)"
        print(f"trace cache at {stats['root']} ({enabled})", file=out)
        print(f"  entries: {stats['entries']}", file=out)
        print(f"  bytes  : {stats['bytes']:,}", file=out)
        origins = stats.get("origins")
        if origins:
            gen, imp = origins["generated"], origins["imported"]
            print(f"  origin generated: {gen['entries']} entries, "
                  f"{gen['bytes']:,} bytes", file=out)
            print(f"  origin imported : {imp['entries']} entries, "
                  f"{imp['bytes']:,} bytes", file=out)
            store = origins["imported_store"]
            print(f"  import store    : {store['workloads']} workload(s), "
                  f"{store['bytes']:,} bytes at {store['root']}", file=out)
        for entry in stats["files"]:
            print(f"    {entry['name']:56s} {entry['bytes']:>12,}", file=out)
        tele.add("cache", stats)
    elif args.action == "warm":
        benchmarks = _parse_benchmarks(args.bench) or list(BENCHMARKS)
        progress = tele.progress("cache warm: ")
        with tele.timer("cache_warm") as span:
            outcome = cache.warm(benchmarks, args.length,
                                 code_copies=args.code_copies,
                                 on_progress=progress)
            span.items = len(outcome)
        if progress is not None:
            progress.close()
        for name, was_hit in outcome:
            print(f"  {name:8s} {'hit' if was_hit else 'generated'}",
                  file=out)
        tele.add("cache", cache.stats())
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}", file=out)
        tele.add("cache", {"removed": removed, "root": str(cache.root)})
    tele.finish()
    return 0


def _parse_set(entries: Optional[List[str]]) -> Dict[str, object]:
    """Parse repeated ``--set key=value`` flags; values are JSON when they
    parse as JSON (``--set 'benchmarks=["gcc","mcf"]'``), else strings."""
    sets: Dict[str, object] = {}
    for entry in entries or []:
        key, sep, raw = entry.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {entry!r}")
        try:
            sets[key] = json.loads(raw)
        except json.JSONDecodeError:
            sets[key] = raw
    return sets


def _campaign_target(args: argparse.Namespace):
    """Resolve the positional spec-or-directory into (spec, store).

    A directory is opened as an existing store (its snapshot carries the
    resolved cells, so no spec file is needed); a file is parsed as a
    spec, with the store at ``--dir`` or ``campaigns/<name>``.
    """
    import os

    from .campaign import CampaignSpec, CampaignStore, SpecError, StoreError

    target = args.target
    try:
        if os.path.isdir(target):
            store = CampaignStore(target)
            spec = store.open()
        else:
            spec = CampaignSpec.load(target)
            store = CampaignStore(
                args.dir or os.path.join("campaigns", spec.name))
        spec.apply_sets(_parse_set(getattr(args, "set", None)))
        return spec, store
    except (SpecError, StoreError) as exc:
        raise SystemExit(str(exc))


def _watch_campaign(spec, store, frame_fn, out, interval: float) -> None:
    """Refresh the live status frame until every cell has a verdict.

    Each frame re-reads the store index (another process is doing the
    actual running), so a concurrent ``campaign run`` drives the display.
    A TTY gets ANSI clear-and-home between frames; a pipe gets frames
    separated by blank lines.  Ctrl-C exits the watch, not the campaign.
    """
    import time

    clear = "\033[2J\033[H" if out.isatty() else "\n"
    total = len(spec.cells())
    try:
        while True:
            store.refresh()
            print(clear + "\n".join(frame_fn(spec, store)), file=out,
                  flush=True)
            counts = store.counts()
            if sum(counts.values()) >= total:
                print("campaign complete", file=out)
                return
            time.sleep(interval)
    except KeyboardInterrupt:
        print("", file=out)


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench history|check`` — the perf trajectory and its gate."""
    from .bench import check_history, load_history
    from .bench.history import render_history

    tele = _Telemetry(args, f"bench-{args.action}")
    out = tele.human
    records = load_history(args.file)
    if args.action == "history":
        print("\n".join(render_history(records, last_n=args.last or None)),
              file=out)
        tele.add("bench_history", {"file": args.file,
                                   "records": len(records)})
        tele.finish()
        return 0

    # check
    ok, results = check_history(records, last_n=args.last,
                                slow_tol=args.slow_tol,
                                floor_tol=args.floor_tol)
    if not results:
        print(f"bench check: no baseline yet ({len(records)} record(s) in "
              f"{args.file}); passing vacuously", file=out)
    else:
        gated = [r for r in results if r.direction != "info"]
        failed = [r for r in results if not r.ok]
        print(f"bench check: latest vs median of last {args.last} "
              f"({len(gated)} gated metrics, {len(failed)} regressed)",
              file=out)
        for result in results:
            print(result.render(), file=out)
    tele.add("bench_check", {
        "file": args.file,
        "ok": ok,
        "records": len(records),
        "results": [{"metric": r.metric, "direction": r.direction,
                     "baseline": r.baseline, "latest": r.latest,
                     "limit": r.limit, "ok": r.ok} for r in results],
    })
    tele.finish()
    return 0 if ok else 2


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — the long-lived online prediction daemon."""
    from .serve.engine import ServeConfig, default_spool, run_serve

    tele = _Telemetry(args, "serve")
    config = ServeConfig(
        host=args.host,
        port=None if args.stdio else args.port,
        stdio=args.stdio,
        shards=args.shards,
        max_streams=args.max_streams,
        high_water=args.high_water,
        batch_events=args.batch_events,
        backend=args.backend,
        spool=args.spool or default_spool(),
    )
    engine = run_serve(config, registry=tele.registry, announce=tele.human)
    tele.add("serve", engine.daemon_stats())
    tele.finish()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen`` — drive a running daemon, report QPS/latency."""
    from .serve.loadgen import DEFAULT_WORKLOADS, run_loadgen

    tele = _Telemetry(args, "loadgen")
    out = tele.human
    workloads = (tuple(b.strip() for b in args.bench.split(",") if b.strip())
                 if args.bench else DEFAULT_WORKLOADS)
    if args.trace:
        from .trace.workloads import is_known, known_names

        if not is_known(args.trace):
            raise SystemExit(f"loadgen: unknown workload {args.trace!r}; "
                             f"choose from {known_names()}")
        workloads = (args.trace,)
    try:
        report = run_loadgen(
            args.host, args.port,
            streams=args.streams,
            events_per_stream=args.events,
            frame_events=args.frame_events,
            predictor=args.predictor,
            gated=args.gated,
            mode=args.mode,
            rate=args.rate,
            workloads=workloads,
            verify=args.verify,
            timeout=args.timeout,
        )
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"loadgen: cannot reach {args.host}:{args.port} "
                         f"({exc})")
    print(f"loadgen [{report['mode']}]: {report['streams']} streams x "
          f"{args.events} events ({report['predictor']}"
          f"{', gated' if report['gated'] else ''})", file=out)
    print(f"  applied {report['events_applied']}/"
          f"{report['events_offered']} events in "
          f"{report['wall_s']:.2f}s -> {report['events_eps']:,.0f} "
          "events/s", file=out)
    print(f"  frames {report['frames']}, busy {report['busy']}, "
          f"errors {report['errors']}", file=out)
    print(f"  latency p50 {report['p50_ms']:.2f} ms / "
          f"p90 {report['p90_ms']:.2f} ms / "
          f"p99 {report['p99_ms']:.2f} ms", file=out)
    exit_code = 0
    verify = report.get("verify")
    if verify is not None:
        print(f"  verify: {verify['matched']}/{verify['checked']} streams "
              "bit-identical to the batch harness", file=out)
        for miss in verify["mismatches"]:
            print(f"    mismatch {miss['stream']}: serve={miss['serve']} "
                  f"batch={miss['batch']}", file=out)
        if verify["matched"] != verify["checked"]:
            exit_code = 2
    if report["errors"]:
        exit_code = exit_code or 2
    tele.add("loadgen", report)
    tele.finish()
    return exit_code


def cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignScheduler,
        RetryPolicy,
        StoreError,
        check_fidelity,
        render_checks,
        render_report,
        status_lines,
        telemetry_lines,
        watch_lines,
    )

    tele = _Telemetry(args, f"campaign-{args.action}")
    spec, store = _campaign_target(args)
    out = tele.human

    if args.action in ("run", "resume"):
        if getattr(args, "no_shm", False):
            os.environ["REPRO_SHM"] = "0"
        if args.action == "resume" and not store.exists():
            raise SystemExit(f"nothing to resume: {store.root} does not "
                             "exist (use 'campaign run')")
        try:
            store.create(spec)
        except StoreError as exc:
            raise SystemExit(str(exc))
        progress = tele.progress(f"campaign {spec.name}: ")
        scheduler = CampaignScheduler(
            spec, store,
            max_workers=args.jobs,
            retry=RetryPolicy(max_attempts=args.max_attempts,
                              backoff_base_s=args.backoff),
            registry=tele.registry,
            on_progress=progress,
            stop_after=args.stop_after,
            warm=not args.no_warm,
        )
        log.info("campaign %s: %d cells into %s", spec.name,
                 len(spec.cells()), store.root)
        with tele.timer("campaign") as span:
            summary = scheduler.run()
            span.items = summary.completed
        if progress is not None:
            progress.close()
        print(f"campaign {spec.name} at {store.root}: "
              f"{summary.completed} executed, {summary.skipped} skipped, "
              f"{summary.quarantined} quarantined "
              f"({summary.retried} retries, {summary.crashes} worker "
              "crashes)", file=out)
        if summary.stopped_early:
            print(f"stopped after {args.stop_after} cells; "
                  "'campaign resume' continues", file=out)
        for label in summary.quarantined_labels:
            print(f"  quarantined: {label}", file=out)
        counts = store.counts()
        tele.add("campaign", {
            "name": spec.name,
            "dir": str(store.root),
            "executed": summary.completed,
            "skipped": summary.skipped,
            "retried": summary.retried,
            "quarantined": summary.quarantined,
            "crashes": summary.crashes,
            "stopped_early": summary.stopped_early,
            "store": counts,
        })
        tele.finish()
        return 1 if counts.get("quarantined") else 0

    if not store.exists():
        raise SystemExit(f"{store.root} is not a campaign directory")
    if args.action == "status":
        if args.watch:
            _watch_campaign(spec, store, watch_lines, out, args.interval)
        else:
            print("\n".join(status_lines(spec, store)), file=out)
        tele.add("campaign", {"name": spec.name, "store": store.counts()})
        tele.finish()
        return 0

    # report
    text = render_report(spec, store)
    print(text, file=out)
    if args.telemetry:
        print("", file=out)
        print("\n".join(telemetry_lines(spec, store)), file=out)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nsaved to {args.out}", file=out)
    exit_code = 0
    if args.check:
        checks = check_fidelity(spec, store)
        print("", file=out)
        print(render_checks(checks), file=out)
        if not checks:
            print("  (spec declares no fidelity targets)", file=out)
        if any(not c.ok for c in checks):
            exit_code = 2
        tele.add("fidelity", [
            {"label": c.label, "target": c.target, "tol": c.tol,
             "actual": c.actual, "ok": c.ok, "error": c.error}
            for c in checks])
    tele.add("campaign", {"name": spec.name, "store": store.counts()})
    tele.finish()
    return exit_code


def _sample_rate(text: str) -> float:
    """argparse type for ``--trace-sample``: a float within [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"sampling rate must be within [0, 1], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    telemetry = argparse.ArgumentParser(add_help=False)
    group = telemetry.add_argument_group("telemetry")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="-v for INFO, -vv for DEBUG (repro.* loggers)")
    group.add_argument("--metrics-out", metavar="FILE",
                       help="write a JSON run manifest; '-' streams it to "
                            "stdout (tables then print to stderr)")
    group.add_argument("--trace-events", metavar="FILE",
                       help="write sampled prediction events as JSON lines")
    group.add_argument("--trace-out", metavar="FILE",
                       help="write a Chrome trace-event span timeline "
                            "(open in ui.perfetto.dev); '-' streams it "
                            "to stdout")
    group.add_argument("--trace-sample", type=_sample_rate, default=0.01,
                       metavar="RATE",
                       help="event sampling probability in [0, 1] "
                            "(default 0.01)")
    group.add_argument("--trace-seed", type=int, default=0, metavar="SEED",
                       help="sampling RNG seed (default 0)")
    group.add_argument("--no-progress", action="store_true",
                       help="disable the TTY progress line")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting Global Stride Locality in "
                    "Value Streams' (ISCA 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", parents=[telemetry],
                   help="list benchmarks, experiments, predictors")

    p_run = sub.add_parser("run", parents=[telemetry],
                           help="regenerate a paper table/figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--length", type=int, default=None,
                       help="trace length per benchmark")
    p_run.add_argument("--bench", help="comma-separated benchmark subset")
    p_run.add_argument("--out", help="also save the rendered table here")

    # Like ``cache``, the trace command carries nested actions; telemetry
    # flags live on the leaf parsers only.  ``main()`` rewrites the
    # historical ``repro trace <benchmark>`` to ``trace gen <benchmark>``.
    p_trace = sub.add_parser("trace",
                             help="generate, import, or inspect workload "
                                  "traces (docs/WORKLOADS.md)")
    trace_sub = p_trace.add_subparsers(dest="action", required=True)
    p_tgen = trace_sub.add_parser("gen", parents=[telemetry],
                                  help="generate a workload trace")
    p_tgen.add_argument("benchmark",
                        help="suite benchmark, adversarial scenario, or "
                             "imported workload")
    p_tgen.add_argument("--length", type=int, default=100_000)
    p_tgen.add_argument("--out", help="save the trace (.trace / .trace.gz)")
    p_timp = trace_sub.add_parser(
        "import", parents=[telemetry],
        help="convert an external value/address stream into a "
             "first-class workload")
    p_timp.add_argument("source", nargs="?",
                        help="trace dump: .csv/.ndjson interchange, .cvp, "
                             "or .champsim (each optionally .gz)")
    p_timp.add_argument("--format",
                        help="adapter name (default: detect from the "
                             "source suffix)")
    p_timp.add_argument("--capture", metavar="SCRIPT",
                        help="run a Python script under the bytecode "
                             "capture hook instead of reading a dump")
    p_timp.add_argument("--arg", action="append", metavar="ARG",
                        help="argv entry for --capture (repeatable)")
    p_timp.add_argument("--scope", choices=("script", "tree", "all"),
                        default="script",
                        help="which frames --capture records: the script "
                             "file, its directory tree, or everything "
                             "(default script)")
    p_timp.add_argument("--name", help="workload name (default: derived "
                                       "from the source filename)")
    p_timp.add_argument("--limit", type=int, default=None,
                        help="stop after N events")
    p_timp.add_argument("--force", action="store_true",
                        help="replace an existing import of the same name")
    trace_sub.add_parser("list", parents=[telemetry],
                         help="list imported workloads")
    p_tinfo = trace_sub.add_parser("info", parents=[telemetry],
                                   help="print an import's provenance "
                                        "manifest")
    p_tinfo.add_argument("name")
    p_trm = trace_sub.add_parser("remove", parents=[telemetry],
                                 help="delete an imported workload")
    p_trm.add_argument("name")

    p_work = sub.add_parser("workloads", parents=[telemetry],
                            help="sweep the workload bank (suite + "
                                 "adversarial + imported) through the "
                                 "predictor zoo")
    p_work.add_argument("--groups", default="suite,adversarial,imported",
                        help="comma-separated bank groups (default: all)")
    p_work.add_argument("--only", help="comma-separated workload subset")
    p_work.add_argument("--predictors",
                        default="stride,dfcm,gdiff8,gdiff32",
                        help="comma-separated zoo subset "
                             "(default stride,dfcm,gdiff8,gdiff32)")
    p_work.add_argument("--length", type=int, default=None,
                        help="trace length (default: the adversarial "
                             "bank's calibrated length)")
    p_work.add_argument("--check", action="store_true",
                        help="gate adversarial accuracies against their "
                             "declared bands; exit 2 on drift")
    p_work.add_argument("--smoke", action="store_true",
                        help="CI shape: adversarial + imported groups at "
                             "the calibrated length with --check")

    p_pred = sub.add_parser("predict", parents=[telemetry],
                            help="profile accuracy comparison")
    p_pred.add_argument("benchmark",
                        help="suite benchmark, adversarial scenario, or "
                             "imported workload")
    p_pred.add_argument("--length", type=int, default=100_000)
    p_pred.add_argument("--predictors",
                        default="stride,dfcm,gdiff8,gdiff32")
    p_pred.add_argument("--gated", action="store_true",
                        help="apply the 3-bit confidence gate")

    p_sim = sub.add_parser("simulate", parents=[telemetry],
                           help="run the OOO core")
    p_sim.add_argument("benchmark",
                       help="suite benchmark, adversarial scenario, or "
                            "imported workload")
    p_sim.add_argument("--length", type=int, default=50_000)
    p_sim.add_argument("--vp", help="value-prediction scheme "
                                    "(stride|dfcm|sgvq|hgvq|gdiff-sgvq|"
                                    "gdiff-hgvq)")
    p_sim.add_argument("--speculate", action="store_true",
                       help="break dependencies on confident predictions")

    p_all = sub.add_parser("run-all", parents=[telemetry],
                           help="run the experiment registry in parallel")
    p_all.add_argument("--experiments",
                       help="comma-separated experiment subset "
                            "(default: all)")
    p_all.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores; "
                            "1 = serial)")
    p_all.add_argument("--length", type=int, default=None,
                       help="trace length per benchmark")
    p_all.add_argument("--bench", help="comma-separated benchmark subset")
    p_all.add_argument("--out-dir",
                       help="save each experiment's table (.txt) and data "
                            "(.json) here")
    p_all.add_argument("--profile", action="store_true",
                       help="run under cProfile (serial) and print the "
                            "top-20 cumulative entries to stderr")
    p_all.add_argument("--no-shm", action="store_true",
                       help="disable the shared-memory trace plane "
                            "(workers load traces from the disk cache)")

    # Telemetry flags live on the leaf action parsers only: sharing the
    # parent with ``p_cache`` would let the leaf's defaults overwrite
    # flags given before the action word.
    p_cache = sub.add_parser("cache",
                             help="manage the on-disk trace cache")
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    cache_sub.add_parser("stats", parents=[telemetry],
                         help="entry count, sizes, hit/miss counters")
    p_warm = cache_sub.add_parser("warm", parents=[telemetry],
                                  help="pre-generate benchmark traces")
    p_warm.add_argument("--length", type=int, default=100_000)
    p_warm.add_argument("--code-copies", type=int, default=1)
    p_warm.add_argument("--bench", help="comma-separated benchmark subset")
    cache_sub.add_parser("clear", parents=[telemetry],
                         help="delete every cache entry")

    p_camp = sub.add_parser("campaign",
                            help="declarative, resumable experiment "
                                 "campaigns (docs/CAMPAIGNS.md)")
    camp_sub = p_camp.add_subparsers(dest="action", required=True)

    def _camp_common(p):
        p.add_argument("target",
                       help="campaign spec (.toml/.json) or an existing "
                            "campaign directory")
        p.add_argument("--dir", help="campaign directory (default: "
                                     "campaigns/<name>)")
        p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a parameter in every cell "
                            "(repeatable; value parsed as JSON when "
                            "possible)")

    for action in ("run", "resume"):
        p = camp_sub.add_parser(
            action, parents=[telemetry],
            help=("execute pending cells (skips completed ones)"
                  if action == "run"
                  else "continue an interrupted campaign"))
        _camp_common(p)
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores; "
                            "1 = in-process)")
        p.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per cell before quarantine "
                            "(default 3)")
        p.add_argument("--backoff", type=float, default=0.25,
                       metavar="SECONDS",
                       help="base retry backoff, doubled per round and "
                            "capped (default 0.25)")
        p.add_argument("--stop-after", type=int, default=None,
                       metavar="N",
                       help="stop cleanly after executing N new cells "
                            "(for testing interrupt/resume)")
        p.add_argument("--no-warm", action="store_true",
                       help="skip the up-front trace cache warm")
        p.add_argument("--no-shm", action="store_true",
                       help="disable the shared-memory trace plane "
                            "(workers load traces from the disk cache)")

    p_status = camp_sub.add_parser("status", parents=[telemetry],
                                   help="per-cell completion state from "
                                        "the store")
    _camp_common(p_status)
    p_status.add_argument("--watch", action="store_true",
                          help="live-refreshing progress view (bar, "
                               "throughput, ETA) until the campaign "
                               "completes; Ctrl-C exits")
    p_status.add_argument("--interval", type=float, default=2.0,
                          metavar="SECONDS",
                          help="refresh period for --watch (default 2)")

    p_report = camp_sub.add_parser("report", parents=[telemetry],
                                   help="render result tables from the "
                                        "store alone")
    _camp_common(p_report)
    p_report.add_argument("--check", action="store_true",
                          help="run the paper-fidelity gate; exit 2 on "
                               "drift")
    p_report.add_argument("--telemetry", action="store_true",
                          help="append the execution-telemetry section "
                               "(slowest cells, retries/quarantine, "
                               "cache hit rate)")
    p_report.add_argument("--out", help="also save the report here")

    p_bench = sub.add_parser("bench",
                             help="benchmark perf history and its "
                                  "regression gate (docs/OBSERVABILITY.md)")
    bench_sub = p_bench.add_subparsers(dest="action", required=True)
    from .bench import DEFAULT_HISTORY_PATH
    from .bench.history import DEFAULT_BASELINE_N

    p_hist = bench_sub.add_parser("history", parents=[telemetry],
                                  help="list recorded bench sessions, "
                                       "newest last")
    p_check = bench_sub.add_parser("check", parents=[telemetry],
                                   help="gate the latest session against "
                                        "the median of the last N; exit 2 "
                                        "on regression")
    for p in (p_hist, p_check):
        p.add_argument("--file", default=DEFAULT_HISTORY_PATH,
                       metavar="JSONL",
                       help=f"history file (default {DEFAULT_HISTORY_PATH})")
    p_hist.add_argument("--last", type=int, default=0, metavar="N",
                        help="show only the last N records (default: all)")
    p_check.add_argument("--last", type=int, default=DEFAULT_BASELINE_N,
                         metavar="N",
                         help="baseline = median of the last N prior "
                              f"records (default {DEFAULT_BASELINE_N})")
    p_check.add_argument("--slow-tol", type=float, default=1.75,
                         metavar="RATIO",
                         help="wall times may grow to RATIO x baseline "
                              "before failing (default 1.75)")
    p_check.add_argument("--floor-tol", type=float, default=0.6,
                         metavar="RATIO",
                         help="speedups may shrink to RATIO x baseline "
                              "before failing (default 0.6)")

    from .serve.engine import (
        DEFAULT_BATCH_EVENTS,
        DEFAULT_HIGH_WATER,
        DEFAULT_PORT,
        DEFAULT_SHARDS,
    )

    p_serve = sub.add_parser("serve", parents=[telemetry],
                             help="online prediction daemon "
                                  "(docs/SERVING.md)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"listen port; 0 = ephemeral "
                              f"(default {DEFAULT_PORT})")
    p_serve.add_argument("--stdio", action="store_true",
                         help="speak frames on stdin/stdout instead of a "
                              "socket (for subprocess embedding)")
    p_serve.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                         help="predictor shards = pinned pool workers "
                              f"(default {DEFAULT_SHARDS})")
    p_serve.add_argument("--max-streams", type=int, default=0,
                         metavar="N",
                         help="resident streams per shard before LRU "
                              "eviction to snapshots (0 = default)")
    p_serve.add_argument("--high-water", type=int,
                         default=DEFAULT_HIGH_WATER, metavar="FRAMES",
                         help="queued frames per shard before BUSY "
                              f"(default {DEFAULT_HIGH_WATER})")
    p_serve.add_argument("--batch-events", type=int,
                         default=DEFAULT_BATCH_EVENTS, metavar="EVENTS",
                         help="events coalesced per shard dispatch "
                              f"(default {DEFAULT_BATCH_EVENTS})")
    p_serve.add_argument("--backend", choices=("pool", "inproc"),
                         default="pool",
                         help="pool = sharded worker processes (default); "
                              "inproc = single-process, for debugging")
    p_serve.add_argument("--spool", help="snapshot spool directory for "
                                         "evicted streams")

    p_load = sub.add_parser("loadgen", parents=[telemetry],
                            help="drive a running daemon; report QPS and "
                                 "latency percentiles")
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_load.add_argument("--streams", type=int, default=64,
                        help="concurrent streams (default 64)")
    p_load.add_argument("--events", type=int, default=2000,
                        help="events per stream (default 2000)")
    p_load.add_argument("--frame-events", type=int, default=256,
                        help="events per frame (default 256)")
    p_load.add_argument("--predictor", default="gdiff32",
                        help="per-stream predictor spec (default gdiff32)")
    p_load.add_argument("--gated", action="store_true",
                        help="apply the 3-bit confidence gate")
    p_load.add_argument("--mode", choices=("closed", "open"),
                        default="closed",
                        help="closed = one frame in flight per stream "
                             "(default); open = fixed offered rate")
    p_load.add_argument("--rate", type=float, default=None,
                        metavar="EVENTS_PER_S",
                        help="offered rate for --mode open")
    p_load.add_argument("--bench", help="comma-separated workload subset "
                                        "for stream content")
    p_load.add_argument("--trace", metavar="NAME",
                        help="replay one workload (e.g. an imported "
                             "trace) on every stream; overrides --bench")
    p_load.add_argument("--verify", action="store_true",
                        help="after the run, check every stream's stats "
                             "are bit-identical to the batch harness "
                             "(closed mode)")
    p_load.add_argument("--timeout", type=float, default=120.0,
                        help="socket timeout in seconds (default 120)")
    return parser


#: Action words of the nested ``trace`` subcommand; anything else after
#: ``trace`` keeps its historical generate meaning.
_TRACE_ACTIONS = ("gen", "import", "list", "info", "remove")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: ``repro trace <benchmark>`` predates the nested trace
    # actions and still has to work (scripts, docs, muscle memory).
    if (argv[:1] == ["trace"] and len(argv) > 1
            and argv[1] not in _TRACE_ACTIONS
            and not argv[1].startswith("-")):
        argv.insert(1, "gen")
    args = build_parser().parse_args(argv)
    if getattr(args, "verbose", 0):
        configure_logging(args.verbose)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "trace": cmd_trace,
        "workloads": cmd_workloads,
        "predict": cmd_predict,
        "simulate": cmd_simulate,
        "run-all": cmd_run_all,
        "cache": cmd_cache,
        "campaign": cmd_campaign,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Reader closed early (e.g. `repro run-all | head`): the Unix
        # convention is a silent exit, not a traceback.  Point stdout at
        # devnull so interpreter shutdown doesn't re-raise on flush.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + 13  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
