"""Resumable, fault-tolerant campaign execution.

The scheduler walks the campaign grid and drives every *pending* cell to
one of two terminal states — completed (a record in the store) or
quarantined (a record with the traceback) — while guaranteeing:

* **Resumability**: a cell already in the store is skipped, never
  recomputed; killing a campaign at any instant loses at most the cells
  in flight.  Completed records are never rewritten on resume.
* **Fault isolation**: an exception inside a cell is caught *in the
  worker* and returned as data, retried with capped exponential backoff,
  and finally quarantined — one broken configuration cannot abort the
  other cells.  A worker that dies outright (segfault, OOM-kill) takes
  only itself down: the persistent pool replaces the dead worker in
  place and the scheduler re-tries only the casualties, so a poisoned
  cell eventually lands in quarantine while its siblings complete.
  (Under the legacy ``REPRO_POOL=fresh`` executor the whole pool breaks
  and is recreated on the next round — same store outcomes, more
  collateral retries.)
* **Determinism**: a worker computes exactly what a direct
  :func:`~repro.harness.experiments.run_experiment` /
  :func:`~repro.harness.runner.run_value_prediction` call computes — same
  functions, fresh state — so campaign records equal direct harness
  results (asserted by ``tests/test_campaign.py``).

The trace cache is warmed once up front (unique ``(bench, length, seed,
code_copies)`` tuples across the whole grid) so workers start from warm
loads instead of racing to generate; combined with the cache's per-key
generation lock, each distinct trace is generated at most once per
machine, ever.
"""

from __future__ import annotations

import functools
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..harness.parallel import TASK_OK, default_workers, run_tasks
from ..telemetry import MetricsRegistry, RunManifest, get_logger
from ..trace import shm
from ..trace.cache import cache_enabled, default_cache, effective_length
from ..trace.packed import PackedTrace
from .spec import Cell, CampaignSpec
from .store import CampaignStore

log = get_logger("repro.campaign.scheduler")

#: Trace usage of each registry experiment, used to warm the cache before
#: the pool starts: (default length, default code_copies, fixed bench).
#: ``length`` / ``code_copies`` / ``benchmarks`` params override these.
_EXPERIMENT_TRACE_HINTS: Dict[str, Tuple[int, int, Optional[str]]] = {
    "fig8": (100_000, 1, None),
    "fig9": (100_000, 8, None),
    "fig10": (100_000, 1, None),
    "fig12": (50_000, 4, "vortex"),
    "fig13": (50_000, 4, None),
    "fig16": (50_000, 4, None),
    "fig18a": (100_000, 1, None),
    "fig18b": (100_000, 1, None),
    "table2": (50_000, 4, None),
    "fig19": (50_000, 4, None),
}


@dataclass
class RetryPolicy:
    """Capped exponential backoff between retry rounds."""

    max_attempts: int = 3
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 8.0

    def delay(self, round_no: int) -> float:
        if round_no <= 0:
            return 0.0
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** (round_no - 1)))


@dataclass
class CampaignRunSummary:
    """What one scheduler invocation did (not the store's total state)."""

    total: int = 0
    completed: int = 0
    skipped: int = 0
    retried: int = 0
    quarantined: int = 0
    crashes: int = 0
    stopped_early: bool = False
    quarantined_labels: List[str] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        return self.total - self.completed - self.skipped - self.quarantined


# ---------------------------------------------------------------------------
# Worker side (subprocess): everything below must be picklable/importable.
# ---------------------------------------------------------------------------
def _make_predictor(params: Dict[str, Any]):
    """Build the predictor of a ``predict`` cell from its axes."""
    from ..core.gdiff import GDiffPredictor
    from ..core.hybrid import HybridGDiffPredictor
    from ..predictors.dfcm import DFCMPredictor
    from ..predictors.last_value import LastValuePredictor
    from ..predictors.stride import StridePredictor

    name = params["predictor"]
    entries = params.get("entries")
    if name == "gdiff":
        return GDiffPredictor(order=params.get("order", 8), entries=entries,
                              delay=params.get("delay", 0))
    if name == "hgvq":
        return HybridGDiffPredictor(order=params.get("order", 32),
                                    entries=entries)
    if name == "stride":
        return StridePredictor(entries=entries)
    if name == "dfcm":
        return DFCMPredictor(order=params.get("order", 4),
                             l1_entries=entries)
    if name == "last-value":
        return LastValuePredictor(entries=entries)
    raise ValueError(f"unknown predictor {name!r}")


def _cell_telemetry(registry: MetricsRegistry, duration_s: float,
                    cpu_s: float) -> Dict[str, Any]:
    """The per-cell telemetry summary persisted alongside the result.

    Everything here is derived from the cell's own registry, so the
    stored record is self-describing: ``campaign status``/``report
    --telemetry`` render throughput, retry, and cache behaviour from the
    store alone, long after the run.
    """
    def count(name: str) -> int:
        counter = registry.counters.get(name)
        return counter.value if counter is not None else 0

    def leaf(phase_name: str) -> str:
        # Phases nest with "/" (the cell body runs under a "cell" timer),
        # so the work phase of a predict cell is "cell/predict".
        return phase_name.rsplit("/", 1)[-1]

    events = (count("harness.value_instructions") or count("ooo.retired")
              or sum(p.items for n, p in registry.phases.items()
                     if leaf(n) == "predict"
                     or leaf(n).startswith("experiment.")))
    return {
        "duration_s": round(duration_s, 6),
        "cpu_s": round(cpu_s, 6),
        "events": events,
        "events_per_s": (round(events / duration_s, 1)
                         if duration_s > 0 and events else None),
        "cache_hits": count("cache.hit"),
        "cache_misses": count("cache.miss"),
    }


def _execute_cell(config: Dict[str, Any],
                  span_ctx: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Run one cell to completion and return its record payload."""
    from ..harness.experiments import run_experiment
    from ..harness.runner import run_value_prediction
    from ..trace.cache import cached_trace

    registry = MetricsRegistry()
    if span_ctx is not None:
        registry.enable_spans(context=span_ctx)
    kind = config["kind"]
    params = dict(config["params"])
    started = time.perf_counter()
    cpu_started = time.process_time()
    with registry.timer("cell"):
        if kind == "experiment":
            name = params.pop("experiment")
            result = run_experiment(name, registry=registry, **params)
            payload: Dict[str, Any] = {"experiment": result.as_dict()}
        else:
            trace = cached_trace(params["bench"],
                                 params.get("length", 100_000),
                                 seed=params.get("seed"),
                                 code_copies=params.get("code_copies", 1),
                                 metrics=registry)
            predictor = _make_predictor(params)
            # No metrics/events are threaded into the harness here: a
            # registry would force the per-pair object path, and campaign
            # predict cells must stay on the fused kernels (PR 3).  The
            # phase's item count carries the throughput denominator.
            with registry.timer("predict") as span:
                stats = run_value_prediction(
                    trace, {params["predictor"]: predictor},
                    gated=bool(params.get("gated", False)))
                span.items = len(trace)
            payload = {"stats": {name: s.as_dict()
                                 for name, s in stats.items()}}
    duration = time.perf_counter() - started
    manifest = RunManifest("campaign-cell", config)
    manifest.finish()
    return {
        "payload": payload,
        "metrics": registry.as_dict(),
        "duration_s": duration,
        "telemetry": _cell_telemetry(
            registry, duration, time.process_time() - cpu_started),
        "manifest": manifest.as_dict(),
    }


def _cell_worker(config: Dict[str, Any],
                 span_ctx: Optional[Dict[str, Any]] = None) -> Tuple[str, Any]:
    """Pool entry point: soft failures come back as data, never as an
    exception that would poison the pool."""
    try:
        return ("done", _execute_cell(config, span_ctx))
    except Exception as exc:
        return ("failed", f"{type(exc).__name__}: {exc}",
                traceback.format_exc())


def _crashing_cell_worker(config, span_ctx=None):  # pragma: no cover - subprocess
    """Fault injection: every cell hard-kills its worker (and pool)."""
    os._exit(13)


def _crash_marked_cell_worker(config, span_ctx=None):  # pragma: no cover - subprocess
    """Fault injection: cells whose params carry ``crash_marker`` die
    hard; everything else runs normally."""
    if config["params"].get("length") == 4242:
        os._exit(13)
    return _cell_worker(config, span_ctx)


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------
class CampaignScheduler:
    """Drive a campaign's pending cells through the worker pool.

    Args:
        spec: the campaign (its grid defines the cells).
        store: where results land; must already be created/opened.
        max_workers: pool size (``None`` = all cores, ``1`` = in-process).
        retry: retry/backoff policy for failed and crashed cells.
        registry: optional driver-side metrics registry; receives the
            ``campaign.*`` counters plus every successful worker's merged
            snapshot.
        on_progress: ``(cells_accounted, total)`` callback — counts
            skipped, completed, and quarantined cells.
        stop_after: execute at most this many new cells, then stop
            cleanly (used by the interrupt/resume tests and CI).
        warm: pre-populate the trace cache before the pool starts.
        cell_worker: the pool entry point (overridable for fault
            injection; the default runs the real cell body).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: CampaignStore,
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
        stop_after: Optional[int] = None,
        warm: bool = True,
        cell_worker: Callable[[Dict[str, Any]], Tuple[str, Any]] = _cell_worker,
    ):
        self.spec = spec
        self.store = store
        self.max_workers = (default_workers() if max_workers is None
                            else max_workers)
        self.retry = retry or RetryPolicy()
        self.registry = registry
        self.on_progress = on_progress
        self.stop_after = stop_after
        self.warm = warm
        self.cell_worker = cell_worker

    def _count(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(f"campaign.{name}").inc(amount)

    # -- cache warm-up ----------------------------------------------------
    def warm_plan(self, cells: List[Cell]) -> Set[Tuple[str, int, Optional[int], int]]:
        """Unique ``(bench, length, seed, code_copies)`` tuples the grid
        will pull through the trace cache."""
        from ..trace.workloads import BENCHMARKS

        plan: Set[Tuple[str, int, Optional[int], int]] = set()
        for cell in cells:
            params = cell.params
            if cell.kind == "predict":
                plan.add((params["bench"], params.get("length", 100_000),
                          params.get("seed"),
                          params.get("code_copies", 1)))
                continue
            name = params["experiment"]
            hint = _EXPERIMENT_TRACE_HINTS.get(name)
            if hint is None:
                continue
            default_length, copies, fixed_bench = hint
            length = params.get("length", default_length)
            copies = params.get("code_copies", copies)
            if fixed_bench is not None:
                benches = [params.get("bench", fixed_bench)]
            else:
                benches = params.get("benchmarks", BENCHMARKS)
            for bench in benches:
                plan.add((bench, length, None, copies))
        return plan

    def warm_cache(self, cells: List[Cell]) -> int:
        """Generate-or-load every trace the grid needs, once, up front.

        Warmed traces are also published to shared memory (when enabled):
        pool workers attach the driver's segments zero-copy instead of
        each re-inflating the disk cache, and the publications stay alive
        across scheduler rounds for the life of the driver.
        """
        if not cache_enabled():
            return 0
        from ..trace.workloads import get as _workload

        plan = sorted(self.warm_plan(cells),
                      key=lambda t: (t[0], t[1], t[3]))
        cache = default_cache(metrics=self.registry)
        timer = (self.registry.timer("campaign/warm")
                 if self.registry is not None else None)
        span = timer.__enter__() if timer is not None else None
        warmed = 0
        try:
            for bench, length, seed, copies in plan:
                # Best effort: a bad cell config (e.g. negative length) must
                # surface as a quarantined cell, not abort the whole run here.
                try:
                    trace = cache.load_or_generate(bench, length, seed=seed,
                                                   code_copies=copies)
                    warmed += 1
                except Exception as exc:
                    log.warning("cache warm failed for %s length=%s: %s",
                                bench, length, exc)
                    continue
                if shm.shm_enabled() and isinstance(trace, PackedTrace):
                    # Publish under the *effective* seed and *effective*
                    # length so worker-side ``cached_trace`` lookups
                    # (which resolve a None seed to the workload default
                    # and clamp finite imported workloads) find the
                    # segment.
                    spec = _workload(bench)
                    eff = spec.seed if seed is None else seed
                    eff_len = effective_length(spec, length)
                    shm.publish(trace, (bench, eff_len, eff, copies),
                                metrics=self.registry)
        finally:
            if timer is not None:
                span.items = warmed
                timer.__exit__(None, None, None)
        log.info("warmed %d trace cache entries", warmed)
        return warmed

    # -- the main loop ----------------------------------------------------
    def run(self) -> CampaignRunSummary:
        cells = self.spec.cells()
        summary = CampaignRunSummary(total=len(cells))
        if self.registry is not None:
            self.registry.gauge("campaign.cells.total").set(len(cells))

        pending = [c for c in cells if not self.store.is_done(c.cell_id)]
        summary.skipped = len(cells) - len(pending)
        self._count("cells.skipped", summary.skipped)
        accounted = summary.skipped
        if self.on_progress is not None:
            self.on_progress(accounted, len(cells))
        if not pending:
            return summary

        if self.warm:
            self.warm_cache(pending)

        # Workers record spans under the driver's current span when the
        # driver is tracing (``--trace-out``); the context is baked into
        # a partial so ``run_tasks`` stays agnostic of span plumbing.
        span_ctx = (self.registry.span_tracker.context()
                    if self.registry is not None
                    and self.registry.span_tracker is not None else None)
        worker = (self.cell_worker if span_ctx is None else
                  functools.partial(self.cell_worker, span_ctx=span_ctx))

        attempts: Dict[str, int] = {}
        round_no = 0
        isolate = False
        while pending:
            budget = len(pending)
            if self.stop_after is not None:
                budget = self.stop_after - summary.completed
                if budget <= 0:
                    summary.stopped_early = True
                    break
            batch, rest = pending[:budget], pending[budget:]
            delay = self.retry.delay(round_no)
            if delay:
                log.info("retry round %d: backing off %.2fs for %d "
                         "cell(s)", round_no, delay, len(batch))
                time.sleep(delay)
            if isolate and self.max_workers > 1:
                # The previous round lost its pool to a crashing worker,
                # which also breaks innocent siblings' futures.  Re-try
                # each casualty in a pool of its own so the poisoned cell
                # can only take itself down.
                outcomes = []
                for c in batch:
                    outcomes.extend(run_tasks(
                        worker, [c.config()],
                        max_workers=self.max_workers,
                        registry=self.registry))
            else:
                outcomes = run_tasks(
                    worker, [c.config() for c in batch],
                    max_workers=self.max_workers, registry=self.registry)
            requeue: List[Cell] = []
            any_failures = False
            isolate = False
            for cell, (status, value) in zip(batch, outcomes):
                attempt = attempts.get(cell.cell_id, 0) + 1
                attempts[cell.cell_id] = attempt
                if status == TASK_OK and value[0] == "done":
                    self._record_done(cell, value[1], attempt)
                    summary.completed += 1
                    accounted += 1
                elif status == TASK_OK:  # soft failure inside the worker
                    any_failures = True
                    _kind, error, tb = value
                    if attempt >= self.retry.max_attempts:
                        self._record_quarantine(cell, error, tb, attempt,
                                                summary)
                        accounted += 1
                    else:
                        self._count("cells.retried")
                        summary.retried += 1
                        log.warning("cell %s failed (%s); attempt %d/%d",
                                    cell.label, error, attempt,
                                    self.retry.max_attempts)
                        requeue.append(cell)
                else:  # the worker (or its pool) crashed
                    any_failures = True
                    isolate = True
                    summary.crashes += 1
                    self._count("pool.crash")
                    if attempt >= self.retry.max_attempts:
                        self._record_quarantine(
                            cell, f"worker crashed: {value}", "", attempt,
                            summary)
                        accounted += 1
                    else:
                        self._count("cells.retried")
                        summary.retried += 1
                        log.warning("cell %s crashed its worker (%s); "
                                    "attempt %d/%d", cell.label, value,
                                    attempt, self.retry.max_attempts)
                        requeue.append(cell)
                if self.on_progress is not None:
                    self.on_progress(accounted, len(cells))
            pending = requeue + rest
            round_no = round_no + 1 if any_failures else round_no
        return summary

    def _record_done(self, cell: Cell, outcome: Dict[str, Any],
                     attempt: int) -> None:
        self.store.write_result(
            cell,
            outcome["payload"],
            metrics=outcome.get("metrics"),
            attempts=attempt,
            duration_s=outcome.get("duration_s"),
            manifest=outcome.get("manifest"),
            telemetry=outcome.get("telemetry"),
        )
        self._count("cells.completed")
        if self.registry is not None:
            metrics = outcome.get("metrics")
            if metrics:
                self.registry.merge_dict(metrics)
            duration = outcome.get("duration_s")
            if duration is not None:
                self.registry.series_of("campaign.cell_wall_s").append(
                    round(duration, 6))
                self.registry.histogram(
                    "campaign.cell_seconds", bucket_width=0.5).observe(
                        round(duration, 6))
        log.info("cell %s done in %.2fs (attempt %d)", cell.label,
                 outcome.get("duration_s") or 0.0, attempt)

    def _record_quarantine(self, cell: Cell, error: str, tb: str,
                           attempt: int,
                           summary: CampaignRunSummary) -> None:
        self.store.write_quarantine(cell, error, tb, attempts=attempt)
        self._count("cells.quarantined")
        summary.quarantined += 1
        summary.quarantined_labels.append(cell.label)
        log.error("cell %s quarantined after %d attempt(s): %s",
                  cell.label, attempt, error)
