"""Experiment-campaign orchestration: declarative sweeps, a durable
content-addressed results store, and resumable fault-tolerant scheduling.

The paper's evidence is a large parametric study; this package makes such
studies declarative (``spec``), durable (``store``), restartable and
crash-tolerant (``scheduler``), and checkable against the paper's
headline numbers (``fidelity``), with reporting straight from the store
(``report``).  The CLI front end is ``repro campaign run|status|report|
resume`` (see docs/CAMPAIGNS.md).
"""

from .fidelity import FidelityCheck, check_fidelity, render_checks
from .report import (
    render_report,
    report_tables,
    status_lines,
    telemetry_lines,
    watch_lines,
)
from .scheduler import CampaignRunSummary, CampaignScheduler, RetryPolicy
from .spec import CampaignSpec, Cell, SpecError
from .store import CampaignStore, StoreError

__all__ = [
    "CampaignSpec",
    "Cell",
    "SpecError",
    "CampaignStore",
    "StoreError",
    "CampaignScheduler",
    "CampaignRunSummary",
    "RetryPolicy",
    "FidelityCheck",
    "check_fidelity",
    "render_checks",
    "render_report",
    "report_tables",
    "status_lines",
    "telemetry_lines",
    "watch_lines",
]
