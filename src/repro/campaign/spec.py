"""Declarative campaign specifications.

A campaign spec is a TOML (or JSON) document describing a *grid* of
experiment cells — the paper's parametric studies (GVQ depth, table size,
value delay, gating, SGVQ vs HGVQ, across the SPECint suite) expressed as
data instead of shell loops:

.. code-block:: toml

    [campaign]
    name = "fig10-delay"
    description = "gDiff accuracy vs value delay, two queue depths"

    [defaults]                  # merged into every cell
    kind = "experiment"
    length = 100000

    [matrix]                    # axes; the grid is their cross product
    experiment = ["fig10"]
    order = [8, 32]

    [[exclude]]                 # drop cells matching every listed key
    order = 32

    [[override]]                # patch cells matching ``where``
    where = { order = 8 }
    set = { length = 50000 }

    [[fidelity]]                # paper-fidelity gate (see fidelity.py)
    label = "fig10 T=0 average"
    where = { experiment = "fig10" }
    row = "average"
    column = "T=0"
    target = 0.674
    tol = 0.08

Two cell kinds exist:

* ``kind = "experiment"`` — one invocation of a registry experiment
  (:mod:`repro.harness.experiments`); remaining keys are its kwargs.
* ``kind = "predict"`` — one profile run of a single predictor over one
  benchmark (``predictor``, ``bench``, plus ``order`` / ``entries`` /
  ``delay`` / ``gated`` / ``length`` / ``seed`` / ``code_copies``), the
  shape of the paper's design-space sweeps that no registry figure
  covers directly.

Each resolved cell is canonicalised and content-hashed together with the
trace-format version; that hash is the cell's identity in the results
store, so "already computed?" is a pure function of the configuration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..trace.io import PACKED_FORMAT_VERSION

#: Schema version of the spec format and of store snapshots of it.
SPEC_SCHEMA_VERSION = 1

#: Recognised cell kinds.
CELL_KINDS = ("experiment", "predict")

#: Predictors available to ``predict`` cells and the constructor
#: parameters each accepts (beyond the common trace axes).
PREDICT_PREDICTORS = {
    "gdiff": ("order", "entries", "delay"),
    "hgvq": ("order", "entries"),
    "stride": ("entries",),
    "dfcm": ("order", "entries"),
    "last-value": ("entries",),
}

#: Axes every ``predict`` cell understands.
PREDICT_COMMON_KEYS = ("kind", "predictor", "bench", "length", "seed",
                       "code_copies", "gated")


class SpecError(ValueError):
    """A malformed or inconsistent campaign specification."""


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for hashing configs (sorted, no spaces)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Cell:
    """One resolved point of the campaign grid."""

    kind: str
    params: Dict[str, Any]
    cell_id: str = field(default="")
    label: str = field(default="")

    @staticmethod
    def make(kind: str, params: Dict[str, Any]) -> "Cell":
        config = {"kind": kind, "params": params,
                  "trace_format_version": PACKED_FORMAT_VERSION}
        cell_id = hashlib.sha256(
            canonical_json(config).encode("utf-8")).hexdigest()[:16]
        return Cell(kind=kind, params=dict(params), cell_id=cell_id,
                    label=_label(kind, params))

    def config(self) -> Dict[str, Any]:
        """The resolved configuration shipped to workers and stored."""
        return {"kind": self.kind, "params": dict(self.params),
                "trace_format_version": PACKED_FORMAT_VERSION}


def _label(kind: str, params: Dict[str, Any]) -> str:
    """Human-readable cell name: stable, short, derived from the config."""
    if kind == "experiment":
        head = str(params.get("experiment", "?"))
        rest = {k: v for k, v in params.items() if k != "experiment"}
    else:
        head = f"predict-{params.get('predictor', '?')}"
        rest = {k: v for k, v in params.items() if k != "predictor"}
    if not rest:
        return head
    parts = ",".join(f"{k}={_short(v)}" for k, v in sorted(rest.items()))
    return f"{head}[{parts}]"


def _short(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "+".join(str(v) for v in value)
    return str(value)


def _matches(params: Dict[str, Any], where: Dict[str, Any]) -> bool:
    """Subset match: every key in *where* equals the cell's value."""
    return all(params.get(k) == v for k, v in where.items())


@dataclass
class CampaignSpec:
    """A parsed campaign: identity, grid, and fidelity targets."""

    name: str
    description: str = ""
    defaults: Dict[str, Any] = field(default_factory=dict)
    matrix: Dict[str, List[Any]] = field(default_factory=dict)
    excludes: List[Dict[str, Any]] = field(default_factory=list)
    overrides: List[Dict[str, Any]] = field(default_factory=list)
    fidelity: List[Dict[str, Any]] = field(default_factory=list)
    source: Optional[str] = None
    #: Set when rebuilt from a store snapshot: the exact resolved cell
    #: list, bypassing grid expansion so cell ids are preserved.
    explicit_cells: Optional[List[Dict[str, Any]]] = None

    # -- loading ----------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Parse a ``.toml`` or ``.json`` spec file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read campaign spec {path}: {exc}")
        if path.suffix.lower() == ".json":
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path}: invalid JSON: {exc}")
        else:
            import tomllib

            try:
                doc = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise SpecError(f"{path}: invalid TOML: {exc}")
        return cls.from_dict(doc, source=str(path))

    @classmethod
    def from_dict(cls, doc: Dict[str, Any],
                  source: Optional[str] = None) -> "CampaignSpec":
        if not isinstance(doc, dict):
            raise SpecError("campaign spec must be a table/object")
        head = doc.get("campaign", {})
        name = head.get("name")
        if not name or not isinstance(name, str):
            raise SpecError("spec needs [campaign] name = \"...\"")
        matrix = doc.get("matrix", {})
        if not isinstance(matrix, dict) or not matrix:
            raise SpecError("spec needs a non-empty [matrix] table")
        for axis, values in matrix.items():
            if not isinstance(values, list) or not values:
                raise SpecError(
                    f"matrix axis {axis!r} must be a non-empty list")
        overrides = doc.get("override", [])
        for override in overrides:
            if ("where" not in override or "set" not in override
                    or not isinstance(override["where"], dict)
                    or not isinstance(override["set"], dict)):
                raise SpecError("each [[override]] needs 'where' and 'set' "
                                "tables")
        spec = cls(
            name=name,
            description=head.get("description", ""),
            defaults=dict(doc.get("defaults", {})),
            matrix={k: list(v) for k, v in matrix.items()},
            excludes=[dict(e) for e in doc.get("exclude", [])],
            overrides=[dict(o) for o in overrides],
            fidelity=[dict(f) for f in doc.get("fidelity", [])],
            source=source,
        )
        spec.cells()  # validate eagerly: a bad grid should fail at load
        return spec

    # -- expansion --------------------------------------------------------
    def cells(self) -> List[Cell]:
        """Expand the grid: defaults ∪ matrix point, overrides applied,
        excludes dropped, every cell validated."""
        if self.explicit_cells is not None:
            for c in self.explicit_cells:
                _validate_cell(c["kind"], c["params"])
            return [Cell.make(c["kind"], dict(c["params"]))
                    for c in self.explicit_cells]
        axes = sorted(self.matrix)
        cells: List[Cell] = []
        seen: Dict[str, str] = {}
        for point in product(*(self.matrix[a] for a in axes)):
            params = dict(self.defaults)
            params.update(dict(zip(axes, point)))
            if any(_matches(params, e) for e in self.excludes):
                continue
            for override in self.overrides:
                if _matches(params, override["where"]):
                    params.update(override["set"])
            kind = params.pop("kind", "experiment")
            _validate_cell(kind, params)
            cell = Cell.make(kind, params)
            if cell.cell_id in seen:
                raise SpecError(
                    f"duplicate cell {cell.label!r} (same resolved config "
                    f"as {seen[cell.cell_id]!r}); overrides collapsed two "
                    "grid points")
            seen[cell.cell_id] = cell.label
            cells.append(cell)
        if not cells:
            raise SpecError("grid expands to zero cells (everything "
                            "excluded?)")
        return cells

    # -- identity ---------------------------------------------------------
    def grid_sha(self) -> str:
        """Content hash of the resolved cell list: the campaign's identity.

        Anything that changes any cell's resolved config changes this —
        used to refuse resuming a store created from a different grid.
        """
        payload = canonical_json([c.config() for c in self.cells()])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready form stored in the campaign directory, sufficient to
        run status/report/resume without the original spec file."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "source": self.source,
            "grid_sha": self.grid_sha(),
            "trace_format_version": PACKED_FORMAT_VERSION,
            "fidelity": [dict(f) for f in self.fidelity],
            "cells": [
                {"cell_id": c.cell_id, "label": c.label,
                 "kind": c.kind, "params": dict(c.params)}
                for c in self.cells()
            ],
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a runnable spec from a store snapshot.

        The grid comes back as one explicit axis (the stored cell list),
        so resolved configs — and therefore cell ids — are preserved
        exactly.
        """
        cells = snap.get("cells", [])
        if not cells:
            raise SpecError("store snapshot holds no cells")
        return cls(
            name=snap.get("name", "campaign"),
            description=snap.get("description", ""),
            fidelity=[dict(f) for f in snap.get("fidelity", [])],
            source=snap.get("source"),
            explicit_cells=[
                {"kind": c["kind"], "params": dict(c["params"])}
                for c in cells],
        )

    def apply_sets(self, sets: Dict[str, Any]) -> None:
        """Apply command-line ``--set key=value`` overrides to every cell
        (an override with an empty ``where``)."""
        if not sets:
            return
        if self.explicit_cells is not None:
            for cell in self.explicit_cells:
                cell["params"].update(sets)
        else:
            self.overrides.append({"where": {}, "set": dict(sets)})
        self.cells()  # re-validate


def _validate_cell(kind: str, params: Dict[str, Any]) -> None:
    if kind not in CELL_KINDS:
        raise SpecError(f"unknown cell kind {kind!r}; choose from "
                        f"{CELL_KINDS}")
    if kind == "experiment":
        from ..harness.experiments import EXPERIMENTS

        name = params.get("experiment")
        if name not in EXPERIMENTS:
            raise SpecError(f"unknown experiment {name!r}; choose from "
                            f"{sorted(EXPERIMENTS)}")
        if "benchmarks" in params:
            _validate_benchmarks(params["benchmarks"])
        return
    # predict cells
    predictor = params.get("predictor")
    if predictor not in PREDICT_PREDICTORS:
        raise SpecError(f"unknown predictor {predictor!r}; choose from "
                        f"{sorted(PREDICT_PREDICTORS)}")
    _validate_benchmarks([params.get("bench")])
    allowed = set(PREDICT_COMMON_KEYS) | set(PREDICT_PREDICTORS[predictor])
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise SpecError(f"predict[{predictor}] does not accept "
                        f"{unknown}; allowed: {sorted(allowed)}")


def _validate_benchmarks(names: Sequence[Any]) -> None:
    # Any resolvable workload is a valid campaign axis: the synthetic
    # suite, the adversarial bank, and imported traces.
    from ..trace.workloads import is_known, known_names

    bad = [n for n in names if not is_known(n)]
    if bad:
        raise SpecError(f"unknown workload(s) {bad}; choose from "
                        f"{known_names()}")
