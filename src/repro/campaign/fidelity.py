"""Paper-fidelity gate: compare stored headline numbers against targets.

A spec's ``[[fidelity]]`` entries declare where a headline number lives
and what it should be::

    [[fidelity]]
    label = "fig8 gdiff8 average"        # human name for the check
    where = { experiment = "fig8" }      # subset-match on cell params
    row = "average"                      # experiment cells: table cell
    column = "gdiff8"
    target = 0.674
    tol = 0.05                           # |actual - target| <= tol

    [[fidelity]]
    label = "gcc gdiff raw accuracy"
    where = { predictor = "gdiff", bench = "gcc" }
    metric = "raw_accuracy"              # predict cells: stats field
    target = 0.678
    tol = 0.05

The gate runs entirely from the store — no recomputation — so ``repro
campaign report --check`` is cheap enough for CI, where a drifting
headline number (a regression in a predictor, a workload spec change)
fails the build instead of silently shipping a worse reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .spec import CampaignSpec, _matches
from .store import CampaignStore


@dataclass
class FidelityCheck:
    """Outcome of one declared target."""

    label: str
    target: float
    tol: float
    actual: Optional[float] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (self.actual is not None and self.error is None
                and abs(self.actual - self.target) <= self.tol)

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        if self.actual is None:
            detail = self.error or "no matching completed cell"
            return f"  {mark}  {self.label}: {detail}"
        return (f"  {mark}  {self.label}: actual {self.actual:.4f} vs "
                f"target {self.target:.4f} ± {self.tol:.4f}")


def _extract(target: Dict[str, Any],
             record: Dict[str, Any]) -> Optional[float]:
    """Pull the declared value out of one completed cell record."""
    result = record.get("result", {})
    if "row" in target and "column" in target:
        table = result.get("experiment")
        if table is None:
            return None
        columns = table.get("columns", [])
        if target["column"] not in columns:
            return None
        col = columns.index(target["column"])
        for row in table.get("rows", []):
            if row[0] == target["row"]:
                return float(row[col])
        return None
    metric = target.get("metric", "raw_accuracy")
    stats = result.get("stats")
    if stats is None:
        return None
    predictor = target.get("where", {}).get("predictor")
    if predictor is None and len(stats) == 1:
        predictor = next(iter(stats))
    entry = stats.get(predictor, {})
    value = entry.get(metric)
    return float(value) if value is not None else None


def check_fidelity(spec: CampaignSpec,
                   store: CampaignStore) -> List[FidelityCheck]:
    """Evaluate every declared target against the store's completed cells.

    A target with no completed matching cell — or whose row/column/metric
    does not exist in the matching record — fails (a gate that cannot
    find its number must not pass vacuously).
    """
    checks: List[FidelityCheck] = []
    cells = spec.cells()
    for target in spec.fidelity:
        check = FidelityCheck(
            label=str(target.get("label")
                      or f"target on {target.get('where', {})}"),
            target=float(target["target"]),
            tol=float(target.get("tol", 0.0)),
        )
        where = target.get("where", {})
        matching = [c for c in cells if _matches(c.params, where)]
        if not matching:
            check.error = "no cell in the grid matches 'where'"
        else:
            done = [c for c in matching if store.is_done(c.cell_id)]
            if not done:
                check.error = "matching cell(s) not completed yet"
            elif len(done) > 1:
                check.error = (f"'where' is ambiguous: matches "
                               f"{len(done)} completed cells")
            else:
                value = _extract(target, store.load_cell(done[0].cell_id))
                if value is None:
                    check.error = ("declared row/column/metric not found "
                                   "in the cell record")
                else:
                    check.actual = value
        checks.append(check)
    return checks


def render_checks(checks: List[FidelityCheck]) -> str:
    lines = [f"fidelity gate: {sum(c.ok for c in checks)}/{len(checks)} "
             "targets within tolerance"]
    lines += [c.render() for c in checks]
    return "\n".join(lines)
