"""Status and report rendering for campaign stores.

Everything here reads the store alone — the snapshot in ``campaign.json``
carries the resolved cells, so ``repro campaign status|report`` work on a
bare directory with no spec file and no recomputation.  Experiment cells
re-render through the same :class:`~repro.harness.report.ExperimentResult`
path the live harness uses, so a campaign report of ``fig8`` is
byte-identical to what ``repro run-all`` printed when the cells ran.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..harness.report import ExperimentResult
from .spec import Cell, CampaignSpec
from .store import STATUS_DONE, STATUS_QUARANTINED, CampaignStore


def status_lines(spec: CampaignSpec, store: CampaignStore) -> List[str]:
    """Per-cell one-liners plus a totals header."""
    cells = spec.cells()
    counts = {"done": 0, "quarantined": 0, "pending": 0}
    rows: List[Tuple[str, str, str]] = []
    for cell in cells:
        status = store.status(cell.cell_id)
        counts[status] = counts.get(status, 0) + 1
        detail = ""
        summary = store.summary(cell.cell_id)
        if summary is not None:
            if status == STATUS_DONE and summary.get("duration_s"):
                detail = f"{summary['duration_s']:.2f}s"
            elif status == STATUS_QUARANTINED:
                detail = summary.get("error", "")
        rows.append((cell.label, status, detail))
    width = max(len(label) for label, _s, _d in rows)
    lines = [
        f"campaign {spec.name}: {len(cells)} cells — "
        f"{counts['done']} done, {counts['pending']} pending, "
        f"{counts['quarantined']} quarantined",
    ]
    for label, status, detail in rows:
        line = f"  {label.ljust(width)}  {status}"
        if detail:
            line += f"  {detail}"
        lines.append(line)
    return lines


def _predict_table(cells_with_records: List[Tuple[Cell, Dict[str, Any]]],
                   name: str) -> ExperimentResult:
    """Fold completed ``predict`` cells into one sweep table."""
    axes = sorted({k for cell, _r in cells_with_records
                   for k in cell.params})
    gated = any(cell.params.get("gated") for cell, _r in cells_with_records)
    columns = ["cell", "raw_acc"] + (["accuracy", "coverage"] if gated
                                     else [])
    result = ExperimentResult(
        name=name,
        title="campaign predictor sweep",
        columns=columns,
        kinds={c: "rate" for c in columns[1:]},
        notes=[f"axes: {', '.join(axes)}"],
    )
    for cell, record in cells_with_records:
        stats = record["result"]["stats"][cell.params["predictor"]]
        row = [stats["raw_accuracy"]]
        if gated:
            row += [stats["accuracy"], stats["coverage"]]
        result.add_row(cell.label, *row)
    return result


def report_tables(spec: CampaignSpec,
                  store: CampaignStore) -> List[ExperimentResult]:
    """Rebuild every renderable table from the store's completed cells.

    One table per completed experiment cell (the stored
    ``ExperimentResult`` verbatim), plus one aggregated sweep table for
    all completed ``predict`` cells.
    """
    tables: List[ExperimentResult] = []
    predict_cells: List[Tuple[Cell, Dict[str, Any]]] = []
    for cell in spec.cells():
        if not store.is_done(cell.cell_id):
            continue
        record = store.load_cell(cell.cell_id)
        if cell.kind == "experiment":
            tables.append(
                ExperimentResult.from_dict(record["result"]["experiment"]))
        else:
            predict_cells.append((cell, record))
    if predict_cells:
        tables.append(_predict_table(predict_cells,
                                     f"{spec.name}-predict"))
    return tables


def render_report(spec: CampaignSpec, store: CampaignStore) -> str:
    """The full human-readable report: status, tables, quarantine notes."""
    sections = ["\n".join(status_lines(spec, store))]
    sections += [table.render() for table in report_tables(spec, store)]
    quarantined = [c for c in spec.cells()
                   if store.status(c.cell_id) == STATUS_QUARANTINED]
    if quarantined:
        lines = ["quarantined cells (excluded from the tables above):"]
        for cell in quarantined:
            record = store.load_quarantine(cell.cell_id)
            lines.append(f"  {cell.label}: {record.get('error', '?')} "
                         f"after {record.get('attempts', '?')} attempt(s)")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
