"""Status and report rendering for campaign stores.

Everything here reads the store alone — the snapshot in ``campaign.json``
carries the resolved cells, so ``repro campaign status|report`` work on a
bare directory with no spec file and no recomputation.  Experiment cells
re-render through the same :class:`~repro.harness.report.ExperimentResult`
path the live harness uses, so a campaign report of ``fig8`` is
byte-identical to what ``repro run-all`` printed when the cells ran.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..harness.report import ExperimentResult
from .spec import Cell, CampaignSpec
from .store import STATUS_DONE, STATUS_QUARANTINED, CampaignStore


def status_lines(spec: CampaignSpec, store: CampaignStore) -> List[str]:
    """Per-cell one-liners plus a totals header.

    Completed cells show wall time (and events/s when the stored
    telemetry has it); quarantined cells show the error *and* the
    outermost traceback frame, so the status view names where a poisoned
    configuration broke without opening its record.
    """
    cells = spec.cells()
    counts = {"done": 0, "quarantined": 0, "pending": 0}
    rows: List[Tuple[str, str, str]] = []
    quarantine_frames: List[Tuple[str, str]] = []
    for cell in cells:
        status = store.status(cell.cell_id)
        counts[status] = counts.get(status, 0) + 1
        detail = ""
        summary = store.summary(cell.cell_id)
        if summary is not None:
            if status == STATUS_DONE and summary.get("duration_s"):
                detail = f"{summary['duration_s']:.2f}s"
                rate = (summary.get("telemetry") or {}).get("events_per_s")
                if rate:
                    detail += f"  {rate:,.0f} ev/s"
            elif status == STATUS_QUARANTINED:
                detail = summary.get("error", "")
                frame = summary.get("traceback_frame", "")
                if frame:
                    quarantine_frames.append((cell.label, frame))
        rows.append((cell.label, status, detail))
    width = max(len(label) for label, _s, _d in rows)
    lines = [
        f"campaign {spec.name}: {len(cells)} cells — "
        f"{counts['done']} done, {counts['pending']} pending, "
        f"{counts['quarantined']} quarantined",
    ]
    for label, status, detail in rows:
        line = f"  {label.ljust(width)}  {status}"
        if detail:
            line += f"  {detail}"
        lines.append(line)
    for label, frame in quarantine_frames:
        lines.append(f"  ! {label}: {frame}")
    return lines


def watch_lines(spec: CampaignSpec, store: CampaignStore) -> List[str]:
    """One refresh frame of ``campaign status --watch``.

    Rendered purely from the store index: completion bar, aggregate
    throughput over completed cells, and an ETA that scales the mean
    completed-cell wall time by what is still pending (a serial-time
    estimate — an N-worker pool divides it by roughly N).
    """
    cells = spec.cells()
    done: List[Dict[str, Any]] = []
    quarantined = 0
    pending = 0
    for cell in cells:
        status = store.status(cell.cell_id)
        if status == STATUS_DONE:
            done.append(store.summary(cell.cell_id) or {})
        elif status == STATUS_QUARANTINED:
            quarantined += 1
        else:
            pending += 1
    total = len(cells)
    frac = (len(done) + quarantined) / total if total else 1.0
    bar = "#" * int(round(frac * 30))
    lines = [
        f"campaign {spec.name}  [{bar.ljust(30)}] "
        f"{len(done) + quarantined}/{total}",
        f"  done {len(done)}  running/pending {pending}  "
        f"quarantined {quarantined}",
    ]
    durations = [s.get("duration_s") for s in done
                 if s.get("duration_s")]
    events = sum((s.get("telemetry") or {}).get("events", 0) for s in done)
    if durations:
        mean = sum(durations) / len(durations)
        lines.append(f"  mean cell {mean:.2f}s"
                     + (f"  throughput {events / sum(durations):,.0f} ev/s"
                        if events else ""))
        if pending:
            lines.append(f"  eta ~{mean * pending:.0f}s of cell time "
                         f"remaining ({pending} cells, serial estimate)")
    slow = sorted(((s.get("duration_s") or 0.0, s.get("label", ""))
                   for s in done), reverse=True)[:3]
    for duration, label in slow:
        lines.append(f"  slowest: {label}  {duration:.2f}s")
    return lines


def telemetry_lines(spec: CampaignSpec, store: CampaignStore,
                    slowest: int = 5) -> List[str]:
    """The ``report --telemetry`` section, from stored records alone.

    Three views of where campaign time went: the slowest cells with
    throughput, every cell that needed retries or landed in quarantine,
    and the aggregate trace-cache hit rate across all cell executions.
    """
    cells = spec.cells()
    done_rows: List[Tuple[float, str, Dict[str, Any]]] = []
    retry_rows: List[str] = []
    hits = misses = 0
    for cell in cells:
        summary = store.summary(cell.cell_id)
        if summary is None:
            continue
        attempts = summary.get("attempts", 1)
        if summary.get("status") == STATUS_DONE:
            telemetry = summary.get("telemetry") or {}
            done_rows.append((summary.get("duration_s") or 0.0,
                              cell.label, telemetry))
            hits += telemetry.get("cache_hits", 0)
            misses += telemetry.get("cache_misses", 0)
            if attempts > 1:
                retry_rows.append(f"  {cell.label}: completed after "
                                  f"{attempts} attempts")
        else:
            error = summary.get("error", "?")
            frame = summary.get("traceback_frame", "")
            retry_rows.append(
                f"  {cell.label}: QUARANTINED after {attempts} "
                f"attempt(s) — {error}" + (f" [{frame}]" if frame else ""))
    lines = ["campaign telemetry:"]
    if done_rows:
        total_wall = sum(d for d, _l, _t in done_rows)
        lines.append(f"  completed cell wall time: {total_wall:.2f}s "
                     f"across {len(done_rows)} cells")
        lines.append(f"  slowest {min(slowest, len(done_rows))} cells:")
        for duration, label, telemetry in sorted(done_rows,
                                                 reverse=True)[:slowest]:
            rate = telemetry.get("events_per_s")
            cpu = telemetry.get("cpu_s")
            extra = "".join([
                f"  {rate:,.0f} ev/s" if rate else "",
                f"  cpu {cpu:.2f}s" if cpu is not None else "",
            ])
            lines.append(f"    {label}: {duration:.2f}s{extra}")
    if hits or misses:
        lines.append(f"  trace cache: {hits} hits / {misses} misses "
                     f"({hits / (hits + misses):.0%} hit rate)")
    if retry_rows:
        lines.append("  retries and quarantine:")
        lines.extend(["  " + row for row in retry_rows])
    else:
        lines.append("  retries and quarantine: none")
    return lines


def _predict_table(cells_with_records: List[Tuple[Cell, Dict[str, Any]]],
                   name: str) -> ExperimentResult:
    """Fold completed ``predict`` cells into one sweep table."""
    axes = sorted({k for cell, _r in cells_with_records
                   for k in cell.params})
    gated = any(cell.params.get("gated") for cell, _r in cells_with_records)
    columns = ["cell", "raw_acc"] + (["accuracy", "coverage"] if gated
                                     else [])
    result = ExperimentResult(
        name=name,
        title="campaign predictor sweep",
        columns=columns,
        kinds={c: "rate" for c in columns[1:]},
        notes=[f"axes: {', '.join(axes)}"],
    )
    for cell, record in cells_with_records:
        stats = record["result"]["stats"][cell.params["predictor"]]
        row = [stats["raw_accuracy"]]
        if gated:
            row += [stats["accuracy"], stats["coverage"]]
        result.add_row(cell.label, *row)
    return result


def report_tables(spec: CampaignSpec,
                  store: CampaignStore) -> List[ExperimentResult]:
    """Rebuild every renderable table from the store's completed cells.

    One table per completed experiment cell (the stored
    ``ExperimentResult`` verbatim), plus one aggregated sweep table for
    all completed ``predict`` cells.
    """
    tables: List[ExperimentResult] = []
    predict_cells: List[Tuple[Cell, Dict[str, Any]]] = []
    for cell in spec.cells():
        if not store.is_done(cell.cell_id):
            continue
        record = store.load_cell(cell.cell_id)
        if cell.kind == "experiment":
            tables.append(
                ExperimentResult.from_dict(record["result"]["experiment"]))
        else:
            predict_cells.append((cell, record))
    if predict_cells:
        tables.append(_predict_table(predict_cells,
                                     f"{spec.name}-predict"))
    return tables


def render_report(spec: CampaignSpec, store: CampaignStore) -> str:
    """The full human-readable report: status, tables, quarantine notes."""
    sections = ["\n".join(status_lines(spec, store))]
    sections += [table.render() for table in report_tables(spec, store)]
    quarantined = [c for c in spec.cells()
                   if store.status(c.cell_id) == STATUS_QUARANTINED]
    if quarantined:
        lines = ["quarantined cells (excluded from the tables above):"]
        for cell in quarantined:
            record = store.load_quarantine(cell.cell_id)
            lines.append(f"  {cell.label}: {record.get('error', '?')} "
                         f"after {record.get('attempts', '?')} attempt(s)")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
