"""Durable, content-addressed campaign results store.

Layout of one campaign directory::

    <root>/
      campaign.json            # spec snapshot: identity + resolved cells
      index.json               # {cell_id: summary} for O(1) status lookups
      cells/<cell_id>.json     # one completed cell: config, result,
                               #   metrics snapshot, manifest pointer
      quarantine/<cell_id>.json# one poisoned cell: config + traceback
      manifests/<run_id>.json  # deduplicated per-cell run manifests

Every write is atomic (temp file + ``os.replace`` in the same directory),
so a killed campaign never leaves a torn record: a cell either exists
completely or not at all, which is what makes resumption a pure
"skip what exists" walk.  Cell files are keyed by the content hash of
their resolved configuration (:class:`~repro.campaign.spec.Cell`), so the
store never needs to compare configs — identity *is* the address.

The index is a cache: :meth:`CampaignStore.rebuild_index` reconstructs it
from the cell/quarantine files, and opening a store heals a missing or
stale index automatically.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..telemetry import get_logger
from .spec import Cell, CampaignSpec, SpecError

log = get_logger("repro.campaign.store")

#: Schema version of individual cell records.
RECORD_SCHEMA_VERSION = 1

STATUS_DONE = "done"
STATUS_QUARANTINED = "quarantined"
STATUS_PENDING = "pending"


class StoreError(RuntimeError):
    """A campaign directory that cannot be used as asked."""


def _traceback_frame(traceback_text: str) -> str:
    """The first frame line of a formatted traceback (where it broke).

    A formatted traceback opens with the useless "Traceback (most recent
    call last):" banner; the first ``File "..."`` line names the
    outermost broken frame, which is what a status view should show next
    to the exception itself.
    """
    for line in (traceback_text or "").splitlines():
        line = line.strip()
        if line.startswith('File "'):
            return line
    return ""


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Write *payload* as JSON such that readers never see a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False, default=str)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignStore:
    """One campaign directory: snapshot, cell records, index, manifests."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.quarantine_dir = self.root / "quarantine"
        self.manifests_dir = self.root / "manifests"
        self._index: Dict[str, Dict[str, Any]] = {}

    # -- lifecycle --------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        return self.root / "campaign.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def exists(self) -> bool:
        return self.snapshot_path.is_file()

    def create(self, spec: CampaignSpec) -> None:
        """Initialise the directory from a spec (idempotent for the same
        grid; refuses a different one)."""
        if self.exists():
            self.open(spec)
            return
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.snapshot_path, spec.snapshot())
        self._index = {}
        self.rebuild_index()

    def open(self, spec: Optional[CampaignSpec] = None) -> CampaignSpec:
        """Open an existing store; with *spec*, verify it matches the grid
        this store was created from."""
        snap = self.read_snapshot()
        stored = CampaignSpec.from_snapshot(snap)
        if spec is not None and spec.grid_sha() != snap.get("grid_sha"):
            raise StoreError(
                f"{self.root} was created from a different grid "
                f"(stored {snap.get('grid_sha')}, spec {spec.grid_sha()}); "
                "use a fresh --dir or re-run with the original spec")
        self._load_index()
        return stored

    def refresh(self) -> None:
        """Re-read the index from disk.

        Live views (``campaign status --watch``) poll a store that a
        *different* process is writing; rereading the index (with the
        usual self-heal) picks up cells completed since the last frame.
        """
        self._load_index()

    def read_snapshot(self) -> Dict[str, Any]:
        try:
            with open(self.snapshot_path, encoding="utf-8") as fh:
                return json.load(fh)
        except OSError as exc:
            raise StoreError(f"{self.root} is not a campaign directory "
                             f"({exc})")
        except json.JSONDecodeError as exc:
            raise StoreError(f"{self.snapshot_path} is damaged: {exc}")

    # -- index ------------------------------------------------------------
    def _load_index(self) -> None:
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                self._index = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.rebuild_index()
            return
        # Self-heal: an index that disagrees with the files on disk (a
        # crash between a cell write and the index write) is rebuilt.
        on_disk = {p.stem for p in self.cells_dir.glob("*.json")}
        indexed = {cid for cid, e in self._index.items()
                   if e.get("status") == STATUS_DONE}
        if on_disk != indexed:
            self.rebuild_index()

    def rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        """Reconstruct index.json from the cell and quarantine files."""
        index: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.quarantine_dir.glob("*.json")):
            record = self._read_record(path)
            if record is not None:
                index[path.stem] = self._summarise(record,
                                                   STATUS_QUARANTINED)
        for path in sorted(self.cells_dir.glob("*.json")):
            record = self._read_record(path)
            if record is not None:
                index[path.stem] = self._summarise(record, STATUS_DONE)
        self._index = index
        _atomic_write_json(self.index_path, index)
        return index

    @staticmethod
    def _read_record(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            log.warning("ignoring damaged record %s: %s", path, exc)
            return None

    @staticmethod
    def _summarise(record: Dict[str, Any], status: str) -> Dict[str, Any]:
        summary = {
            "status": status,
            "label": record.get("label", ""),
            "attempts": record.get("attempts", 1),
        }
        if status == STATUS_DONE:
            summary["duration_s"] = record.get("duration_s")
            telemetry = record.get("telemetry")
            if telemetry:
                summary["telemetry"] = telemetry
        else:
            summary["error"] = record.get("error", "")
            frame = _traceback_frame(record.get("traceback", ""))
            if frame:
                summary["traceback_frame"] = frame
        return summary

    # -- queries ----------------------------------------------------------
    def status(self, cell_id: str) -> str:
        """O(1): ``done`` / ``quarantined`` / ``pending``."""
        entry = self._index.get(cell_id)
        return entry["status"] if entry else STATUS_PENDING

    def is_done(self, cell_id: str) -> bool:
        return self.status(cell_id) == STATUS_DONE

    def summary(self, cell_id: str) -> Optional[Dict[str, Any]]:
        return self._index.get(cell_id)

    def counts(self) -> Dict[str, int]:
        counts = {STATUS_DONE: 0, STATUS_QUARANTINED: 0}
        for entry in self._index.values():
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return counts

    def cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{cell_id}.json"

    def quarantine_path(self, cell_id: str) -> Path:
        return self.quarantine_dir / f"{cell_id}.json"

    def load_cell(self, cell_id: str) -> Dict[str, Any]:
        record = self._read_record(self.cell_path(cell_id))
        if record is None:
            raise StoreError(f"no completed cell {cell_id} in {self.root}")
        return record

    def load_quarantine(self, cell_id: str) -> Dict[str, Any]:
        record = self._read_record(self.quarantine_path(cell_id))
        if record is None:
            raise StoreError(f"no quarantined cell {cell_id} in "
                             f"{self.root}")
        return record

    def results(self) -> List[Dict[str, Any]]:
        """Every completed cell record, sorted by cell id."""
        return [self.load_cell(cid) for cid in sorted(self._index)
                if self.is_done(cid)]

    # -- writes -----------------------------------------------------------
    def write_result(self, cell: Cell, result: Dict[str, Any],
                     metrics: Optional[Dict[str, Any]] = None,
                     attempts: int = 1,
                     duration_s: Optional[float] = None,
                     manifest: Optional[Dict[str, Any]] = None,
                     telemetry: Optional[Dict[str, Any]] = None) -> Path:
        """Record one completed cell (atomically) and update the index.

        A cell that had been quarantined and now succeeded (e.g. a crash
        that a retry on resume survived) leaves quarantine.
        """
        record = {
            "schema": RECORD_SCHEMA_VERSION,
            "cell_id": cell.cell_id,
            "label": cell.label,
            "config": cell.config(),
            "status": STATUS_DONE,
            "attempts": attempts,
            "duration_s": duration_s,
            "result": result,
        }
        if telemetry is not None:
            record["telemetry"] = telemetry
        if metrics is not None:
            record["metrics"] = metrics
        if manifest is not None:
            record["manifest_run_id"] = self.write_manifest(manifest)
        path = self.cell_path(cell.cell_id)
        _atomic_write_json(path, record)
        try:
            self.quarantine_path(cell.cell_id).unlink()
        except OSError:
            pass
        self._index[cell.cell_id] = self._summarise(record, STATUS_DONE)
        _atomic_write_json(self.index_path, self._index)
        return path

    def write_quarantine(self, cell: Cell, error: str,
                         traceback_text: str = "",
                         attempts: int = 1) -> Path:
        """Record one poisoned cell: the campaign carries on without it."""
        record = {
            "schema": RECORD_SCHEMA_VERSION,
            "cell_id": cell.cell_id,
            "label": cell.label,
            "config": cell.config(),
            "status": STATUS_QUARANTINED,
            "attempts": attempts,
            "error": error,
            "traceback": traceback_text,
        }
        path = self.quarantine_path(cell.cell_id)
        _atomic_write_json(path, record)
        self._index[cell.cell_id] = self._summarise(record,
                                                    STATUS_QUARANTINED)
        _atomic_write_json(self.index_path, self._index)
        return path

    def write_manifest(self, manifest: Dict[str, Any]) -> str:
        """Store a run manifest under its deterministic ``run_id``.

        Manifest run ids are content hashes of the resolved configuration
        (see :class:`~repro.telemetry.RunManifest`), so a resumed cell
        maps to the *same* manifest file and the store deduplicates
        instead of accreting one document per attempt.
        """
        run_id = manifest.get("run_id")
        if not run_id:
            raise StoreError("manifest has no run_id")
        path = self.manifests_dir / f"{run_id}.json"
        if not path.exists():
            _atomic_write_json(path, manifest)
        return run_id
