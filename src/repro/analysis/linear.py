"""Exploring Equation 1: general linear combinations over global history.

Section 2 formalises global computational locality as

    x_N = a_{N-1} x_{N-1} + a_{N-2} x_{N-2} + ... + a_1 x_1 + a_0     (1)

and immediately restricts to the variable-stride special case

    x_N = x_{N-k} + a_0                                               (2)

"due to the mathematical nature of the problem and the hardware
complexity that a general treatment would require."  This module
quantifies what that restriction costs, offline:

* :func:`two_term_predictability` — the next step up from Equation 2:
  for each static instruction, search for a pair of distances (j, k) and
  integer coefficients in a small set such that
  ``x_N = c_j * x_{N-j} + c_k * x_{N-k} + a_0`` repeats.  Differences of
  two history values (c_j=1, c_k=-1) cover copy-with-adjust idioms that
  single-term stride misses.
* :func:`equation1_ceiling` — a least-squares fit of full Equation 1 per
  instruction over a training window, scored on a held-out window (needs
  numpy; exact integer match after rounding).  This is an *oracle-style*
  ceiling, not a hardware proposal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..trace.isa import Instruction
from ..wordops import WORD_MASK, wsub

#: Coefficient pairs searched by the two-term detector: (c_j, c_k).
TWO_TERM_COEFFS: Tuple[Tuple[int, int], ...] = ((1, 1), (1, -1), (2, -1))


def _signed(x: int) -> int:
    x &= WORD_MASK
    return x - (1 << 64) if x >> 63 else x


def two_term_predictability(
    trace: Iterable[Instruction],
    max_distance: int = 8,
) -> Dict[str, float]:
    """Measure one- vs two-term global computational locality.

    For every value-producing occurrence, check (a) Equation 2 — some
    single distance whose difference repeats — and (b) the two-term forms
    ``c_j x_{N-j} + c_k x_{N-k} + a_0`` for the coefficient pairs in
    :data:`TWO_TERM_COEFFS`, again with a repeat-to-confirm rule.

    Returns a dict with the fraction of occurrences predictable by the
    one-term model, by the two-term model, and the marginal gain.
    """
    history: List[int] = []
    # Per-PC: previous residual vectors for each model instance.
    prev_one: Dict[int, List[Optional[int]]] = {}
    prev_two: Dict[int, Dict[Tuple[int, int, int, int], int]] = {}
    one_hits = two_hits = scored = 0

    for insn in trace:
        if not insn.produces_value:
            continue
        value = insn.value
        depth = min(max_distance, len(history))
        window = history[-depth:][::-1]  # distance 1 first

        one = [wsub(value, window[k]) for k in range(depth)]
        one += [None] * (max_distance - depth)

        two: Dict[Tuple[int, int, int, int], int] = {}
        for j in range(depth):
            for k in range(j + 1, depth):
                for cj, ck in TWO_TERM_COEFFS:
                    combo = (cj * window[j] + ck * window[k]) & WORD_MASK
                    two[(j, k, cj, ck)] = wsub(value, combo)

        pc = insn.pc
        if pc in prev_one:
            scored += 1
            if any(a is not None and a == b
                   for a, b in zip(one, prev_one[pc])):
                one_hits += 1
                two_hits += 1
            else:
                previous = prev_two.get(pc, {})
                if any(previous.get(key) == residual
                       for key, residual in two.items()):
                    two_hits += 1
        prev_one[pc] = one
        prev_two[pc] = two
        history.append(value)
        if len(history) > max_distance:
            del history[: len(history) - max_distance]

    if not scored:
        return {"one_term": 0.0, "two_term": 0.0, "gain": 0.0}
    return {
        "one_term": one_hits / scored,
        "two_term": two_hits / scored,
        "gain": (two_hits - one_hits) / scored,
    }


def equation1_ceiling(
    trace: Iterable[Instruction],
    max_distance: int = 8,
    train_fraction: float = 0.5,
    min_occurrences: int = 32,
) -> Dict[str, float]:
    """Least-squares Equation 1 fit per instruction (oracle ceiling).

    For each static instruction with enough occurrences, fit coefficients
    (a_{N-1}..a_1, a_0) on the first ``train_fraction`` of its
    occurrences by least squares over the signed history window, then
    score exact integer matches (after rounding) on the rest.

    Returns {"fit_accuracy": fraction of held-out occurrences matched,
    "covered": fraction of dynamic occurrences belonging to fitted PCs}.
    Requires numpy.
    """
    import numpy as np

    history: List[int] = []
    samples: Dict[int, List[Tuple[List[int], int]]] = {}
    for insn in trace:
        if not insn.produces_value:
            continue
        if len(history) >= max_distance:
            window = [_signed(v) for v in history[-max_distance:]][::-1]
            samples.setdefault(insn.pc, []).append(
                (window, _signed(insn.value)))
        history.append(insn.value)
        if len(history) > max_distance:
            del history[: len(history) - max_distance]

    total = sum(len(v) for v in samples.values())
    hits = tested = covered = 0
    for pc, rows in samples.items():
        if len(rows) < min_occurrences:
            continue
        covered += len(rows)
        split = int(len(rows) * train_fraction)
        train, test = rows[:split], rows[split:]
        if not train or not test:
            continue
        matrix = np.array([w + [1] for w, _ in train], dtype=np.float64)
        target = np.array([y for _, y in train], dtype=np.float64)
        coeffs, *_ = np.linalg.lstsq(matrix, target, rcond=None)
        for window, actual in test:
            prediction = float(np.dot(coeffs, np.array(window + [1.0])))
            tested += 1
            if round(prediction) == actual:
                hits += 1
    return {
        "fit_accuracy": hits / tested if tested else 0.0,
        "covered": covered / total if total else 0.0,
    }
