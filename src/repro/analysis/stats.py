"""Small numeric helpers used by the experiment harness."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; inputs must be positive."""
    items = list(values)
    if not items:
        return 0.0
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def harmonic_mean_speedup(speedups: Sequence[float]) -> float:
    """The paper's "H_mean" bar: harmonic mean over per-benchmark speedups.

    Speedups are expressed as fractions over baseline (0.19 = 19% faster);
    the harmonic mean is computed over the speedup *factors* (1 + s), as is
    conventional for rate-like metrics, and returned as a fraction again.
    """
    if not speedups:
        return 0.0
    factors = [1.0 + s for s in speedups]
    if any(f <= 0 for f in factors):
        raise ValueError("speedup factors must be positive")
    hmean = len(factors) / sum(1.0 / f for f in factors)
    return hmean - 1.0
