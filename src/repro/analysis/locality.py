"""Detecting global stride locality in value streams (offline analyses).

These tools answer the paper's Section 2 question — *does* a value stream
contain global stride locality, and at what distances — independently of
any particular predictor implementation:

* :func:`global_stride_predictability` measures, per static instruction,
  how often its value is expressible as ``x_{N-k} + a`` for a *stable*
  (k, a) discovered on earlier occurrences — the idealised ceiling an
  order-n gDiff could reach.
* :func:`correlation_distance_profile` extracts the distribution of
  selected distances from a trained gDiff predictor — the analysis the
  paper delegates to its companion thesis [2].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.gdiff import GDiffPredictor
from ..trace.isa import Instruction
from ..wordops import wsub


@dataclass
class CorrelationProfile:
    """Result of a global-stride locality analysis."""

    #: Per-PC: (best distance, hit rate at that distance, occurrences).
    per_pc: Dict[int, Tuple[int, float, int]] = field(default_factory=dict)
    #: Aggregate histogram of best distances, weighted by occurrences.
    distance_histogram: Dict[int, int] = field(default_factory=dict)
    #: Fraction of all occurrences predictable at their PC's best distance.
    overall: float = 0.0

    def covered(self, max_distance: int) -> float:
        """Fraction of correlated occurrences within *max_distance*.

        The paper's queue-size question: how much of the locality would a
        GVQ of this depth capture?
        """
        total = sum(self.distance_histogram.values())
        if not total:
            return 0.0
        near = sum(n for d, n in self.distance_histogram.items()
                   if d <= max_distance)
        return near / total


def global_stride_predictability(
    trace: Iterable[Instruction],
    max_distance: int = 32,
) -> CorrelationProfile:
    """Measure stride locality in the global value history of *trace*.

    For every value-producing instruction occurrence, the difference
    between its value and each of the ``max_distance`` preceding values is
    computed; an occurrence counts as *globally stride predictable at
    distance k* when the distance-k difference equals the distance-k
    difference observed at the instruction's previous occurrence (the same
    repeat-to-confirm criterion the gDiff table uses).  Each PC is scored
    at its single best distance, mirroring the hardware's one selected
    distance per entry.
    """
    history: List[int] = []
    # Per-PC: previous occurrence's difference vector.
    prev_diffs: Dict[int, List[Optional[int]]] = {}
    # Per-PC: hit counts per distance, total scored occurrences.
    hits: Dict[int, List[int]] = {}
    totals: Dict[int, int] = {}

    for insn in trace:
        if not insn.produces_value:
            continue
        value = insn.value
        depth = min(max_distance, len(history))
        diffs: List[Optional[int]] = [
            wsub(value, history[-k]) for k in range(1, depth + 1)
        ]
        diffs.extend([None] * (max_distance - depth))
        pc = insn.pc
        previous = prev_diffs.get(pc)
        if previous is not None:
            counters = hits.setdefault(pc, [0] * max_distance)
            totals[pc] = totals.get(pc, 0) + 1
            for k in range(max_distance):
                if diffs[k] is not None and diffs[k] == previous[k]:
                    counters[k] += 1
        prev_diffs[pc] = diffs
        history.append(value)
        if len(history) > max_distance:
            del history[: len(history) - max_distance]

    profile = CorrelationProfile()
    predictable = 0
    scored = 0
    for pc, counters in hits.items():
        total = totals[pc]
        best_distance = max(range(max_distance), key=lambda k: counters[k])
        best_hits = counters[best_distance]
        profile.per_pc[pc] = (best_distance + 1, best_hits / total, total)
        hist = profile.distance_histogram
        hist[best_distance + 1] = hist.get(best_distance + 1, 0) + best_hits
        predictable += best_hits
        scored += total
    profile.overall = predictable / scored if scored else 0.0
    return profile


def correlation_distance_profile(
    trace: Iterable[Instruction],
    order: int = 32,
) -> Dict[int, int]:
    """Train a gDiff predictor on *trace* and histogram locked distances.

    Returns {distance: number of table entries locked at that distance}.
    This is the dynamic counterpart of
    :func:`global_stride_predictability` — what the hardware actually
    locks onto, including the effects of its update policy.
    """
    predictor = GDiffPredictor(order=order, entries=None)
    for insn in trace:
        if insn.produces_value:
            predictor.update(insn.pc, insn.value)
    histogram: Dict[int, int] = {}
    for distance in predictor.locked_distances().values():
        histogram[distance] = histogram.get(distance, 0) + 1
    return histogram
