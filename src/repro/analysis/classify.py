"""Per-instruction local value-stream classification.

Given a local value history (the sequence one static instruction
produced), decide which of the paper's locality classes it belongs to:
constant, stride, periodic (context), or unpredictable.  Used by the test
suite to validate that each synthetic kernel produces the locality class
it advertises, and available to users profiling their own traces.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence

from ..trace.isa import Instruction
from ..wordops import wsub


class StreamClass(enum.Enum):
    """Local value-stream classes (Section 2's taxonomy)."""

    CONSTANT = "constant"
    STRIDE = "stride"
    PERIODIC = "periodic"
    RANDOM = "random"
    #: Not enough occurrences to say.
    UNKNOWN = "unknown"


def classify_stream(
    values: Sequence[int],
    max_period: int = 16,
    tolerance: float = 0.9,
) -> StreamClass:
    """Classify one local value history.

    Args:
        values: the sequence of produced values, oldest first.
        max_period: longest repetition period checked for the periodic
            class.
        tolerance: fraction of positions that must conform for a class to
            be assigned (real streams have warm-up irregularities).
    """
    n = len(values)
    if n < 4:
        return StreamClass.UNKNOWN

    constant_hits = sum(
        1 for i in range(1, n) if values[i] == values[i - 1]
    )
    if constant_hits >= tolerance * (n - 1):
        return StreamClass.CONSTANT

    deltas = [wsub(values[i], values[i - 1]) for i in range(1, n)]
    stride_hits = sum(
        1 for i in range(1, len(deltas)) if deltas[i] == deltas[i - 1]
    )
    if stride_hits >= tolerance * (len(deltas) - 1):
        return StreamClass.STRIDE

    for period in range(2, min(max_period, n // 2) + 1):
        hits = sum(
            1 for i in range(period, n) if values[i] == values[i - period]
        )
        if hits >= tolerance * (n - period):
            return StreamClass.PERIODIC

    return StreamClass.RANDOM


def classify_trace(
    trace: Iterable[Instruction],
    min_occurrences: int = 8,
) -> Dict[StreamClass, float]:
    """Classify every static instruction in a trace.

    Returns the fraction of *dynamic* value-producing instructions whose
    static instruction falls in each class — the trace's locality mix.
    """
    histories: Dict[int, List[int]] = {}
    for insn in trace:
        if insn.produces_value:
            histories.setdefault(insn.pc, []).append(insn.value)
    weights: Dict[StreamClass, int] = {cls: 0 for cls in StreamClass}
    total = 0
    for values in histories.values():
        if len(values) < min_occurrences:
            cls = StreamClass.UNKNOWN
        else:
            cls = classify_stream(values)
        weights[cls] += len(values)
        total += len(values)
    if not total:
        return {cls: 0.0 for cls in StreamClass}
    return {cls: count / total for cls, count in weights.items()}
