"""Offline value-stream analysis tools.

* :mod:`repro.analysis.locality` — detect global stride locality in a
  value stream and profile correlation distances (the Section 2/3
  analyses; the companion of the paper's reference [2]).
* :mod:`repro.analysis.classify` — classify per-instruction local value
  streams (constant / stride / periodic / random), used to validate that
  synthetic workloads have the locality mix they claim.
* :mod:`repro.analysis.stats` — small numeric helpers (means, harmonic
  mean for speedups).
"""

from .classify import StreamClass, classify_stream, classify_trace
from .linear import equation1_ceiling, two_term_predictability
from .locality import (
    CorrelationProfile,
    correlation_distance_profile,
    global_stride_predictability,
)
from .stats import geometric_mean, harmonic_mean_speedup, mean

__all__ = [
    "classify_stream",
    "classify_trace",
    "StreamClass",
    "correlation_distance_profile",
    "global_stride_predictability",
    "CorrelationProfile",
    "mean",
    "geometric_mean",
    "harmonic_mean_speedup",
    "two_term_predictability",
    "equation1_ceiling",
]
