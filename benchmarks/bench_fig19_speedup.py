"""Figure 19 — speedup from value speculation with selective reissue.

Paper: gDiff(HGVQ) averages a 19.2% speedup (53% on mcf, 17% over the
local-stride machine there); local stride averages ~15%; the local
context predictor trails on its low coverage.  Our synthetic baseline has
more ILP slack than real SPEC binaries, so absolute speedups are smaller
outside the memory-bound mcf (see EXPERIMENTS.md); the ordering and the
mcf crossover are the asserted shape.
"""

from repro.harness import run_experiment


def bench_fig19(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig19", length=40_000),
        rounds=1, iterations=1,
    )
    archive(result)

    hgvq = result.cell("H_mean", "gdiff_hgvq")
    stride = result.cell("H_mean", "local_stride")
    context = result.cell("H_mean", "local_context")
    # Ordering: gDiff > local stride > local context.
    assert hgvq > stride > context
    assert hgvq > 0.03
    # mcf dominates: the largest speedup for both, gDiff ahead.
    mcf_hgvq = result.cell("mcf", "gdiff_hgvq")
    mcf_stride = result.cell("mcf", "local_stride")
    assert mcf_hgvq > 0.2
    assert mcf_hgvq > mcf_stride
    # No benchmark is pathologically slowed down by speculation.
    for row in result.rows[:-1]:
        assert row[2] > -0.05 and row[4] > -0.05
