"""Shared infrastructure for the per-figure benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures,
asserts the headline *shape* (who wins, roughly by how much, where
crossovers fall), and archives the rendered table under
``benchmarks/results/`` so the regenerated evaluation is inspectable after
a run.

The session also emits a consolidated ``BENCH_metrics.json`` at the repo
root (per-bench wall times and outcomes plus the names of every archived
table, stamped with the git sha and a UTC timestamp) and appends one
record per session to ``benchmarks/results/history.jsonl`` — the
machine-readable perf trajectory that ``repro bench history|check``
renders and regression-gates (docs/OBSERVABILITY.md).
"""

import cProfile
import json
import pathlib
import pstats
import sys
from datetime import datetime, timezone

import pytest

from repro.bench.history import append_record, make_record
from repro.telemetry import get_logger, git_revision

log = get_logger("repro.benchmarks")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent
METRICS_PATH = REPO_ROOT / "BENCH_metrics.json"
HISTORY_PATH = RESULTS_DIR / "history.jsonl"

#: Session-wide accumulator for the consolidated metrics document.
_session_records = {"benches": {}, "archived": [], "metrics": {}}


def pytest_addoption(parser):
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="run each bench under cProfile and print the top-20 "
             "cumulative entries to stderr")


@pytest.fixture(autouse=True)
def _profile_bench(request, monkeypatch, capsys):
    """With ``--profile``, wrap the bench body in cProfile.

    Prints the top-20 cumulative entries to stderr per bench, so perf
    work starts from a measured hot-path breakdown rather than a guess.
    The ``benchmark.pedantic`` recording call runs outside the profiler:
    pytest-benchmark pauses sys.setprofile-based instrumentation itself,
    which does not compose with an active cProfile session.
    """
    if not request.config.getoption("--profile"):
        yield
        return
    profiler = cProfile.Profile()

    from pytest_benchmark.fixture import BenchmarkFixture

    recorded_pedantic = BenchmarkFixture.pedantic

    def unprofiled_pedantic(self, *args, **kwargs):
        profiler.disable()
        try:
            return recorded_pedantic(self, *args, **kwargs)
        finally:
            profiler.enable()

    monkeypatch.setattr(BenchmarkFixture, "pedantic", unprofiled_pedantic)
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        with capsys.disabled():
            print(f"\n--- cProfile ({request.node.nodeid}): "
                  "top 20 by cumulative time ---", file=sys.stderr)
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            stats.print_stats(20)


@pytest.fixture(autouse=True)
def _isolated_trace_cache(tmp_path_factory, monkeypatch):
    """Point the trace cache at a session-private directory.

    Shared across the whole bench session (so warm-cache benches and
    repeated figures reuse entries) but never the developer's real cache.
    """
    cache_dir = tmp_path_factory.getbasetemp() / "trace-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    return cache_dir


@pytest.fixture
def record_metrics():
    """Return a callable that stores named measurements for
    ``BENCH_metrics.json`` (``record("section", key=value, ...)``)."""

    def _record(section, **values):
        _session_records["metrics"].setdefault(section, {}).update(
            {k: (round(v, 4) if isinstance(v, float) else v)
             for k, v in values.items()})

    return _record


@pytest.fixture
def archive():
    """Return a callable that saves a rendered experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(result):
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.render() + "\n")
        log.info("archived %s -> %s", result.name, path)
        _session_records["archived"].append(result.name)
        print()
        print(result.render())
        return result

    return _archive


def pytest_runtest_logreport(report):
    """Collect per-bench wall time and outcome for BENCH_metrics.json."""
    if report.when != "call":
        return
    _session_records["benches"][report.nodeid] = {
        "outcome": report.outcome,
        "duration_s": round(report.duration, 4),
    }


def _load_previous_metrics(path):
    """Return the previous BENCH_metrics.json payload, or an empty shell.

    A corrupt or missing document degrades to a fresh one rather than
    failing the whole bench session at report time.
    """
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return previous if isinstance(previous, dict) else {}


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's results into BENCH_metrics.json.

    Partial runs (``pytest benchmarks/bench_fig08...``) are the common
    case, so the document is merged rather than rewritten: benches and
    metric sections recorded this session replace their previous entries,
    everything else survives.  ``exit_status``/``generated_at`` always
    describe the latest session; ``total_wall_s`` sums the merged benches.
    """
    benches = _session_records["benches"]
    if not benches:
        return
    generated_at = datetime.now(timezone.utc).isoformat()
    git_sha = git_revision(cwd=str(REPO_ROOT))
    previous = _load_previous_metrics(METRICS_PATH)
    merged_benches = dict(previous.get("benches") or {})
    merged_benches.update(benches)
    merged_archived = set(previous.get("archived") or [])
    merged_archived.update(_session_records["archived"])
    merged_metrics = {k: dict(v) for k, v in
                      (previous.get("metrics") or {}).items()}
    for section, values in _session_records["metrics"].items():
        merged_metrics.setdefault(section, {}).update(values)
    payload = {
        "schema": 1,
        "generated_at": generated_at,
        "git_sha": git_sha,
        "exit_status": int(exitstatus),
        "total_wall_s": round(sum(b["duration_s"]
                                  for b in merged_benches.values()), 4),
        "benches": dict(sorted(merged_benches.items())),
        "archived": sorted(merged_archived),
        "metrics": {k: dict(sorted(v.items()))
                    for k, v in sorted(merged_metrics.items())},
    }
    METRICS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    log.info("merged %s (%d benches this session, %d total)",
             METRICS_PATH, len(benches), len(merged_benches))
    # The history record carries *this session's* measurements only (the
    # merged document above is a union across partial runs, which would
    # let stale durations shadow fresh ones in the trajectory).
    record = make_record(
        benches={nodeid: body["duration_s"]
                 for nodeid, body in benches.items()
                 if body.get("outcome") == "passed"},
        metrics=_session_records["metrics"],
        git_sha=git_sha,
        generated_at=generated_at,
        exit_status=int(exitstatus),
    )
    try:
        append_record(record, HISTORY_PATH)
        log.info("appended bench-history record to %s", HISTORY_PATH)
    except OSError as exc:  # history must never fail the bench session
        log.warning("could not append bench history: %s", exc)
