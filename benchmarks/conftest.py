"""Shared infrastructure for the per-figure benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures,
asserts the headline *shape* (who wins, roughly by how much, where
crossovers fall), and archives the rendered table under
``benchmarks/results/`` so the regenerated evaluation is inspectable after
a run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Return a callable that saves a rendered experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(result):
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.render() + "\n")
        print()
        print(result.render())
        return result

    return _archive
