"""Shared infrastructure for the per-figure benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures,
asserts the headline *shape* (who wins, roughly by how much, where
crossovers fall), and archives the rendered table under
``benchmarks/results/`` so the regenerated evaluation is inspectable after
a run.

The session also emits a consolidated ``BENCH_metrics.json`` at the repo
root: per-bench wall times and outcomes plus the names of every archived
table — the machine-readable perf trajectory of the benchmark suite.
"""

import json
import pathlib
from datetime import datetime, timezone

import pytest

from repro.telemetry import get_logger

log = get_logger("repro.benchmarks")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent
METRICS_PATH = REPO_ROOT / "BENCH_metrics.json"

#: Session-wide accumulator for the consolidated metrics document.
_session_records = {"benches": {}, "archived": [], "metrics": {}}


@pytest.fixture(autouse=True)
def _isolated_trace_cache(tmp_path_factory, monkeypatch):
    """Point the trace cache at a session-private directory.

    Shared across the whole bench session (so warm-cache benches and
    repeated figures reuse entries) but never the developer's real cache.
    """
    cache_dir = tmp_path_factory.getbasetemp() / "trace-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    return cache_dir


@pytest.fixture
def record_metrics():
    """Return a callable that stores named measurements for
    ``BENCH_metrics.json`` (``record("section", key=value, ...)``)."""

    def _record(section, **values):
        _session_records["metrics"].setdefault(section, {}).update(
            {k: (round(v, 4) if isinstance(v, float) else v)
             for k, v in values.items()})

    return _record


@pytest.fixture
def archive():
    """Return a callable that saves a rendered experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(result):
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.render() + "\n")
        log.info("archived %s -> %s", result.name, path)
        _session_records["archived"].append(result.name)
        print()
        print(result.render())
        return result

    return _archive


def pytest_runtest_logreport(report):
    """Collect per-bench wall time and outcome for BENCH_metrics.json."""
    if report.when != "call":
        return
    _session_records["benches"][report.nodeid] = {
        "outcome": report.outcome,
        "duration_s": round(report.duration, 4),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write the consolidated benchmark-metrics document."""
    benches = _session_records["benches"]
    if not benches:
        return
    payload = {
        "schema": 1,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "exit_status": int(exitstatus),
        "total_wall_s": round(sum(b["duration_s"] for b in benches.values()), 4),
        "benches": dict(sorted(benches.items())),
        "archived": sorted(set(_session_records["archived"])),
        "metrics": {k: dict(sorted(v.items()))
                    for k, v in sorted(_session_records["metrics"].items())},
    }
    METRICS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    log.info("wrote %s (%d benches)", METRICS_PATH, len(benches))
