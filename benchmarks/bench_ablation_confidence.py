"""Ablation — confidence-counter policy.

The paper adopts the +2/−1, 3-bit, threshold-4 policy from [28, 30].
This bench sweeps alternatives on the HGVQ predictor in the pipeline and
verifies the expected accuracy/coverage trade-off: stricter gating buys
accuracy with coverage, looser gating the reverse.
"""

from repro.analysis.stats import mean
from repro.harness.experiments import PIPELINE_COPIES
from repro.harness.report import ExperimentResult
from repro.pipeline import HGVQAdapter, OutOfOrderCore
from repro.predictors import ConfidenceTable
from repro.trace.workloads import get

POLICIES = {
    "paper(+2/-1,t4)": dict(bits=3, up=2, down=1, threshold=4),
    "strict(+1/-2,t6)": dict(bits=3, up=1, down=2, threshold=6),
    "loose(+2/-1,t2)": dict(bits=3, up=2, down=1, threshold=2),
    "ungated(t0)": dict(bits=3, up=2, down=1, threshold=0),
}

BENCHES = ["bzip2", "mcf", "parser", "vortex"]


def run_sweep(length=30_000):
    result = ExperimentResult(
        name="ablation_confidence",
        title="HGVQ accuracy/coverage vs confidence policy",
        columns=["policy", "accuracy", "coverage"],
        notes=["paper policy: +2 correct / -1 incorrect, confident >= 4"],
    )
    for name, params in POLICIES.items():
        accs, covs = [], []
        for bench in BENCHES:
            adapter = HGVQAdapter(
                order=32, confidence=ConfidenceTable(**params))
            core = OutOfOrderCore(value_predictor=adapter)
            core.run(get(bench).trace(length, code_copies=PIPELINE_COPIES))
            accs.append(adapter.stats.accuracy)
            covs.append(adapter.stats.coverage)
        result.add_row(name, mean(accs), mean(covs))
    return result


def bench_confidence_policy(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    paper = result.row("paper(+2/-1,t4)")
    strict = result.row("strict(+1/-2,t6)")
    loose = result.row("loose(+2/-1,t2)")
    ungated = result.row("ungated(t0)")
    # Stricter gating: higher accuracy, lower coverage than the paper's.
    assert strict[1] >= paper[1] - 0.01
    assert strict[2] < paper[2]
    # Looser gating: more coverage, less accuracy.
    assert loose[2] > paper[2]
    assert loose[1] <= paper[1] + 0.01
    # No gate at all maximises coverage and minimises accuracy.
    assert ungated[2] >= loose[2]
    assert ungated[1] <= loose[1]
