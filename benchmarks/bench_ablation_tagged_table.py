"""Ablation — tagless vs tagged gDiff prediction tables.

The paper uses a tagless 8K-entry table; tags are the obvious alternative
for mitigating aliasing.  This bench measures both at the table size
where aliasing bites (2K) and at the paper's 8K, across the suite with
paper-scale static code.  The tagless design benefits from constructive
aliasing (instructions that share a slot often share stride structure)
and avoids the cold restarts tags force on every ownership change — the
empirical grounding for the paper's choice.
"""

from repro.analysis.stats import mean
from repro.core import GDiffPredictor
from repro.harness.report import ExperimentResult
from repro.harness.runner import run_value_prediction
from repro.trace.workloads import BENCHMARKS, get

CONFIGS = {
    "2K tagless": dict(entries=2048, tagged=False),
    "2K tagged": dict(entries=2048, tagged=True),
    "8K tagless": dict(entries=8192, tagged=False),
    "8K tagged": dict(entries=8192, tagged=True),
}


def run_sweep(length=60_000, code_copies=8):
    result = ExperimentResult(
        name="ablation_tagged_table",
        title="gDiff(q=8) accuracy: tagless vs tagged tables",
        columns=["bench"] + list(CONFIGS),
        notes=["the paper's tables are tagless; tags evict on aliasing "
               "instead of sharing state"],
    )
    for bench in BENCHMARKS:
        trace = get(bench).trace(length, code_copies=code_copies)
        predictors = {
            name: GDiffPredictor(order=8, **params)
            for name, params in CONFIGS.items()
        }
        stats = run_value_prediction(trace, predictors)
        result.add_row(bench, *(stats[name].raw_accuracy
                                for name in CONFIGS))
    result.add_row("average",
                   *(mean(result.column(name)) for name in CONFIGS))
    return result


def bench_tagged_table(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    tagless_2k = result.cell("average", "2K tagless")
    tagged_2k = result.cell("average", "2K tagged")
    tagless_8k = result.cell("average", "8K tagless")
    tagged_8k = result.cell("average", "8K tagged")
    # More capacity always helps each design.
    assert tagless_8k >= tagless_2k
    assert tagged_8k >= tagged_2k
    # At the paper's 8K size the two designs are close — tags buy little,
    # which is why the cheaper tagless table is the right call.
    assert abs(tagged_8k - tagless_8k) < 0.08
