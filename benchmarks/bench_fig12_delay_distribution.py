"""Figure 12 — the value-delay distribution measured in the OOO pipeline.

Paper (vortex): "in most cases the value delay is not prohibitively large
and the average value delay is approximately 5", the observation that
motivates using speculative values to feed the GVQ.
"""

from repro.harness import run_experiment


def bench_fig12(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig12", length=50_000),
        rounds=1, iterations=1,
    )
    archive(result)

    fractions = {row[0]: row[1] for row in result.rows}
    # A proper distribution.
    assert abs(sum(fractions.values()) - 1.0) < 1e-6
    # Most delays are small (the paper's "not prohibitively large").
    small = sum(fractions[str(d)] for d in range(9))
    assert small > 0.6
    # The mean is in the single digits (paper: ~5).
    mean_note = result.notes[0]
    mean = float(mean_note.split("=")[1].split("(")[0])
    assert 1.0 <= mean <= 10.0
