"""Table 2 — baseline IPC of the Section 7 machine (no value speculation).

The source text of the paper does not preserve Table 2's numbers, so the
assertions here check internal consistency rather than absolute anchors:
a 4-wide machine, IPC bounded by width, and mcf — "highly memory
intensive (L1 D-cache miss rate 44.08%)" — as the most memory-bound
benchmark.
"""

from repro.harness import run_experiment
from repro.trace.workloads import BENCHMARKS


def bench_table2(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", length=40_000),
        rounds=1, iterations=1,
    )
    archive(result)

    for bench in BENCHMARKS:
        ipc = result.cell(bench, "ipc")
        assert 0.2 < ipc <= 4.0
    dmiss = {b: result.cell(b, "dmiss") for b in BENCHMARKS}
    # mcf has by far the highest D-cache miss rate (paper: 44%).
    assert max(dmiss, key=dmiss.get) == "mcf"
    assert dmiss["mcf"] > 0.3
    others = [v for b, v in dmiss.items() if b != "mcf"]
    assert dmiss["mcf"] > 1.5 * max(others)
