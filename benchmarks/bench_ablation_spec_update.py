"""Ablation — speculative predictor update (Section 3.1's mechanism).

The paper observes that value delay "exists for local value predictors ...
except for cases such as tight loop code, which calls for the speculative
update based on the prediction" (citing the branch-history analogue
[10]).  This bench turns the mechanism on and off for the pipeline's
local stride predictor and measures the accuracy/coverage it recovers.
"""

from repro.analysis.stats import mean
from repro.harness.experiments import PIPELINE_COPIES
from repro.harness.report import ExperimentResult
from repro.pipeline import LocalPredictorAdapter, OutOfOrderCore
from repro.predictors import StridePredictor
from repro.trace.workloads import BENCHMARKS, get


def run_sweep(length=30_000):
    result = ExperimentResult(
        name="ablation_spec_update",
        title="local stride: plain vs speculatively-updated (pipeline)",
        columns=["bench", "plain_acc", "plain_cov", "spec_acc", "spec_cov"],
        notes=["Section 3.1: tight-loop code calls for speculative update"],
    )
    for bench in BENCHMARKS:
        row = []
        for spec in (False, True):
            adapter = LocalPredictorAdapter(
                StridePredictor(entries=8192), spec_update=spec)
            core = OutOfOrderCore(value_predictor=adapter)
            core.run(get(bench).trace(length, code_copies=PIPELINE_COPIES))
            row += [adapter.stats.accuracy, adapter.stats.coverage]
        result.add_row(bench, *row)
    result.add_row("average",
                   *(mean(result.column(c)) for c in result.columns[1:]))
    return result


def bench_spec_update(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    plain_cov = result.cell("average", "plain_cov")
    plain_acc = result.cell("average", "plain_acc")
    spec_cov = result.cell("average", "spec_cov")
    spec_acc = result.cell("average", "spec_acc")
    # On the calibrated workloads same-PC gaps are mostly wide enough
    # that staleness is rare; the mechanism must never hurt, and the
    # accuracy gain (stale chains corrected) should be visible.  The
    # dramatic tight-loop case is unit-tested in
    # tests/test_speculative_update.py (0% -> 99% raw accuracy).
    assert spec_cov >= plain_cov - 0.005
    assert spec_acc >= plain_acc - 0.005
    assert spec_acc > 0.75
