"""Figure 10 — gDiff accuracy vs value delay.

Paper: average accuracy drops from 73% at T=0 to 52% at T=16; gap is the
exception whose best accuracy is not at T=0 (its long chains only fit the
queue's visible window once the delay pushes it back).
"""

from repro.harness import run_experiment


def bench_fig10(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", length=80_000),
        rounds=1, iterations=1,
    )
    archive(result)

    t0 = result.cell("average", "T=0")
    t16 = result.cell("average", "T=16")
    # Value delay costs a large accuracy slice.
    assert t16 < t0 - 0.15
    # The ends of the sweep bracket everything else loosely: T=0 is best.
    for column in ("T=2", "T=4", "T=8", "T=16"):
        assert result.cell("average", column) < t0
    # gap's anomaly: its best delay is NOT zero (paper: peak at T=4).
    gap = {c: result.cell("gap", c)
           for c in ("T=0", "T=2", "T=4", "T=8", "T=16")}
    assert max(gap, key=gap.get) != "T=0"
