"""Figure 18 — load-address predictability (all loads and missing loads).

Paper, all loads (18a): gDiff 86% accuracy / 63% coverage beats local
stride (86% / 55%) on coverage at equal accuracy, while the first-order
Markov predictor has high coverage (87%) but poor accuracy (33%).
Missing loads only (18b): gDiff 53%/33% vs local stride 55%/25% vs
Markov 20%/69%.
"""

from repro.harness import run_experiment


def bench_fig18a_all_loads(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig18a", length=80_000),
        rounds=1, iterations=1,
    )
    archive(result)

    gs_acc = result.cell("average", "gs_acc")
    gs_cov = result.cell("average", "gs_cov")
    ls_acc = result.cell("average", "ls_acc")
    ls_cov = result.cell("average", "ls_cov")
    mk_acc = result.cell("average", "markov_acc")
    mk_cov = result.cell("average", "markov_cov")

    # gDiff's coverage advantage at comparable accuracy.
    assert gs_cov > ls_cov
    assert abs(gs_acc - ls_acc) < 0.12
    # Markov: clearly the least accurate, with nontrivial tag-hit
    # coverage.  (The paper's Markov coverage is 87%: real programs
    # revisit addresses far more than synthetic streams can; the
    # accuracy ordering — Markov worst by a wide margin — is the
    # preserved shape.  See EXPERIMENTS.md.)
    assert mk_acc < gs_acc - 0.2
    assert mk_acc < ls_acc - 0.2
    assert mk_cov > 0.10


def bench_fig18b_missing_loads(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig18b", length=80_000),
        rounds=1, iterations=1,
    )
    archive(result)

    gs_cov = result.cell("average", "gs_cov")
    ls_cov = result.cell("average", "ls_cov")
    mk_acc = result.cell("average", "markov_acc")
    gs_acc = result.cell("average", "gs_acc")
    # Misses are harder than hits for everyone; gDiff's coverage stays at
    # least competitive with local stride (paper: 33% vs 25%), and the
    # Markov predictor is by far the least accurate.
    assert gs_cov > ls_cov - 0.02
    assert mk_acc < gs_acc - 0.2
