"""Figure 8 — profile value-prediction accuracy.

Paper: local stride 57%, DFCM 64%, gDiff(q=8) 73% average over
SPECint2000; gDiff wins on every benchmark; mcf is its best (86%); gap is
hard for everyone (~40%).
"""

from repro.harness import run_experiment
from repro.trace.workloads import BENCHMARKS


def bench_fig8(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", length=100_000),
        rounds=1, iterations=1,
    )
    archive(result)

    stride, dfcm, gdiff = (result.cell("average", c)
                           for c in ("stride", "dfcm", "gdiff8"))
    # Shape: gDiff > DFCM > stride on average, by paper-scale margins.
    assert gdiff > dfcm > stride
    assert gdiff - stride > 0.08
    assert 0.45 <= stride <= 0.68
    assert 0.58 <= gdiff <= 0.82
    # gDiff beats local stride on every single benchmark except (at most)
    # gap, the paper's noted hard case.
    losers = [b for b in BENCHMARKS
              if result.cell(b, "gdiff8") <= result.cell(b, "stride")]
    assert set(losers) <= {"gap"}
    # mcf is gDiff's best benchmark; gap its worst.
    gdiff_col = {b: result.cell(b, "gdiff8") for b in BENCHMARKS}
    assert max(gdiff_col, key=gdiff_col.get) == "mcf"
    assert min(gdiff_col, key=gdiff_col.get) == "gap"
    assert gdiff_col["mcf"] > 0.8
