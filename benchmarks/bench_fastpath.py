"""Fast-path engine — the speedups the trace cache, packed SoA layout and
parallel runner actually deliver, measured and recorded.

Four claims (docs/PERFORMANCE.md):

* **End-to-end profile speedup.** Figure 8 over a warm cache (packed
  traces loaded from disk) runs at least 1.5x faster than the legacy path
  (cache disabled, per-run generation into Instruction objects).
* **Warm-cache loads** beat regeneration by at least 5x on gcc and
  vortex.
* **Packed profile loop** beats the Instruction-object loop even with the
  trace already in memory (predictor work dominates, so this ratio is
  modest — the end-to-end number is the one that matters).
* **Parallel runner** scales the registry across cores; the >= 2.5x
  wall-clock target applies on machines with >= 4 usable cores (measured
  values are recorded unconditionally).

Timing uses the best-of-N minimum, the stable estimator for noisy shared
machines.  Every measured ratio lands in ``BENCH_metrics.json`` under
``metrics.fastpath``.
"""

import os
import time

from repro.core import GDiffPredictor
from repro.harness.experiments import fig8
from repro.harness.parallel import default_workers, run_experiments
from repro.harness.runner import run_value_prediction
from repro.predictors import DFCMPredictor, StridePredictor
from repro.trace import PackedTrace
from repro.trace.cache import default_cache
from repro.trace.workloads import get

LENGTH = 30_000
BENCHES = ["gcc", "mcf", "vortex"]
ROUNDS = 3


def _best(fn, rounds=ROUNDS):
    return min(_timed(fn) for _ in range(rounds))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _fresh_predictors():
    return {
        "stride": StridePredictor(entries=None),
        "dfcm": DFCMPredictor(order=4, l1_entries=None),
        "gdiff8": GDiffPredictor(order=8, entries=None),
    }


def bench_fig8_end_to_end(benchmark, record_metrics, monkeypatch):
    """Warm cache + packed fast path vs the legacy generate-and-walk path."""
    monkeypatch.setenv("REPRO_CACHE", "0")
    cold = _best(lambda: fig8(length=LENGTH, benchmarks=BENCHES))
    monkeypatch.delenv("REPRO_CACHE")
    default_cache().warm(BENCHES, LENGTH)
    warm = _best(lambda: fig8(length=LENGTH, benchmarks=BENCHES))
    benchmark.pedantic(lambda: fig8(length=LENGTH, benchmarks=BENCHES),
                       rounds=1, iterations=1)
    speedup = cold / warm
    record_metrics("fastpath", fig8_cold_s=cold, fig8_warm_s=warm,
                   fig8_end_to_end_speedup=speedup)
    print(f"\nfig8 end-to-end: cold {cold * 1000:.0f} ms, "
          f"warm {warm * 1000:.0f} ms ({speedup:.2f}x)")
    assert speedup >= 1.5, (
        f"warm-cache fig8 only {speedup:.2f}x faster; expected >= 1.5x")


def bench_warm_cache_load(record_metrics, benchmark):
    """Loading a cached packed trace vs regenerating the workload."""
    cache = default_cache()
    ratios = {}
    for bench in ("gcc", "vortex"):
        cache.load_or_generate(bench, LENGTH)  # ensure the entry exists
        regen = _best(lambda b=bench: get(b).trace(LENGTH))
        load = _best(lambda b=bench: cache.load_or_generate(b, LENGTH))
        ratios[bench] = regen / load
        record_metrics("fastpath", **{
            f"cache_regen_{bench}_s": regen,
            f"cache_load_{bench}_s": load,
            f"cache_load_speedup_{bench}": ratios[bench],
        })
        print(f"\n{bench}: regenerate {regen * 1000:.0f} ms, "
              f"warm load {load * 1000:.0f} ms ({ratios[bench]:.1f}x)")
    benchmark.pedantic(lambda: cache.load_or_generate("gcc", LENGTH),
                       rounds=1, iterations=1)
    for bench, ratio in ratios.items():
        assert ratio >= 5.0, (
            f"warm {bench} load only {ratio:.1f}x faster than "
            f"regeneration; expected >= 5x")


def bench_packed_profile_loop(record_metrics, benchmark):
    """The in-memory SoA loop vs the Instruction-object loop."""
    trace = get("gcc").trace(LENGTH)
    packed = PackedTrace.from_instructions(trace, name="gcc")
    packed.value_pairs()  # build the column cache outside the timed region
    slow = _best(lambda: run_value_prediction(trace, _fresh_predictors()))
    fast = _best(lambda: run_value_prediction(packed, _fresh_predictors()))
    benchmark.pedantic(
        lambda: run_value_prediction(packed, _fresh_predictors()),
        rounds=1, iterations=1)
    speedup = slow / fast
    record_metrics("fastpath", loop_trace_s=slow, loop_packed_s=fast,
                   loop_packed_speedup=speedup)
    print(f"\nprofile loop: objects {slow * 1000:.0f} ms, "
          f"packed {fast * 1000:.0f} ms ({speedup:.2f}x)")
    # Predictor predict/update dominates this loop; the packed walk must
    # simply never lose to the object walk.
    assert speedup >= 1.0, (
        f"packed loop slower than object loop ({speedup:.2f}x)")


def bench_parallel_runner(record_metrics, benchmark):
    """Registry fan-out vs the same experiments run serially."""
    workers = default_workers()
    # Enough independent experiments to keep >= 4 workers busy; on small
    # machines a shorter list keeps the bench fast (no assertion there).
    names = (["fig8", "fig10", "fig18a", "fig18b"] if workers >= 4
             else ["fig8", "fig10"])
    common = {"length": 15_000, "benchmarks": ["gcc", "mcf"]}
    default_cache().warm(common["benchmarks"], common["length"])
    serial = _best(lambda: run_experiments(names, max_workers=1,
                                           common_kwargs=common), rounds=2)
    parallel = _best(lambda: run_experiments(names, max_workers=workers,
                                             common_kwargs=common), rounds=2)
    benchmark.pedantic(
        lambda: run_experiments(names, max_workers=workers,
                                common_kwargs=common),
        rounds=1, iterations=1)
    speedup = serial / parallel
    record_metrics("fastpath", parallel_serial_s=serial,
                   parallel_pool_s=parallel, parallel_speedup=speedup,
                   parallel_workers=workers,
                   parallel_cores=os.cpu_count())
    print(f"\nrun-all: serial {serial * 1000:.0f} ms, "
          f"{workers} workers {parallel * 1000:.0f} ms ({speedup:.2f}x)")
    if workers >= 4:
        assert speedup >= 2.5, (
            f"parallel runner only {speedup:.2f}x on {workers} workers; "
            f"expected >= 2.5x")
