"""Extension — the 2M-entry Markov variant discussed in Section 6's text.

"When its size increases from 256K-entry to 2M-entry, the Markov
predictor achieves decent average coverage (92%) and accuracy (33%) but
still shows much lower prediction capability than gDiff for benchmarks
including bzip2, gap, gzip and perl."  This bench compares the two
Markov sizes against the 4K-entry gDiff on the load-address stream.
"""

from repro.analysis.stats import mean
from repro.core import GDiffPredictor
from repro.harness.report import ExperimentResult
from repro.harness.runner import run_address_prediction
from repro.predictors import MarkovPredictor
from repro.trace.workloads import BENCHMARKS, get


def run_sweep(length=60_000):
    result = ExperimentResult(
        name="extension_markov_2m",
        title="Markov 256K vs 2M entries vs gDiff (load addresses)",
        columns=["bench", "m256k_acc", "m256k_cov", "m2m_acc", "m2m_cov",
                 "gs_acc", "gs_cov"],
        notes=["paper: 2M Markov reaches 92% coverage / 33% accuracy, "
               "still below gDiff's capability"],
    )
    for bench in BENCHMARKS:
        trace = get(bench).trace(length)
        predictors = {
            "m256k": MarkovPredictor(entries=262144, ways=4),
            "m2m": MarkovPredictor(entries=2097152, ways=4),
            "gs": GDiffPredictor(order=32, entries=4096),
        }
        stats = run_address_prediction(trace, predictors)
        result.add_row(
            bench,
            stats["m256k"].accuracy, stats["m256k"].coverage,
            stats["m2m"].accuracy, stats["m2m"].coverage,
            stats["gs"].accuracy, stats["gs"].coverage,
        )
    result.add_row("average",
                   *(mean(result.column(c)) for c in result.columns[1:]))
    return result


def bench_markov_2m(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    m256_cov = result.cell("average", "m256k_cov")
    m2m_cov = result.cell("average", "m2m_cov")
    m2m_acc = result.cell("average", "m2m_acc")
    gs_acc = result.cell("average", "gs_acc")
    gs_cov = result.cell("average", "gs_cov")
    # Capacity helps coverage (or at worst changes nothing — our streams
    # are smaller than 256K transitions), and even the big Markov table
    # stays far behind gDiff's accuracy at comparable-or-less coverage.
    assert m2m_cov >= m256_cov - 0.01
    assert gs_acc > m2m_acc + 0.2
    assert gs_cov > m2m_cov
