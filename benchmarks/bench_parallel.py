"""Shared-memory trace plane + persistent worker pool — campaign-scale
orchestration overhead.

PR 7 made the kernel fast; at sweep scale the harness itself is now the
bottleneck: per-round pool spawns and per-worker disk loads are paid for
the *same* packed trace over and over.  Two floors:

* **Per-cell trace acquisition ≥ 10x vs the warm disk load.**  A worker
  acquires its trace through :func:`repro.trace.shm.shm_trace`: the first
  touch of a segment maps it and validates every column checksum, every
  later touch is a validated-mapping hit.  Amortised over one 8-cell
  worker round that beats re-inflating the zlib disk entry per cell by
  well over an order of magnitude.  (The *cold* attach alone is
  checksum-bound — reported as ``shm_attach_cold_ms`` for the record,
  it is roughly the CRC scan of the columns.)
* **4-worker campaign round ≥ 1.5x vs the per-round-pool baseline.**
  The same cell batch dispatched through the persistent pool (workers
  reused, traces attached once) against the legacy configuration
  (``REPRO_POOL=fresh`` + ``REPRO_SHM=0``: a fresh executor per round,
  a disk load per worker per round).  Both planes must produce identical
  results before speed counts.

Measured values land in ``BENCH_metrics.json`` under
``metrics.parallel`` with ``_x`` keys, so ``repro bench check`` gates
them against the recorded history.

``REPRO_PARALLEL_BENCH_LENGTH`` shrinks the trace for smoke runs (CI
uses 8000); the hard floors only apply at the full 120k length where
fixed per-call costs amortise — short runs assert a conservative sanity
ratio.
"""

import os
import time

from repro.harness.parallel import run_tasks, shutdown_pool
from repro.telemetry import MetricsRegistry
from repro.trace import shm
from repro.trace.cache import cached_trace, default_cache, memo_clear
from repro.trace.workloads import get

LENGTH = int(os.environ.get("REPRO_PARALLEL_BENCH_LENGTH", "120000"))
FULL_LENGTH = 120_000
BENCH = "gzip"
CELLS_PER_ROUND = 8
ROUNDS = 3
WORKERS = 4

#: (metric, full-length floor, smoke floor)
FLOORS = {
    "shm_attach_speedup_x": (10.0, 3.0),
    "warm_pool_round_speedup_x": (1.5, 1.1),
}


def _floor(name):
    full, smoke = FLOORS[name]
    return full if LENGTH >= FULL_LENGTH else smoke


def _assert_floor(name, ratio, detail):
    floor = _floor(name)
    assert ratio >= floor, (
        f"{name} {ratio:.2f}x under the {floor}x floor ({detail})")


def bench_shm_attach_vs_disk(benchmark, record_metrics):
    """Per-cell trace acquisition: shm plane vs warm disk cache."""
    spec = get(BENCH)
    cache = default_cache()
    trace = cache.load_or_generate(spec, LENGTH)  # generate + store once

    # Warm disk load: the file exists, every load re-reads and inflates.
    disk_s = min(_timed(lambda: cache.load_or_generate(spec, LENGTH))
                 for _ in range(3))

    handle = shm.publish(trace, (BENCH, LENGTH, spec.seed, 1))
    assert handle is not None, "shared memory unavailable on this runner"

    # Equivalence before speed: the attached columns are bit-identical.
    shm.detach_all()
    attached = shm.attach(handle)
    for col, data in trace.columns().items():
        assert bytes(attached.columns()[col]) == bytes(data), col

    # Cold attach: map + full checksum validation (reported, not gated).
    def cold():
        shm.detach_all()
        shm.attach(handle)

    cold_s = min(_timed(cold) for _ in range(3))

    # What a warm pool worker actually pays per cell: the first cell of a
    # round validates and maps, the rest hit the validated mapping.
    def round_of_cells():
        shm.detach_all()
        for _ in range(CELLS_PER_ROUND):
            shm.attach(handle)

    round_s = min(_timed(round_of_cells) for _ in range(3))
    per_cell_s = round_s / CELLS_PER_ROUND
    ratio = disk_s / per_cell_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    shm.detach_all()
    shm.unpublish_all()

    print(f"\nshm plane: warm disk load {disk_s * 1000:.2f} ms, cold "
          f"attach {cold_s * 1000:.2f} ms, per-cell (8-cell round) "
          f"{per_cell_s * 1000:.3f} ms — {ratio:.1f}x")
    record_metrics("parallel",
                   disk_load_ms=disk_s * 1000,
                   shm_attach_cold_ms=cold_s * 1000,
                   shm_attach_per_cell_ms=per_cell_s * 1000,
                   shm_attach_speedup_x=ratio)
    _assert_floor("shm_attach_speedup_x", ratio,
                  f"disk {disk_s * 1000:.2f} ms vs per-cell "
                  f"{per_cell_s * 1000:.3f} ms at length {LENGTH}")


def _cell(args):
    """A representative scheduler cell: acquire the trace, do a small
    pass over it, return a figure the driver can compare across planes."""
    bench, length = args
    trace = cached_trace(bench, length)
    pcs = trace.columns()["pcs"]
    step = max(1, len(pcs) // 10_000)
    return (len(trace), sum(pcs[0:len(pcs):step]) & 0xFFFFFFFF)


def _run_rounds(registry):
    """R scheduler-style rounds of the same cell batch, timed per round
    (warm-up round excluded so steady state is what's measured)."""
    items = [(BENCH, LENGTH)] * CELLS_PER_ROUND
    outcomes = run_tasks(_cell, items, max_workers=WORKERS,
                         registry=registry)
    per_round = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        round_outcomes = run_tasks(_cell, items, max_workers=WORKERS,
                                   registry=registry)
        per_round.append(time.perf_counter() - start)
        assert round_outcomes == outcomes
    return outcomes, min(per_round)


def bench_warm_pool_campaign_round(benchmark, record_metrics):
    """A 4-worker cell round: persistent pool + shm vs pool-per-round."""
    spec = get(BENCH)
    trace = default_cache().load_or_generate(spec, LENGTH)

    baseline_env = {"REPRO_POOL": "fresh", "REPRO_SHM": "0"}
    saved = {k: os.environ.get(k) for k in baseline_env}
    try:
        os.environ.update(baseline_env)
        shutdown_pool()
        memo_clear()  # forked workers must not inherit a warm driver memo
        fresh_outcomes, fresh_s = _run_rounds(MetricsRegistry())
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    shutdown_pool()
    memo_clear()
    shm.publish(trace, (BENCH, LENGTH, spec.seed, 1))
    warm_reg = MetricsRegistry()
    warm_outcomes, warm_s = _run_rounds(warm_reg)
    shutdown_pool()
    shm.unpublish_all()

    # Equivalence before speed: identical per-cell results either way.
    assert warm_outcomes == fresh_outcomes

    counters = warm_reg.as_dict()["counters"]
    assert counters["pool.created"] == 1, "persistent plane restarted"
    ratio = fresh_s / warm_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\ncampaign round ({WORKERS} workers, {CELLS_PER_ROUND} "
          f"cells): per-round pool {fresh_s * 1000:.0f} ms, warm pool "
          f"{warm_s * 1000:.0f} ms — {ratio:.2f}x")
    record_metrics("parallel",
                   fresh_round_ms=fresh_s * 1000,
                   warm_round_ms=warm_s * 1000,
                   warm_pool_round_speedup_x=ratio)
    _assert_floor("warm_pool_round_speedup_x", ratio,
                  f"fresh {fresh_s * 1000:.0f} ms vs warm "
                  f"{warm_s * 1000:.0f} ms at length {LENGTH}")


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
