"""Figure 13 — gDiff over the speculative GVQ vs the local stride
predictor, in the OOO pipeline with 3-bit confidence.

Paper: execution variation (cache misses reordering completion) cripples
the SGVQ: gDiff manages 74% accuracy / 49% coverage while the plain local
stride predictor achieves 89% / 55% — the global predictor *loses* to the
local one, which is what motivates the hybrid queue of Section 5.
"""

from repro.harness import run_experiment


def bench_fig13(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig13", length=40_000),
        rounds=1, iterations=1,
    )
    archive(result)

    sgvq_cov = result.cell("average", "gdiff_sgvq_cov")
    local_cov = result.cell("average", "l_stride_cov")
    local_acc = result.cell("average", "l_stride_acc")
    # The headline shape: the SGVQ-based global predictor loses to the
    # local stride predictor on coverage, decisively.
    assert sgvq_cov < local_cov * 0.7
    # The local baseline is healthy (paper: 89%/55%).
    assert local_acc > 0.75
    assert local_cov > 0.30
