"""Extension — gDiff vs the other global-history models the paper cites.

Section 2 positions gDiff against the PI predictor ("the first-order
global context-based predictor") and higher-order global context schemes
(DDISC).  This bench quantifies the positioning on the full suite:
PI is gDiff restricted to distance 1; the global FCM needs exact global
context repetition; gDiff's variable-distance stride model subsumes the
former and tolerates the noise that defeats the latter.  The hybrid
local predictor (stride + DFCM with a chooser) bounds what pure local
engineering can reach.
"""

from repro.analysis.stats import mean
from repro.core import GDiffPredictor
from repro.harness.report import ExperimentResult
from repro.harness.runner import run_value_prediction
from repro.predictors import (
    GlobalFCMPredictor,
    HybridLocalPredictor,
    PIPredictor,
)
from repro.trace.workloads import BENCHMARKS, get


def run_sweep(length=60_000):
    result = ExperimentResult(
        name="extension_global_baselines",
        title="gDiff vs PI, global FCM, and the hybrid local predictor",
        columns=["bench", "pi", "gfcm", "hybrid_local", "gdiff8"],
        notes=["PI = order-1 global context (HPCA-5); gfcm = higher-order "
               "global context; gdiff subsumes PI and tolerates "
               "noise that breaks gfcm"],
    )
    for bench in BENCHMARKS:
        trace = get(bench).trace(length)
        predictors = {
            "pi": PIPredictor(entries=None),
            "gfcm": GlobalFCMPredictor(order=4),
            "hybrid_local": HybridLocalPredictor(entries=None),
            "gdiff8": GDiffPredictor(order=8, entries=None),
        }
        stats = run_value_prediction(trace, predictors)
        result.add_row(bench, *(stats[k].raw_accuracy
                                for k in ("pi", "gfcm", "hybrid_local",
                                          "gdiff8")))
    result.add_row("average",
                   *(mean(result.column(c)) for c in result.columns[1:]))
    return result


def bench_global_baselines(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    pi = result.cell("average", "pi")
    gfcm = result.cell("average", "gfcm")
    hybrid = result.cell("average", "hybrid_local")
    gdiff = result.cell("average", "gdiff8")
    # gDiff dominates both global ancestors decisively.
    assert gdiff > pi + 0.15
    assert gdiff > gfcm + 0.15
    # The strongest local configuration still trails gDiff.
    assert gdiff > hybrid
    # The hybrid beats either of its components' solo numbers implicitly;
    # sanity: it is a serious baseline, not a strawman.
    assert hybrid > 0.45
