"""Ablation — distance selection and diff refresh policy.

The paper's update rule leaves two choices open (DESIGN.md section 5):
which matching distance to select when several match, and whether the
calculated differences are written back on a match.  This bench compares
the implemented policies and documents why sticky-nearest with refresh is
the default.
"""

from repro.analysis.stats import mean
from repro.core import GDiffPredictor
from repro.harness.report import ExperimentResult
from repro.harness.runner import run_value_prediction
from repro.trace.workloads import BENCHMARKS, get

VARIANTS = {
    "sticky+refresh": dict(policy="sticky-nearest", refresh_on_match=True),
    "nearest+refresh": dict(policy="nearest", refresh_on_match=True),
    "farthest+refresh": dict(policy="farthest", refresh_on_match=True),
    "sticky+literal": dict(policy="sticky-nearest", refresh_on_match=False),
}


def run_sweep(length=60_000):
    result = ExperimentResult(
        name="ablation_distance",
        title="gDiff(q=32) accuracy vs distance/refresh policy",
        columns=["bench"] + list(VARIANTS),
        notes=["default: sticky-nearest with refresh-on-match"],
    )
    for bench in BENCHMARKS:
        trace = get(bench).trace(length)
        predictors = {
            name: GDiffPredictor(order=32, entries=None, **params)
            for name, params in VARIANTS.items()
        }
        stats = run_value_prediction(trace, predictors)
        result.add_row(bench, *(stats[name].raw_accuracy
                                for name in VARIANTS))
    result.add_row("average",
                   *(mean(result.column(name)) for name in VARIANTS))
    return result


def bench_distance_policy(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    sticky = result.cell("average", "sticky+refresh")
    nearest = result.cell("average", "nearest+refresh")
    farthest = result.cell("average", "farthest+refresh")
    literal = result.cell("average", "sticky+literal")
    # The default is at least as good as every alternative: sticky beats
    # farthest clearly, edges nearest, and never loses to the literal
    # no-refresh reading (whose stale-diff pathology is workload
    # dependent — severe on jump-heavy pointer chases, mild elsewhere;
    # see repro/core/table.py).
    assert sticky >= nearest - 0.005
    assert sticky > farthest + 0.01
    assert sticky >= literal - 0.005
