"""Ablation — GVQ size (the predictor order).

The paper uses q=8 for the profile studies and q=32 in the pipeline, and
notes that gap jumps from ~40% to 59.7% when the queue grows to 32
(Section 3: its correlations are long computation chains).  This bench
sweeps the order and checks diminishing returns plus gap's jump.
"""

from repro.analysis.stats import mean
from repro.core import GDiffPredictor
from repro.harness.report import ExperimentResult
from repro.harness.runner import run_value_prediction
from repro.trace.workloads import BENCHMARKS, get

ORDERS = [4, 8, 16, 32, 64]


def run_sweep(length=60_000):
    result = ExperimentResult(
        name="ablation_queue_size",
        title="gDiff profile accuracy vs queue size (order)",
        columns=["bench"] + [f"q={o}" for o in ORDERS],
        notes=["paper: q=8 for profile studies; gap 40% -> 59.7% at q=32"],
    )
    for bench in BENCHMARKS:
        trace = get(bench).trace(length)
        predictors = {f"q={o}": GDiffPredictor(order=o, entries=None)
                      for o in ORDERS}
        stats = run_value_prediction(trace, predictors)
        result.add_row(bench, *(stats[f"q={o}"].raw_accuracy
                                for o in ORDERS))
    result.add_row("average",
                   *(mean(result.column(f"q={o}")) for o in ORDERS))
    return result


def bench_queue_size(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    averages = [result.cell("average", f"q={o}") for o in ORDERS]
    # Bigger queues never hurt on average, with diminishing returns.
    assert averages[-1] >= averages[0]
    gain_8_to_32 = averages[3] - averages[1]
    gain_32_to_64 = averages[4] - averages[3]
    assert gain_32_to_64 < gain_8_to_32 + 0.02
    # gap's signature jump.
    assert result.cell("gap", "q=32") > result.cell("gap", "q=8") + 0.1
