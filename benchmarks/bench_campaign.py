"""Campaign-store overhead — resume must be effectively free.

The whole point of the content-addressed store is that re-running a
finished campaign costs index lookups, not recomputation.  Two claims:

* **Resume skip is cheap.** Re-scheduling a fully completed campaign
  (every cell skipped via the index) costs well under 5 % of executing
  it — otherwise "resumable" would be a lie for large grids.
* **Store writes don't dominate.** Writing a cell record (atomic JSON +
  index update) is milliseconds — small next to even the tiniest real
  cell — measured here as the per-record wall time over a 64-record
  burst.

Measured values land in ``BENCH_metrics.json`` under
``metrics.campaign``.
"""

import time

from repro.campaign import CampaignScheduler, CampaignSpec, CampaignStore
from repro.campaign.spec import Cell

SPEC_DOC = {
    "campaign": {"name": "bench", "description": "campaign overhead bench"},
    "defaults": {"kind": "experiment", "experiment": "fig8"},
    "matrix": {"length": [3000, 4000], "benchmarks": [["gcc"], ["mcf"]]},
}


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_resume_skip_overhead(benchmark, record_metrics, tmp_path):
    spec = CampaignSpec.from_dict(SPEC_DOC)
    store = CampaignStore(tmp_path / "camp")
    store.create(spec)

    def execute():
        CampaignScheduler(spec, store, max_workers=1, warm=False).run()

    def skip_all():
        summary = CampaignScheduler(spec, store, max_workers=1,
                                    warm=False).run()
        assert summary.skipped == 4 and summary.completed == 0

    execute_s = _timed(execute)
    skip_s = min(_timed(skip_all) for _ in range(5))
    ratio = skip_s / execute_s
    record_metrics("campaign", execute_s=round(execute_s, 4),
                   resume_skip_s=round(skip_s, 6),
                   skip_ratio=round(ratio, 4))
    benchmark.pedantic(skip_all, rounds=3, iterations=1)
    assert ratio < 0.05, (
        f"skipping a finished campaign cost {ratio:.1%} of executing it")


def bench_store_write_throughput(benchmark, record_metrics, tmp_path):
    spec = CampaignSpec.from_dict(SPEC_DOC)
    store = CampaignStore(tmp_path / "camp")
    store.create(spec)
    payload = {"experiment": {"name": "fig8", "columns": ["a", "b"],
                              "rows": [["gcc", 0.5, 0.6]] * 8}}
    cells = [Cell.make("experiment",
                       {"experiment": "fig8", "length": 10_000 + i})
             for i in range(64)]

    def burst():
        for cell in cells:
            store.write_result(cell, payload, attempts=1, duration_s=0.01)

    wall = min(_timed(burst) for _ in range(3))
    per_record_ms = wall / len(cells) * 1e3
    record_metrics("campaign", write_burst_s=round(wall, 4),
                   write_per_record_ms=round(per_record_ms, 3))
    benchmark.pedantic(burst, rounds=2, iterations=1)
    assert per_record_ms < 50.0, (
        f"store writes cost {per_record_ms:.1f} ms/record")
