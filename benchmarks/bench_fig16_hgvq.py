"""Figure 16 — the headline result: gDiff with the hybrid global value
queue vs local stride vs local context, in the OOO pipeline.

Paper: gDiff(HGVQ, q=32) reaches 91% accuracy / 64% coverage vs local
stride's 89% / 55%; the local context predictor's accuracy is comparable
but its confidence-gated coverage is the smallest of the three.
"""

from repro.harness import run_experiment


def bench_fig16(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig16", length=40_000),
        rounds=1, iterations=1,
    )
    archive(result)

    hgvq_acc = result.cell("average", "gdiff_hgvq_acc")
    hgvq_cov = result.cell("average", "gdiff_hgvq_cov")
    stride_acc = result.cell("average", "l_stride_acc")
    stride_cov = result.cell("average", "l_stride_cov")
    ctx_cov = result.cell("average", "l_context_cov")

    # The coverage ordering is the paper's central claim: the hybrid
    # global predictor covers more than local stride, which covers more
    # than local context.
    assert hgvq_cov > stride_cov + 0.02
    assert ctx_cov < stride_cov + 0.02
    # Accuracies are all high and within a few points of each other.
    assert hgvq_acc > 0.75
    assert stride_acc > 0.80
    assert abs(hgvq_acc - stride_acc) < 0.08
