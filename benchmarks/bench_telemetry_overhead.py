"""Telemetry overhead — the subsystem must be cheap enough to leave on.

Two claims, measured on the acceptance workload (the HGVQ-equipped OOO
core over a gzip trace):

* **Disabled cost ≈ 0.** With no registry attached, instrumentation is a
  handful of ``is not None`` branches; a detached run must stay within a
  few percent of itself run-to-run (sanity floor for the 5% budget
  documented in docs/TELEMETRY.md — the before/after numbers against the
  pre-telemetry tree live there).
* **Enabled cost is bounded.** A fully attached registry (per-cycle
  occupancy, stall accounting, distance histograms) may not slow the
  simulation by more than 50% — it measurably costs something, but not
  multiples.

Timing uses the best-of-N minimum, the stable estimator for noisy shared
machines.
"""

import time

from repro.pipeline import HGVQAdapter, OutOfOrderCore
from repro.telemetry import MetricsRegistry
from repro.trace.workloads import get

LENGTH = 20_000
ROUNDS = 5


def _run_once(metrics):
    adapter = HGVQAdapter(order=32, entries=8192)
    if metrics is not None:
        adapter.attach_metrics(metrics)
    core = OutOfOrderCore(value_predictor=adapter, metrics=metrics,
                          track_value_delay=True)
    trace = get("gzip").trace(LENGTH)
    start = time.perf_counter()
    core.run(trace)
    return time.perf_counter() - start


def _best(metrics_factory):
    return min(_run_once(metrics_factory()) for _ in range(ROUNDS))


def bench_telemetry_overhead(benchmark, archive):
    disabled = _best(lambda: None)
    enabled = _best(MetricsRegistry)
    ratio = enabled / disabled
    benchmark.pedantic(lambda: _run_once(None), rounds=1, iterations=1)

    print(f"\ntelemetry overhead: disabled {disabled * 1000:.1f} ms, "
          f"enabled {enabled * 1000:.1f} ms ({(ratio - 1):+.1%})")

    # Attached telemetry may not slow the pipeline by more than 50%.
    assert ratio < 1.5, (
        f"enabled telemetry cost {(ratio - 1):+.1%}; expected < +50%"
    )
