"""Telemetry overhead — the subsystem must be cheap enough to leave on.

Three claims, measured on the acceptance workload (the HGVQ-equipped OOO
core over a gzip trace):

* **Disabled cost ≈ 0.** With no registry attached, instrumentation is a
  handful of ``is not None`` branches; a detached run must stay within a
  few percent of itself run-to-run (sanity floor for the 5% budget
  documented in docs/TELEMETRY.md — the before/after numbers against the
  pre-telemetry tree live there).  Span support adds exactly one more
  such branch per phase-timer enter/exit, so the budget is unchanged
  with spans compiled in.
* **Enabled cost is bounded.** A fully attached registry (per-cycle
  occupancy, stall accounting, distance histograms) may not slow the
  simulation by more than 50% — it measurably costs something, but not
  multiples.
* **Span cost is noise.** Enabling a :class:`SpanTracker` on an already
  attached registry only touches phase-timer boundaries (a handful per
  run, never per-instruction), so it may not add more than 5% on top of
  the enabled registry.

Timing uses the best-of-N minimum, the stable estimator for noisy shared
machines.
"""

import time

from repro.pipeline import HGVQAdapter, OutOfOrderCore
from repro.telemetry import MetricsRegistry
from repro.trace.workloads import get

LENGTH = 20_000
ROUNDS = 5


def _run_once(metrics):
    adapter = HGVQAdapter(order=32, entries=8192)
    if metrics is not None:
        adapter.attach_metrics(metrics)
    core = OutOfOrderCore(value_predictor=adapter, metrics=metrics,
                          track_value_delay=True)
    trace = get("gzip").trace(LENGTH)
    start = time.perf_counter()
    if metrics is not None:
        with metrics.timer("simulate"):
            core.run(trace)
    else:
        core.run(trace)
    return time.perf_counter() - start


def _span_registry():
    registry = MetricsRegistry()
    registry.enable_spans()
    return registry


def _best(metrics_factory):
    return min(_run_once(metrics_factory()) for _ in range(ROUNDS))


def bench_telemetry_overhead(benchmark, archive, record_metrics):
    disabled = _best(lambda: None)
    enabled = _best(MetricsRegistry)
    ratio = enabled / disabled
    benchmark.pedantic(lambda: _run_once(None), rounds=1, iterations=1)

    print(f"\ntelemetry overhead: disabled {disabled * 1000:.1f} ms, "
          f"enabled {enabled * 1000:.1f} ms ({(ratio - 1):+.1%})")
    record_metrics("telemetry",
                   disabled_ms=disabled * 1000,
                   enabled_ms=enabled * 1000)

    # Attached telemetry may not slow the pipeline by more than 50%.
    assert ratio < 1.5, (
        f"enabled telemetry cost {(ratio - 1):+.1%}; expected < +50%"
    )


def bench_span_overhead(benchmark, archive, record_metrics):
    """Span tracking on top of an enabled registry must be within 5%."""
    # Interleaved pairs cancel machine drift (two separately batched
    # best-of-N runs can differ by more than the budget on a busy box);
    # a real systematic overhead shows up in *every* pair, so the most
    # favourable pairing bounds it from above.
    pairs = [(_run_once(MetricsRegistry()), _run_once(_span_registry()))
             for _ in range(ROUNDS)]
    enabled = min(e for e, _ in pairs)
    spans = min(s for _, s in pairs)
    ratio = min(s / e for e, s in pairs)
    benchmark.pedantic(lambda: _run_once(_span_registry()),
                       rounds=1, iterations=1)

    print(f"\nspan overhead: registry {enabled * 1000:.1f} ms, "
          f"registry+spans {spans * 1000:.1f} ms "
          f"(best paired ratio {(ratio - 1):+.1%})")
    record_metrics("telemetry", spans_ms=spans * 1000)

    # Spans attach at phase boundaries only — the per-run cost must be
    # indistinguishable from timer noise.
    assert ratio < 1.05, (
        f"span tracking cost {(ratio - 1):+.1%}; expected < +5%"
    )
