"""Fused predictor kernels — speedups over the object path, measured with
the results pinned equal.

Two claims (docs/PERFORMANCE.md):

* **Raw gDiff microbenchmark.** The fused predict+train kernel beats the
  pre-kernel object path (a ``GVQ.get`` window walk plus the
  dict-of-dataclass :class:`~repro.core.table.GDiffTable`) by at least
  2.5x on a single unlimited-table profile run.
* **End-to-end Figure 8.** A warm full-length Figure 8 run with the
  kernels (``REPRO_KERNELS=1``, the default) beats the same run forced
  onto the object path (``REPRO_KERNELS=0``) by at least 1.8x.

Both measurements assert bit-identical results between the two paths
before asserting the speedup — a kernel that drifts from the object path
is a bug, not a win.  Ratios land in ``BENCH_metrics.json`` under
``metrics.kernels``.
"""

import time

from repro.core import GDiffPredictor, GDiffTable
from repro.core.gvq import GlobalValueQueue
from repro.harness.experiments import fig8
from repro.harness.runner import run_value_prediction
from repro.trace.cache import default_cache
from repro.wordops import WORD_MASK, wsub

LENGTH = 100_000
ROUNDS = 3


def _best(fn, rounds=ROUNDS):
    return min(_timed(fn) for _ in range(rounds))


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class _ReferenceGDiff:
    """The pre-kernel gDiff object path, kept as the timing baseline.

    Window reads go through ``GlobalValueQueue.get`` and training through
    the dict-of-dataclass ``GDiffTable`` — the Optional-diff representation
    the flat arrays and kernels replaced.  Results must stay identical.
    """

    name = "gdiff-reference"

    def __init__(self, order=8, entries=None):
        self.order = order
        self.queue = GlobalValueQueue(size=order)
        self.table = GDiffTable(order=order, entries=entries)

    def predict(self, pc):
        entry = self.table.lookup(pc)
        if entry is None or not entry.distance:
            return None
        diff = entry.diffs[entry.distance - 1]
        if diff is None:
            return None
        base = self.queue.get(entry.distance)
        if base is None:
            return None
        return (base + diff) & WORD_MASK

    def update(self, pc, actual):
        get = self.queue.get
        diffs = [None if base is None else wsub(actual, base)
                 for base in (get(d) for d in range(1, self.order + 1))]
        self.table.train(pc, diffs)
        self.queue.push(actual)


def _stats_key(stats):
    return (stats.attempts, stats.predictions, stats.correct,
            stats.confident, stats.confident_correct)


def bench_gdiff_kernel_microbench(benchmark, record_metrics):
    """Fused gDiff kernel vs the pre-kernel object path, same trace."""
    trace = default_cache().load_or_generate("gcc", LENGTH)

    def run_reference():
        return run_value_prediction(trace, {"g": _ReferenceGDiff(order=8)})

    def run_kernel():
        return run_value_prediction(trace, {"g": GDiffPredictor(order=8,
                                                                entries=None)})

    ref_stats = run_reference()["g"]
    kern_stats = run_kernel()["g"]
    assert _stats_key(ref_stats) == _stats_key(kern_stats), (
        "kernel path diverged from the reference object path")

    ref = _best(run_reference)
    kern = _best(run_kernel)
    benchmark.pedantic(run_kernel, rounds=1, iterations=1)
    speedup = ref / kern
    record_metrics("kernels", gdiff_reference_s=ref, gdiff_kernel_s=kern,
                   gdiff_kernel_speedup=speedup)
    print(f"\ngdiff microbench: reference {ref * 1000:.0f} ms, "
          f"kernel {kern * 1000:.0f} ms ({speedup:.2f}x)")
    assert speedup >= 2.5, (
        f"gdiff kernel only {speedup:.2f}x over the object path; "
        f"expected >= 2.5x")


def bench_fig8_kernel_end_to_end(benchmark, record_metrics, monkeypatch):
    """Warm full-length Figure 8: kernels on vs the object-path fallback."""
    fig8()  # warm the trace cache outside the timed region
    monkeypatch.setenv("REPRO_KERNELS", "0")
    object_rows = fig8().rows
    object_s = _best(fig8, rounds=2)
    monkeypatch.setenv("REPRO_KERNELS", "1")
    kernel_rows = fig8().rows
    kernel_s = _best(fig8, rounds=2)
    benchmark.pedantic(fig8, rounds=1, iterations=1)
    assert object_rows == kernel_rows, (
        "REPRO_KERNELS=1 changed Figure 8 results")
    speedup = object_s / kernel_s
    record_metrics("kernels", fig8_object_s=object_s, fig8_kernel_s=kernel_s,
                   fig8_kernel_speedup=speedup)
    print(f"\nfig8 end-to-end: object path {object_s * 1000:.0f} ms, "
          f"kernels {kernel_s * 1000:.0f} ms ({speedup:.2f}x)")
    assert speedup >= 1.8, (
        f"kernel fig8 only {speedup:.2f}x over the object path; "
        f"expected >= 1.8x")
