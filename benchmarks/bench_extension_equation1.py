"""Extension — how much does Equation 1's general form leave on the table?

Section 2 restricts the general linear model (Equation 1) to the
variable-stride special case (Equation 2) for tractability.  This bench
quantifies the restriction on the full suite: the marginal gain of a
two-term linear model over the single-term stride model, and an
oracle-style least-squares Equation-1 ceiling.  The result supports the
paper's design call: the special case captures almost all of the linear
structure present.
"""

from repro.analysis import equation1_ceiling, two_term_predictability
from repro.analysis.stats import mean
from repro.harness.report import ExperimentResult
from repro.trace.workloads import BENCHMARKS, get


def run_sweep(length=50_000):
    result = ExperimentResult(
        name="extension_equation1",
        title="Equation 2 (stride) vs two-term vs full-Equation-1 ceiling",
        columns=["bench", "one_term", "two_term", "gain", "eq1_ceiling"],
        notes=["supports the paper's restriction to the stride special "
               "case: the extra linear terms buy almost nothing"],
    )
    for bench in BENCHMARKS:
        trace = get(bench).trace(length)
        two = two_term_predictability(trace)
        ceiling = equation1_ceiling(trace)
        result.add_row(bench, two["one_term"], two["two_term"],
                       two["gain"], ceiling["fit_accuracy"])
    result.add_row("average",
                   *(mean(result.column(c)) for c in result.columns[1:]))
    return result


def bench_equation1(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    one = result.cell("average", "one_term")
    gain = result.cell("average", "gain")
    ceiling = result.cell("average", "eq1_ceiling")
    # The stride special case is where the action is.
    assert one > 0.5
    assert gain < 0.1
    # The oracle ceiling sits near the one-term detector, not far above.
    assert abs(ceiling - one) < 0.2
