"""Ablation — the HGVQ filler predictor.

Section 5 fills dispatch-time queue slots with local *stride* predictions
and argues any local predictor would do.  This bench swaps the filler and
measures the effect on the hybrid's pipeline coverage: a value-free filler
(constant zero) should clearly trail the real fillers.
"""

from repro.analysis.stats import mean
from repro.harness.experiments import PIPELINE_COPIES
from repro.harness.report import ExperimentResult
from repro.pipeline import HGVQAdapter, OutOfOrderCore
from repro.predictors import (
    ConstantPredictor,
    DFCMPredictor,
    LastValuePredictor,
    StridePredictor,
)
from repro.trace.workloads import get

FILLERS = {
    "stride (paper)": lambda: StridePredictor(entries=8192),
    "last-value": lambda: LastValuePredictor(entries=8192),
    "dfcm": lambda: DFCMPredictor(order=4, l1_entries=8192),
    "zero": lambda: ConstantPredictor(0),
}

BENCHES = ["bzip2", "mcf", "parser", "vortex", "gzip"]


def run_sweep(length=30_000):
    result = ExperimentResult(
        name="ablation_hgvq_filler",
        title="HGVQ accuracy/coverage vs filler predictor",
        columns=["filler", "accuracy", "coverage"],
        notes=["paper uses the local stride predictor as the filler"],
    )
    for name, factory in FILLERS.items():
        accs, covs = [], []
        for bench in BENCHES:
            adapter = HGVQAdapter(order=32, filler=factory())
            core = OutOfOrderCore(value_predictor=adapter)
            core.run(get(bench).trace(length, code_copies=PIPELINE_COPIES))
            accs.append(adapter.stats.accuracy)
            covs.append(adapter.stats.coverage)
        result.add_row(name, mean(accs), mean(covs))
    return result


def bench_hgvq_filler(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    stride_cov = result.cell("stride (paper)", "coverage")
    zero_cov = result.cell("zero", "coverage")
    lastv_cov = result.cell("last-value", "coverage")
    # Real fillers beat the degenerate one; stride is competitive with
    # every alternative (the paper's choice).
    assert stride_cov > zero_cov
    assert stride_cov >= lastv_cov - 0.03
