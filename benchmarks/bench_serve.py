"""The online prediction plane — serve throughput floor and fidelity.

PR 9 adds ``repro serve``: per-stream predictor state sharded across the
persistent worker pool, frames from many connections coalesced into one
pipe round-trip per shard.  Two gates:

* **Batched dispatch ≥ 10x vs naive one-event round-trips.**  The floor
  compares 64 concurrent closed-loop streams (256-event frames, batched
  shard dispatch) against the obvious client one would write first: one
  event per frame, one frame in flight, wait for the reply.  Both sides
  are measured against the *same* daemon in the same session, so the
  ratio isolates the batching plane itself.
* **Serve == batch, bitwise.**  Every predictor family the paper
  evaluates (last-value, stride, DFCM, gDiff, HGVQ) is streamed through
  the daemon in small frames with a forced evict → restore cycle in the
  middle, and the daemon's accumulated ``PredictionStats`` must equal
  :func:`repro.harness.runner.run_value_prediction` over the identical
  pair stream — exactly, not approximately.

Measured values land in ``BENCH_metrics.json`` under ``metrics.serve``
(``_eps`` rates gate lower-is-bad, ``_ms`` latencies higher-is-bad, the
``_x`` ratio lower-is-bad) so ``repro bench check`` tracks them.

``REPRO_SERVE_BENCH_LENGTH`` shrinks events-per-stream for smoke runs
(CI uses 400); the 10x floor applies at the full length where per-frame
costs amortise — short runs assert a conservative sanity ratio.
"""

import os
import threading
import time

import pytest

from repro.harness.parallel import shutdown_pool
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.loadgen import ServeClient, run_loadgen, stream_pairs
from repro.serve.streams import batch_reference_stats
from repro.telemetry import MetricsRegistry

LENGTH = int(os.environ.get("REPRO_SERVE_BENCH_LENGTH", "2000"))
FULL_LENGTH = 2000
STREAMS = 64
FRAME_EVENTS = 256
NAIVE_EVENTS = 400  # one-event round-trips are slow; sample, don't sweep

#: (metric, full-length floor, smoke floor)
FLOORS = {
    "batch_vs_naive_x": (10.0, 4.0),
}


def _floor(name):
    full, smoke = FLOORS[name]
    return full if LENGTH >= FULL_LENGTH else smoke


@pytest.fixture
def serve_daemon(tmp_path):
    """A live daemon on an ephemeral port, torn down after the bench."""
    shutdown_pool()
    config = ServeConfig(port=0, shards=4, spool=str(tmp_path / "spool"))
    engine = ServeEngine(config, registry=MetricsRegistry()).start()
    thread = threading.Thread(target=engine.serve_forever,
                              kwargs={"poll_s": 0.05}, daemon=True)
    thread.start()
    try:
        yield engine
    finally:
        engine.stop()
        thread.join(timeout=30)
        shutdown_pool()


def bench_serve_throughput_floor(benchmark, record_metrics, serve_daemon):
    """64 concurrent streams, batched dispatch vs one-event round-trips."""
    host, port = serve_daemon.address

    # Naive baseline first (cold daemon either way: predictor tables are
    # per-stream, so neither side warms the other's streams).
    naive_pairs = stream_pairs(1, NAIVE_EVENTS, ("gcc",))
    client = ServeClient.connect(host, port)
    try:
        sid, pcs, values = naive_pairs[0]
        start = time.perf_counter()
        for i in range(len(pcs)):
            resp = client.predict_train("naive-" + sid, "gdiff32",
                                        pcs[i:i + 1], values[i:i + 1])
            assert resp.status == 0, resp.error
        naive_s = time.perf_counter() - start
    finally:
        client.close()
    naive_eps = len(pcs) / naive_s

    report = run_loadgen(host, port, streams=STREAMS,
                         events_per_stream=LENGTH,
                         frame_events=FRAME_EVENTS, predictor="gdiff32")
    assert report["errors"] == 0, report
    assert report["events_applied"] == STREAMS * LENGTH
    eps = report["events_eps"]
    ratio = eps / naive_eps
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(f"\nserve plane: naive 1-event RTT {naive_eps:,.0f} events/s, "
          f"{STREAMS} batched streams {eps:,.0f} events/s — "
          f"{ratio:.1f}x (p50 {report['p50_ms']:.2f} ms, "
          f"p99 {report['p99_ms']:.2f} ms)")
    record_metrics("serve",
                   naive_rtt_eps=naive_eps,
                   closed_64stream_eps=eps,
                   batch_vs_naive_x=ratio,
                   closed_p50_ms=report["p50_ms"],
                   closed_p99_ms=report["p99_ms"])
    floor = _floor("batch_vs_naive_x")
    assert ratio >= floor, (
        f"batched serve {eps:,.0f} events/s is only {ratio:.2f}x the "
        f"naive round-trip baseline {naive_eps:,.0f} events/s "
        f"(floor {floor}x at {LENGTH} events/stream)")


def bench_serve_bit_identity(benchmark, record_metrics, serve_daemon):
    """Serve == batch for every predictor family, across evict/restore."""
    host, port = serve_daemon.address
    events = min(LENGTH, 1200)
    frame = 97  # deliberately unaligned frame size
    specs = [("last-value", False), ("stride", False), ("dfcm", False),
             ("gdiff8", False), ("gdiff32", False), ("gdiff32", True),
             ("hgvq", False)]
    (_sid, pcs, values), = stream_pairs(1, events, ("gcc",))

    client = ServeClient.connect(host, port)
    checked = 0
    try:
        for spec, gated in specs:
            sid = f"bit-{spec}{'-g' if gated else ''}"
            offsets = list(range(0, events, frame))
            for n, off in enumerate(offsets):
                resp = client.predict_train(
                    sid, spec, pcs[off:off + frame],
                    values[off:off + frame], gated=gated)
                assert resp.status == 0, (spec, resp.error)
                # Force the evict → snapshot → restore cycle mid-stream.
                if n == len(offsets) // 2:
                    evicted = client.evict(sid)
                    assert evicted.status == 0 and evicted.nbytes > 0
            stats = client.stats(sid)
            assert stats.status == 0 and stats.resident
            expect = batch_reference_stats(spec, gated, pcs, values)
            got = stats.stats
            want = (expect.attempts, expect.predictions, expect.correct,
                    expect.confident, expect.confident_correct)
            assert got == want, (
                f"{sid}: serve stats {got} != batch harness {want}")
            checked += 1
    finally:
        client.close()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\nserve fidelity: {checked} predictor configs bit-identical "
          f"across an evict/restore cycle ({events} events each)")
    record_metrics("serve", bit_identical_configs=checked)
    assert checked == len(specs)
