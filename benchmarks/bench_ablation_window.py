"""Ablation — instruction-window (ROB) size and the mcf speedup.

Section 7 attributes mcf's 53% speedup partly to the window: "As mcf is
highly memory intensive ..., a large window size of 64 enables more
missing loads to be predicted leading to higher speedups."  This bench
sweeps the ROB size on mcf and checks that the gDiff speedup grows with
the window.
"""

from repro.harness.experiments import PIPELINE_COPIES, great_latency_config
from repro.harness.report import ExperimentResult
from repro.pipeline import HGVQAdapter, OutOfOrderCore
from repro.trace.workloads import get

WINDOWS = [16, 32, 64, 128]


def run_sweep(length=30_000, bench="mcf"):
    result = ExperimentResult(
        name="ablation_window",
        title=f"gDiff(HGVQ) speedup vs ROB size ({bench})",
        columns=["window", "baseline_ipc", "gdiff_ipc", "speedup"],
        notes=["paper: the 64-entry window is what lets mcf's missing "
               "loads be predicted and overlapped"],
    )
    for window in WINDOWS:
        config = great_latency_config()
        config.rob_entries = window
        trace = get(bench).trace(length, code_copies=PIPELINE_COPIES)
        baseline = OutOfOrderCore(config=config).run(trace)
        config2 = great_latency_config()
        config2.rob_entries = window
        spec = OutOfOrderCore(
            config=config2, value_predictor=HGVQAdapter(order=32),
            speculate=True,
        ).run(get(bench).trace(length, code_copies=PIPELINE_COPIES))
        result.add_row(str(window), baseline.ipc, spec.ipc,
                       spec.ipc / baseline.ipc - 1)
    return result


def bench_window_size(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    speedups = {row[0]: row[3] for row in result.rows}
    # A bigger window lets value prediction overlap more misses.
    assert speedups["64"] > speedups["16"]
    assert speedups["64"] > 0.1
