"""Figure 9 — prediction-table aliasing vs table size.

Paper: an 8K-entry tagless table costs less than 1% accuracy vs an
infinite table; conflict rates grow sharply at smaller sizes (up to ~25%
at 2K entries).
"""

from repro.core import GDiffPredictor
from repro.harness import run_experiment
from repro.harness.runner import run_value_prediction
from repro.trace.workloads import get


def bench_fig9(benchmark, archive):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", length=60_000),
        rounds=1, iterations=1,
    )
    archive(result)

    avg = {c: result.cell("average", c)
           for c in ("inf", "64K", "32K", "16K", "8K", "4K", "2K")}
    # No conflicts with an infinite table; monotone growth as it shrinks.
    assert avg["inf"] == 0.0
    assert avg["64K"] <= avg["16K"] <= avg["4K"] <= avg["2K"]
    assert avg["2K"] > 0.10  # sharp at the small end
    assert avg["64K"] < 0.02  # negligible at the large end


def bench_fig9_accuracy_cost(benchmark, archive):
    """The paper's companion claim: 8K entries lose <~1-2% accuracy
    relative to the unlimited table."""

    def run():
        costs = {}
        for bench in ("gcc", "parser", "vortex"):
            trace = get(bench).trace(60_000, code_copies=4)
            predictors = {
                "inf": GDiffPredictor(order=8, entries=None),
                "8k": GDiffPredictor(order=8, entries=8192),
                "2k": GDiffPredictor(order=8, entries=2048),
            }
            stats = run_value_prediction(trace, predictors)
            costs[bench] = (
                stats["inf"].raw_accuracy - stats["8k"].raw_accuracy,
                stats["inf"].raw_accuracy - stats["2k"].raw_accuracy,
            )
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\naccuracy cost (8K, 2K) vs infinite table:")
    for bench, (cost_8k, cost_2k) in costs.items():
        print(f"  {bench:8s} 8K: {cost_8k:6.2%}   2K: {cost_2k:6.2%}")
    # 8K is cheap; 2K is visibly worse (the paper's "8K is a good
    # balance" conclusion).
    assert all(c8 < 0.06 for c8, _ in costs.values())
    assert all(c2 >= c8 - 0.01 for c8, c2 in costs.values())
