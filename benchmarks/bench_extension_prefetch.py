"""Extension — gDiff-driven prefetching (the paper's named future work).

"One interesting work is to extend gDiff to further explore global stride
locality in load address stream for memory prefetch" (Section 8).  The
bench runs the :mod:`repro.prefetch` engine over the suite and checks the
prefetcher eliminates a substantial share of demand misses at high
prefetch accuracy — the property that Section 6's miss-address
predictability numbers promise.
"""

from repro.analysis.stats import mean
from repro.harness.report import ExperimentResult
from repro.prefetch import simulate_prefetching
from repro.trace.workloads import BENCHMARKS, get


def run_sweep(length=60_000):
    result = ExperimentResult(
        name="extension_prefetch",
        title="gDiff prefetching: demand-miss elimination",
        columns=["bench", "base_miss", "prefetched_miss", "coverage",
                 "accuracy"],
        notes=["one-step-lookahead, timing-free (upper bound); Section 8 "
               "future work realised"],
    )
    for bench in BENCHMARKS:
        stats = simulate_prefetching(get(bench).trace(length))
        result.add_row(bench, stats.baseline_miss_rate,
                       stats.prefetched_miss_rate, stats.coverage,
                       stats.accuracy)
    result.add_row("average",
                   *(mean(result.column(c)) for c in result.columns[1:]))
    return result


def bench_prefetch(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    coverage = result.cell("average", "coverage")
    accuracy = result.cell("average", "accuracy")
    # The engine eliminates a big slice of misses, accurately.
    assert coverage > 0.4
    assert accuracy > 0.7
    # mcf — the memory-bound benchmark — benefits most in absolute terms.
    saved = {b: result.cell(b, "base_miss") - result.cell(b, "prefetched_miss")
             for b in BENCHMARKS}
    assert max(saved, key=saved.get) == "mcf"
