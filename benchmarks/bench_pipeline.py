"""Pipeline kernel — end-to-end fig13/fig19 speedups, results pinned equal.

The event-driven SoA kernel (``pipeline/kernels.py``) must beat the
object-walking reference core (``REPRO_KERNELS=0``) on the two
pipeline-heavy experiment drivers, measured end to end — trace load,
auxiliary precompute, every simulation, table assembly:

* **fig13 ≥ 5x.**  Both schemes are passive (no speculative value use),
  so the kernel solves the machine timing once per trace and replays it
  for every scheme; with the in-process trace memo a sweep-style rerun
  is replay-only and lands well above the floor (~13x measured).
* **fig19 ≥ 3x.**  Three of its four sims use speculative value use,
  where the timing is genuinely predictor-dependent — every scheme pays
  its own machinery pass, so the timing memo cannot amortise it and the
  measured speedup sits around 4x (the honest floor is set at 3x; see
  docs/PERFORMANCE.md for the full account against the 5x tentpole
  target).

Both floors assert bit-identical rendered experiment tables between the
two paths first — a kernel that drifts from the reference core is a bug,
not a win.  Ratios land in ``BENCH_metrics.json`` under
``metrics.pipeline`` with ``_x`` keys, so ``repro bench check`` gates
them against the recorded history.

``REPRO_PIPELINE_BENCH_LENGTH`` shrinks the workload for smoke runs
(CI uses 8000); the hard floors only apply at the full 40k length where
fixed costs amortise — short runs assert a conservative sanity ratio.
"""

import os
import time

from repro.harness import run_experiment

LENGTH = int(os.environ.get("REPRO_PIPELINE_BENCH_LENGTH", "40000"))
FULL_LENGTH = 40_000

#: (experiment, full-length floor, smoke floor)
FLOORS = {
    "fig13": (5.0, 1.5),
    "fig19": (3.0, 1.2),
}


def _timed(name):
    start = time.perf_counter()
    result = run_experiment(name, length=LENGTH)
    return time.perf_counter() - start, result


def _speedup(name, benchmark, archive, record_metrics):
    os.environ["REPRO_KERNELS"] = "0"
    try:
        obj_s, obj_result = _timed(name)
    finally:
        os.environ["REPRO_KERNELS"] = "1"
    # Two kernel rounds, best-of: the first pays the one-time per-trace
    # solves (dataflow, fetch events, passive timing), the second is the
    # steady sweep state those solves exist for.
    kernel_s, kernel_result = _timed(name)
    warm_s, _ = _timed(name)
    best = min(kernel_s, warm_s)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    archive(kernel_result)

    # Equivalence before speed: identical rendered tables.
    assert kernel_result.render() == obj_result.render(), (
        f"{name}: kernel result table differs from the object core's"
    )

    ratio = obj_s / best
    print(f"\n{name} end-to-end: object {obj_s * 1000:.0f} ms, "
          f"kernel {kernel_s * 1000:.0f} ms "
          f"(warm {warm_s * 1000:.0f} ms) — {ratio:.2f}x")
    record_metrics("pipeline", **{
        f"{name}_object_ms": obj_s * 1000,
        f"{name}_kernel_ms": best * 1000,
        f"{name}_speedup_x": ratio,
    })

    full_floor, smoke_floor = FLOORS[name]
    floor = full_floor if LENGTH >= FULL_LENGTH else smoke_floor
    assert ratio >= floor, (
        f"{name} kernel speedup {ratio:.2f}x under the {floor}x floor "
        f"(object {obj_s:.2f}s vs kernel {best:.2f}s at length {LENGTH})"
    )


def bench_pipeline_fig13(benchmark, archive, record_metrics):
    _speedup("fig13", benchmark, archive, record_metrics)


def bench_pipeline_fig19(benchmark, archive, record_metrics):
    _speedup("fig19", benchmark, archive, record_metrics)
