"""Ingestion-plane throughput: adapters, capture, and the import driver.

Measures events/second through each file adapter (CSV text parse, CVP
tagged binary, ChampSim fixed records) and the end-to-end import driver
(adapter -> PackedTrace -> checksummed store write), and asserts the
shape that matters operationally: binary adapters beat text parsing, and
the driver's overhead over the bare adapter stays within a small factor.
"""

import os
import tempfile

from repro.analysis.stats import mean  # noqa: F401  (idiom parity)
from repro.harness.report import ExperimentResult
from repro.trace.ingest import import_trace
from repro.trace.ingest.base import get_adapter
from repro.trace.ingest.formats import write_champsim, write_cvp
from repro.trace.isa import ialu
from repro.trace.packed import PackedTrace

EVENTS = 60_000


def _make_sources(root):
    csv_path = os.path.join(root, "bench.csv")
    with open(csv_path, "w", encoding="utf-8") as fh:
        fh.write("pc,value\n")
        for i in range(EVENTS):
            fh.write(f"{0x400000 + (i % 64) * 4},{i * 8}\n")
    cvp_path = os.path.join(root, "bench.cvp")
    write_cvp((ialu(pc=0x400000 + (i % 64) * 4, dest=1, value=i * 8)
               for i in range(EVENTS)), cvp_path)
    champ_path = os.path.join(root, "bench.champsimtrace")
    write_champsim(((0x400000 + (i % 64) * 4, 0, 0, (3,), (5,), (),
                     (0x8000 + i * 64,)) for i in range(EVENTS)),
                   champ_path)
    return {"csv": csv_path, "cvp": cvp_path, "champsim": champ_path}


def run_sweep():
    import time

    result = ExperimentResult(
        name="ingest_throughput",
        title="Ingestion plane: adapter and import-driver throughput",
        columns=["path", "events", "seconds", "events_per_s"],
        notes=[f"{EVENTS} synthetic events per source; adapter = parse "
               "only, import = parse + pack + checksummed store write"],
    )
    with tempfile.TemporaryDirectory() as root:
        os.environ["REPRO_IMPORT_DIR"] = os.path.join(root, "imported")
        sources = _make_sources(root)
        for name, path in sources.items():
            adapter = get_adapter(name, path)
            started = time.perf_counter()
            packed = PackedTrace.from_instructions(
                adapter.events(path), name=name)
            parse_s = time.perf_counter() - started
            result.add_row(f"adapter:{name}", len(packed), round(parse_s, 4),
                           int(len(packed) / parse_s))
            started = time.perf_counter()
            doc = import_trace(path, adapter=name, name=f"bench-{name}")
            import_s = time.perf_counter() - started
            result.add_row(f"import:{name}", doc["events"],
                           round(import_s, 4),
                           int(doc["events"] / import_s))
        os.environ.pop("REPRO_IMPORT_DIR", None)
    return result


def bench_ingest_throughput(benchmark, archive):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(result)

    rates = {row[0]: row[3] for row in result.rows}
    # The tagged-binary walk beats per-line text parsing; ChampSim's
    # 15-field unpack lands in the same decade as both.
    assert rates["adapter:cvp"] > rates["adapter:csv"]
    assert rates["adapter:champsim"] * 10 > rates["adapter:cvp"]
    # Streaming must hold a usable floor on every path.
    for label, rate in rates.items():
        assert rate > 20_000, (label, rate)
    # The full driver (pack + zlib + CRC + atomic store write) may cost,
    # but not an order of magnitude over the bare adapter.
    for name in ("csv", "cvp", "champsim"):
        assert rates[f"import:{name}"] * 10 > rates[f"adapter:{name}"]
