"""The adversarial stream bank and the unified workload-bank runner.

Scenario generation must be deterministic and registry-resolvable; the
calibrated ``EXPECTATIONS`` bands must be structurally sound (the actual
accuracy sweep is CI's ``repro workloads --smoke`` job — re-running the
full bank here would double its cost for no extra signal); and
:func:`repro.harness.workbank.run_bank` must select, sweep, and gate
correctly on small lengths.
"""

import pytest

from repro.harness.workbank import (
    BANK_ZOO,
    BankCheck,
    bank_members,
    bank_predictors,
    render_bank,
    run_bank,
)
from repro.trace.workloads import BENCHMARKS, get, is_known, known_names
from repro.trace.workloads.adversarial import (
    EXPECT_LENGTH,
    EXPECTATIONS,
    SCENARIOS,
    all_specs,
)

LENGTH = 4000


class TestScenarios:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_generation_is_deterministic(self, name):
        spec = get(name)
        a = spec.trace(LENGTH)
        b = get(name).trace(LENGTH)
        assert [(i.pc, i.op, i.value) for i in a] == \
            [(i.pc, i.op, i.value) for i in b]
        assert len(a) == LENGTH

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_scenarios_produce_values(self, name):
        trace = get(name).trace(LENGTH)
        producing = sum(1 for i in trace if i.produces_value)
        assert producing > LENGTH // 10

    def test_registry_resolves_all_scenarios(self):
        for name in SCENARIOS:
            assert is_known(name)
            assert name in known_names()
        assert set(all_specs()) == set(SCENARIOS)

    def test_scenarios_differ_from_each_other(self):
        streams = {}
        for name in SCENARIOS:
            trace = get(name).trace(LENGTH)
            streams[name] = tuple((i.pc, i.value) for i in trace
                                  if i.produces_value)
        values = list(streams.values())
        assert len(set(values)) == len(values)

    def test_cached_trace_matches_object_generation(self, tmp_path,
                                                    monkeypatch):
        from repro.trace.cache import cached_trace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        name = SCENARIOS[0]
        packed = cached_trace(name, LENGTH)
        direct = get(name).trace(LENGTH)
        pcs, values = packed.value_pairs()
        expect = [(i.pc, i.value) for i in direct if i.produces_value]
        assert list(zip(pcs, values)) == expect


class TestExpectations:
    def test_bands_cover_every_scenario(self):
        assert set(EXPECTATIONS) == set(SCENARIOS)
        for name, bands in EXPECTATIONS.items():
            assert bands, f"{name} has no calibrated bands"
            for predictor, (lo, hi) in bands.items():
                assert predictor in BANK_ZOO
                assert 0.0 <= lo < hi <= 1.0

    def test_bands_encode_the_scenario_story(self):
        # The bank exists to stress predictors differently: deep global
        # history must out-band local stride on the phase/burst mixes.
        for name in ("adv-phase-shift", "adv-burst"):
            assert EXPECTATIONS[name]["gdiff32"][0] > \
                EXPECTATIONS[name]["stride"][1]

    def test_expect_length_is_stable(self):
        assert EXPECT_LENGTH == 24_000


class TestRunBank:
    def test_selection_and_groups(self):
        members = bank_members(("suite", "adversarial"))
        names = [n for n, _ in members]
        assert names[:len(BENCHMARKS)] == BENCHMARKS
        assert names[len(BENCHMARKS):] == SCENARIOS
        only = bank_members(("adversarial",), only=[SCENARIOS[1]])
        assert only == [(SCENARIOS[1], "adversarial")]
        with pytest.raises(ValueError):
            bank_members(("nope",))
        with pytest.raises(ValueError):
            bank_members(("suite",), only=["adv-drift"])

    def test_predictor_validation(self):
        assert list(bank_predictors(["stride"])) == ["stride"]
        with pytest.raises(ValueError):
            bank_predictors(["oracle"])

    def test_sweep_rows_and_progress(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        seen = []
        rows, checks = run_bank(
            groups=("adversarial",), only=[SCENARIOS[0], SCENARIOS[2]],
            predictors=["stride", "gdiff8"], length=LENGTH,
            on_progress=lambda done, total: seen.append((done, total)))
        assert [r.workload for r in rows] == [SCENARIOS[0], SCENARIOS[2]]
        assert checks == []
        assert seen == [(1, 2), (2, 2)]
        for row in rows:
            assert set(row.accuracy) == {"stride", "gdiff8"}
            assert all(0.0 <= a <= 1.0 for a in row.accuracy.values())
            assert row.value_events > 0

    def test_check_requires_calibrated_length(self):
        with pytest.raises(ValueError):
            run_bank(groups=("adversarial",), length=LENGTH, check=True)

    def test_render_bank_table(self):
        checks = [BankCheck("w", "stride", 0.4, 0.6, 0.5),
                  BankCheck("w", "gdiff8", 0.8, 0.9, 0.1)]
        rows = []
        lines = render_bank(rows, checks, ["stride", "gdiff8"])
        text = "\n".join(lines)
        assert "expectations: 1/2 within band" in text
        assert "FAIL" in text and "PASS" in text
